"""Serial geometric multigrid: the validation oracle and the agglomerated
coarse-grid solver used by the distributed V-cycle (HPGMG gathers coarse
levels onto few ranks exactly the same way).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.apps.hpgmg.ops import (
    alloc_field,
    apply_op,
    interior,
    jacobi,
    norm2,
    prolong_fv,
    residual,
    restrict_fv,
)
from repro.util.errors import ConfigError


class SerialMg:
    """V-cycle solver on one process.

    Levels coarsen by 2x in every dimension while all dimensions stay even
    and >= 2; the coarsest level is relaxed to convergence with Jacobi.
    """

    def __init__(self, shape: Tuple[int, int, int], h: float,
                 nu_pre: int = 2, nu_post: int = 2, nu_coarse: int = 60,
                 smoother: str = "gsrb"):
        nz, nx, ny = shape
        if min(shape) < 2:
            raise ConfigError(f"grid {shape} too small for multigrid")
        if smoother not in ("gsrb", "jacobi"):
            raise ConfigError(f"unknown smoother {smoother!r}")
        self.smoother = smoother
        self.nu_pre, self.nu_post, self.nu_coarse = nu_pre, nu_post, nu_coarse
        self.shapes: List[Tuple[int, int, int]] = [shape]
        self.hs: List[float] = [h]
        while all(d % 2 == 0 and d >= 4 for d in self.shapes[-1]):
            nz, nx, ny = self.shapes[-1]
            self.shapes.append((nz // 2, nx // 2, ny // 2))
            self.hs.append(self.hs[-1] * 2.0)

    @property
    def nlevels(self) -> int:
        return len(self.shapes)

    def _smooth(self, u: np.ndarray, f: np.ndarray, h: float, sweeps: int) -> None:
        if self.smoother == "gsrb":
            from repro.apps.hpgmg.ops import gsrb
            for _ in range(sweeps):
                gsrb(u, f, h, 0)
                gsrb(u, f, h, 1)
        else:
            for _ in range(sweeps):
                interior(u)[...] = jacobi(u, f, h)

    def vcycle(self, u: np.ndarray, f: np.ndarray, level: int = 0) -> None:
        """One V-cycle in place on ``u`` (ghosted field) at ``level``."""
        h = self.hs[level]
        if level == self.nlevels - 1:
            self._smooth(u, f, h, self.nu_coarse)
            return
        self._smooth(u, f, h, self.nu_pre)
        r = residual(u, f, h)
        fc = alloc_field(self.shapes[level + 1])
        interior(fc)[...] = restrict_fv(r)
        uc = alloc_field(self.shapes[level + 1])
        self.vcycle(uc, fc, level + 1)
        interior(u)[...] += prolong_fv(interior(uc))
        self._smooth(u, f, h, self.nu_post)

    def fcycle(self, u: np.ndarray, f: np.ndarray) -> None:
        """One full-multigrid (F-)cycle in place: restrict the problem all
        the way down, then work back up, seeding each level with the
        prolonged coarse solution before its V-cycle. HPGMG's headline
        algorithm ("implements full multigrid"); reaches discretization
        accuracy in O(1) fine-grid work."""
        from repro.apps.hpgmg.ops import interior as _interior

        # Build the RHS hierarchy by restriction of f.
        fs = [f]
        for lvl in range(1, self.nlevels):
            fc = alloc_field(self.shapes[lvl])
            _interior(fc)[...] = restrict_fv(_interior(fs[-1]))
            fs.append(fc)
        # Coarsest solve.
        us = alloc_field(self.shapes[-1])
        self._smooth(us, fs[-1], self.hs[-1], self.nu_coarse)
        # Walk back up: prolong the solution, then one V-cycle per level.
        for lvl in range(self.nlevels - 2, -1, -1):
            u_lvl = alloc_field(self.shapes[lvl])
            _interior(u_lvl)[...] = prolong_fv(_interior(us))
            self.vcycle(u_lvl, fs[lvl], lvl)
            us = u_lvl
        u[...] = us

    def fmg_solve(self, f: np.ndarray, *, vcycles: int = 2
                  ) -> Tuple[np.ndarray, List[float]]:
        """F-cycle start followed by ``vcycles`` V-cycles; returns
        (u, residual history)."""
        shape = self.shapes[0]
        fg = alloc_field(shape)
        interior(fg)[...] = f
        u = alloc_field(shape)
        history = [np.sqrt(norm2(residual(u, fg, self.hs[0])))]
        self.fcycle(u, fg)
        history.append(np.sqrt(norm2(residual(u, fg, self.hs[0]))))
        for _ in range(vcycles):
            self.vcycle(u, fg)
            history.append(np.sqrt(norm2(residual(u, fg, self.hs[0]))))
        return u, history

    def solve(self, f: np.ndarray, *, cycles: int = 20,
              rtol: float = 1e-9) -> Tuple[np.ndarray, List[float]]:
        """Run V-cycles from a zero guess; returns (u, residual-norm history).

        ``f`` is interior-only; the returned ``u`` is ghosted.
        """
        shape = self.shapes[0]
        if f.shape != shape:
            raise ConfigError(f"rhs shape {f.shape} != level-0 shape {shape}")
        fg = alloc_field(shape)
        interior(fg)[...] = f
        u = alloc_field(shape)
        history = [np.sqrt(norm2(residual(u, fg, self.hs[0])))]
        for _ in range(cycles):
            self.vcycle(u, fg)
            history.append(np.sqrt(norm2(residual(u, fg, self.hs[0]))))
            if history[-1] <= rtol * max(history[0], 1e-300):
                break
        return u, history
