"""Distributed HPGMG-FV (paper §III-B, Fig. 4): V-cycles on a z-decomposed
grid with agglomeration of coarse levels onto rank 0, weak-scaled by keeping
the per-rank box volume constant.

Two variants, as in the paper's comparison:

- ``reference`` — MPI+OpenMP hybrid style: per half-sweep, a level-synchronous
  Isend/Irecv/Waitall halo exchange, then a ``forasync`` over the rank's
  boxes.
- ``hiper`` — the UPC++ + MPI composition: halos move by one-sided ``rput``
  and arrival is signalled by an ``rpc`` that satisfies a pre-registered
  promise on the receiver (futures all the way down); reductions and
  agglomeration gathers use the MPI module. The paper reports performance
  parity between the two — the exchange volume is identical and only the
  plumbing differs.

Both run the same numerics (GSRB V-cycles with variational transfers) and
produce identical iterates, checked against :class:`SerialMg` in tests.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.hpgmg.ops import (
    SMOOTH_FLOPS_PER_CELL,
    alloc_field,
    gsrb,
    interior,
    norm2,
    prolong_fv,
    residual,
    restrict_fv,
)
from repro.apps.hpgmg.serial import SerialMg
from repro.runtime.api import charge, forasync_future
from repro.runtime.future import Future, Promise
from repro.util.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class HpgmgConfig:
    """Weak-scaling problem: each rank owns (nz_per_rank, nx, ny) cells,
    organized as boxes of ``box_dim``^3 (paper: log2(box_dim)=7, 8 boxes per
    rank; scaled down here)."""

    box_dim: int = 8
    boxes_xy: int = 2      # boxes along x and along y (global)
    boxes_z_per_rank: int = 2
    cycles: int = 8
    nu_pre: int = 2
    nu_post: int = 2
    nu_coarse: int = 60
    #: Stop distributed coarsening when the local slab gets this thin.
    agglomerate_below_nz: int = 4

    def __post_init__(self):
        if self.box_dim < 2 or self.box_dim & (self.box_dim - 1):
            raise ConfigError("box_dim must be a power of two >= 2")

    @property
    def nx(self) -> int:
        return self.box_dim * self.boxes_xy

    @property
    def ny(self) -> int:
        return self.box_dim * self.boxes_xy

    @property
    def nz_local(self) -> int:
        return self.box_dim * self.boxes_z_per_rank

    def global_shape(self, nranks: int) -> Tuple[int, int, int]:
        return (self.nz_local * nranks, self.nx, self.ny)

    def boxes_per_rank(self) -> int:
        return self.boxes_xy * self.boxes_xy * self.boxes_z_per_rank


class _Level:
    """One distributed level: this rank's slab with ghost shell."""

    __slots__ = ("nz", "nx", "ny", "h", "z0", "u", "f", "seq")

    def __init__(self, nz: int, nx: int, ny: int, h: float, z0: int):
        self.nz, self.nx, self.ny = nz, nx, ny
        self.h = h
        self.z0 = z0  # global z index of the first interior plane
        self.u = alloc_field((nz, nx, ny))
        self.f = alloc_field((nz, nx, ny))
        self.seq = 0  # per-level exchange sequence number


class _HaloExchanger:
    """Strategy interface: fill ``level.u``'s z ghost planes from neighbors."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.me = ctx.rank
        self.n = ctx.nranks
        self.down = self.me - 1 if self.me > 0 else None
        self.up = self.me + 1 if self.me < self.n - 1 else None

    def exchange(self, level: _Level, lidx: int):  # pragma: no cover - ABC
        raise NotImplementedError


class MpiHalo(_HaloExchanger):
    """Reference exchange: Isend/Irecv/Waitall each half-sweep."""

    def exchange(self, level: _Level, lidx: int):
        mpi = self.ctx.mpi
        tag = (lidx << 16) | (level.seq & 0xFFFF)
        level.seq += 1
        sends: List[Future] = []
        if self.down is not None:
            sends.append(mpi.isend(level.u[1].copy(), self.down, tag=tag))
        if self.up is not None:
            sends.append(mpi.isend(level.u[level.nz].copy(), self.up, tag=tag))
        if self.down is not None:
            data, _, _ = yield mpi.irecv(src=self.down, tag=tag)
            level.u[0] = data
        else:
            level.u[0] = 0.0
        if self.up is not None:
            data, _, _ = yield mpi.irecv(src=self.up, tag=tag)
            level.u[level.nz + 1] = data
        else:
            level.u[level.nz + 1] = 0.0
        for s in sends:
            yield s


class UpcxxHalo(_HaloExchanger):
    """HiPER exchange: rput the plane into the neighbor's ghost slot, then
    rpc a notification that satisfies the neighbor's pre-registered promise.
    One-sided end to end; no receive matching, no polling."""

    def __init__(self, ctx, levels: List[_Level]):
        super().__init__(ctx)
        self.u_handles = []
        # Register each level's u as a shared object (same order on every
        # rank -> matching obj ids).
        for lv in levels:
            self.u_handles.append(ctx.upcxx.backend.register_shared(lv.u))
        self._arrivals: Dict[Tuple[int, int, int], Promise] = {}
        registry = ctx.shared.setdefault("hpgmg-halo-arrivals", {})
        registry[ctx.rank] = self._arrivals

    def _arrival(self, key) -> Promise:
        p = self._arrivals.get(key)
        if p is None:
            p = self._arrivals[key] = Promise(name=f"halo-{key}")
        return p

    def exchange(self, level: _Level, lidx: int):
        from repro.upcxx import GlobalPtr

        u = level.u
        seq = level.seq
        level.seq += 1
        upcxx = self.ctx.upcxx
        registry = self.ctx.shared["hpgmg-halo-arrivals"]
        ghost_cells = (level.nx + 2) * (level.ny + 2)
        obj_id = self.u_handles[lidx].obj_id

        # One-sided sends: rput my boundary plane into the neighbor's ghost
        # slot, with the notification rpc issued immediately behind it —
        # pairwise-FIFO delivery guarantees the plane is applied before the
        # rpc satisfies the neighbor's arrival promise (the analogue of a
        # UPC++ signaling put). Keys are from the receiver's perspective:
        # (+1) = "my lower ghost arrived from below".
        if self.down is not None:
            # my plane 1 -> down-neighbor's TOP ghost (their plane nz+1)
            gptr = GlobalPtr(self.down, obj_id, (level.nz + 1) * ghost_cells)
            upcxx.rput(u[1].reshape(-1), gptr)
            upcxx.rpc(self.down,
                      _make_notifier(registry, self.down, (lidx, seq, -1)))
        if self.up is not None:
            # my plane nz -> up-neighbor's BOTTOM ghost (their plane 0)
            gptr = GlobalPtr(self.up, obj_id, 0)
            upcxx.rput(u[level.nz].reshape(-1), gptr)
            upcxx.rpc(self.up,
                      _make_notifier(registry, self.up, (lidx, seq, +1)))

        # Await arrivals addressed to me (futures; overlap is free).
        if self.down is not None:
            yield self._arrival((lidx, seq, +1)).get_future()
        else:
            u[0] = 0.0
        if self.up is not None:
            yield self._arrival((lidx, seq, -1)).get_future()
        else:
            u[level.nz + 1] = 0.0


def _make_notifier(registry, target: int, key):
    """Build the rpc body executed on ``target``: satisfy its arrival promise
    (pure-data closure; safe to ship in-process)."""
    def _notify():
        arr = registry[target]
        p = arr.get(key)
        if p is None:
            p = arr[key] = Promise(name=f"halo-{key}")
        p.put(None)
    return _notify


class DistributedMg:
    """The per-rank V-cycle engine, parameterized by halo strategy."""

    def __init__(self, ctx, cfg: HpgmgConfig, halo: str):
        self.ctx = ctx
        self.cfg = cfg
        self.me = ctx.rank
        self.n = ctx.nranks
        self.core_flops = ctx.config.machine.core_flops

        # Build the distributed level hierarchy: halve all dims while the
        # local slab stays thick enough; then agglomerate to rank 0.
        self.levels: List[_Level] = []
        nz, nx, ny = cfg.nz_local, cfg.nx, cfg.ny
        h = 1.0 / (cfg.nz_local * self.n)  # cubic cells; global nz sets h
        z0 = self.me * nz
        while True:
            self.levels.append(_Level(nz, nx, ny, h, z0))
            if (nz // 2 < cfg.agglomerate_below_nz or nz % 2 or
                    nx % 2 or ny % 2 or nx // 2 < 2):
                break
            nz, nx, ny, h, z0 = nz // 2, nx // 2, ny // 2, h * 2, z0 // 2
        coarse = self.levels[-1]
        # Rank 0 solves the agglomerated global coarse problem serially.
        self.serial_coarse = SerialMg(
            (coarse.nz * self.n, coarse.nx, coarse.ny), coarse.h,
            nu_pre=cfg.nu_pre, nu_post=cfg.nu_post, nu_coarse=cfg.nu_coarse,
        ) if self.me == 0 else None

        if halo == "mpi":
            self.halo: _HaloExchanger = MpiHalo(ctx)
        elif halo == "upcxx":
            self.halo = UpcxxHalo(ctx, self.levels)
        else:
            raise ConfigError(f"unknown halo strategy {halo!r}")

    # -- building blocks -------------------------------------------------
    def _smooth_cost(self, level: _Level) -> float:
        cells = level.nz * level.nx * level.ny
        return cells * SMOOTH_FLOPS_PER_CELL / self.core_flops

    def _box_smooth(self, level: _Level, color: int):
        """One GSRB half-sweep as a parallel loop over z-boxes (the rank's
        within-node parallelism; ghost planes must be current)."""
        cfg = self.cfg
        nboxes = max(1, level.nz // cfg.box_dim)
        per_box = level.nz // nboxes
        cost = self._smooth_cost(level) / nboxes

        def one_box(b: int) -> None:
            lo = 1 + b * per_box
            hi = 1 + (b + 1) * per_box if b < nboxes - 1 else level.nz + 1
            gsrb(level.u, level.f, level.h, color,
                 z_slice=slice(lo, hi), global_z0=level.z0)

        return forasync_future(nboxes, one_box, cost_per_item=cost,
                               name=f"hpgmg-gsrb-{color}")

    def smooth(self, level: _Level, lidx: int, sweeps: int):
        """GSRB smoothing: exchange + red half-sweep + exchange + black."""
        for _ in range(sweeps):
            for color in (0, 1):
                yield from self.halo.exchange(level, lidx)
                yield self._box_smooth(level, color)

    # -- the V-cycle -------------------------------------------------------
    def vcycle(self, lidx: int = 0):
        cfg = self.cfg
        level = self.levels[lidx]
        if lidx == len(self.levels) - 1:
            yield from self._coarse_solve(level)
            return
        yield from self.smooth(level, lidx, cfg.nu_pre)
        yield from self.halo.exchange(level, lidx)
        r = residual(level.u, level.f, level.h)
        charge(r.size * 8.0 / self.core_flops)
        nxt = self.levels[lidx + 1]
        interior(nxt.f)[...] = restrict_fv(r)
        nxt.u[...] = 0.0
        yield from self.vcycle(lidx + 1)
        interior(level.u)[...] += prolong_fv(interior(nxt.u))
        charge(level.u.size * 4.0 / self.core_flops)
        yield from self.smooth(level, lidx, cfg.nu_post)

    def _coarse_solve(self, level: _Level):
        """Agglomerate the coarsest distributed level onto rank 0, solve it
        with the serial hierarchy, scatter the correction back (HPGMG's
        agglomeration strategy)."""
        mpi = self.ctx.mpi
        blocks = yield mpi.gather_async(interior(level.f).copy(), root=0)
        if self.me == 0:
            f_global = np.concatenate(blocks, axis=0)
            assert self.serial_coarse is not None
            charge(
                f_global.size * SMOOTH_FLOPS_PER_CELL
                * (self.cfg.nu_coarse / 4.0) / self.core_flops
            )
            u_global, _ = self.serial_coarse.solve(
                f_global, cycles=4, rtol=1e-12)
            ui = interior(u_global)
            pieces = [
                ui[r * level.nz : (r + 1) * level.nz].copy()
                for r in range(self.n)
            ]
        else:
            pieces = None
        mine = yield mpi.scatter_async(pieces, root=0)
        interior(level.u)[...] = mine

    # -- top-level solve ---------------------------------------------------
    def residual_norm(self, need_halo: bool = True):
        level = self.levels[0]
        if need_halo:
            yield from self.halo.exchange(level, 0)
        local = norm2(residual(level.u, level.f, level.h))
        total = yield self.ctx.mpi.allreduce_async(local, lambda a, b: a + b)
        return float(np.sqrt(total))

    def solve(self):
        """Run ``cfg.cycles`` V-cycles; returns the residual-norm history."""
        history = [(yield from self.residual_norm())]
        for _ in range(self.cfg.cycles):
            yield from self.vcycle(0)
            history.append((yield from self.residual_norm()))
        return history


def setup_problem(mg: DistributedMg) -> None:
    """Install the manufactured RHS on the fine level (per-rank slab)."""
    from repro.apps.hpgmg.ops import manufactured_problem

    cfg = mg.cfg
    level = mg.levels[0]
    nz_g = cfg.nz_local * mg.n
    _, f_global = manufactured_problem(nz_g, cfg.nx, cfg.ny, level.h)
    interior(level.f)[...] = f_global[mg.me * cfg.nz_local :
                                      (mg.me + 1) * cfg.nz_local]


def run_reference(ctx, cfg: HpgmgConfig):
    """MPI+OpenMP-style HPGMG (level-synchronous two-sided halos)."""
    mg = DistributedMg(ctx, cfg, halo="mpi")
    setup_problem(mg)
    history = yield from mg.solve()
    return history, interior(mg.levels[0].u).copy()


def run_hiper(ctx, cfg: HpgmgConfig):
    """HiPER HPGMG: UPC++ one-sided halos + MPI reductions, composed."""
    mg = DistributedMg(ctx, cfg, halo="upcxx")
    setup_problem(mg)
    history = yield from mg.solve()
    return history, interior(mg.levels[0].u).copy()


VARIANTS = {"reference": run_reference, "hiper": run_hiper}


def hpgmg_main(variant: str, cfg: HpgmgConfig) -> Callable:
    try:
        fn = VARIANTS[variant]
    except KeyError:
        raise ConfigError(
            f"unknown HPGMG variant {variant!r}; known: {sorted(VARIANTS)}"
        ) from None

    def main(ctx):
        return fn(ctx, cfg)

    main.__name__ = f"hpgmg_{variant}"
    return main
