"""HPGMG-FV: finite-volume geometric multigrid (paper §III-B, Fig. 4)."""

from repro.apps.hpgmg.ops import (
    apply_op,
    gsrb,
    interior,
    jacobi,
    manufactured_problem,
    norm2,
    prolong_fv,
    residual,
    restrict_fv,
    restrict_inject_mean,
)
from repro.apps.hpgmg.serial import SerialMg
from repro.apps.hpgmg.solver import (
    VARIANTS,
    DistributedMg,
    HpgmgConfig,
    hpgmg_main,
    run_hiper,
    run_reference,
)

__all__ = [
    "apply_op",
    "gsrb",
    "interior",
    "jacobi",
    "manufactured_problem",
    "norm2",
    "prolong_fv",
    "residual",
    "restrict_fv",
    "restrict_inject_mean",
    "SerialMg",
    "VARIANTS",
    "DistributedMg",
    "HpgmgConfig",
    "hpgmg_main",
    "run_hiper",
    "run_reference",
]
