"""HPGMG-FV numerical kernels: 7-point Laplacian, weighted-Jacobi smoother,
residual, and the finite-volume restriction/prolongation pair.

Array convention: every field is shaped ``(nz+2, nx+2, ny+2)`` — interior
cells plus a one-cell ghost shell on all six faces. x/y ghosts are always
zero (homogeneous Dirichlet); z ghosts hold either neighbor-rank planes or
zero at the global boundary. All kernels are fully vectorized (guide:
broadcasting over Python loops) and operate in place where possible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: Weighted-Jacobi damping for the 7-point 3-D Laplacian.
JACOBI_OMEGA = 6.0 / 7.0

#: Flops per cell for one smoother application (used for cost charging).
SMOOTH_FLOPS_PER_CELL = 12.0


def interior(a: np.ndarray) -> np.ndarray:
    return a[1:-1, 1:-1, 1:-1]


def alloc_field(shape_interior: Tuple[int, int, int]) -> np.ndarray:
    nz, nx, ny = shape_interior
    return np.zeros((nz + 2, nx + 2, ny + 2), dtype=np.float64)


def neighbor_sum(u: np.ndarray) -> np.ndarray:
    """Sum of the six face neighbors for every interior cell."""
    return (
        u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
    )


def apply_op(u: np.ndarray, h: float) -> np.ndarray:
    """A u for the 7-point Laplacian: (6u - sum(neighbors)) / h^2."""
    return (6.0 * interior(u) - neighbor_sum(u)) / (h * h)


def residual(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    """r = f - A u on the interior."""
    return interior(f) - apply_op(u, h)


def jacobi(u: np.ndarray, f: np.ndarray, h: float,
           z_slice: slice = slice(1, -1)) -> np.ndarray:
    """One damped-Jacobi sweep over the given interior z range; returns the
    updated planes (callers assign them back — out-of-place keeps same-level
    box tasks independent)."""
    zs = z_slice
    lo = zs.start
    hi = zs.stop if zs.stop >= 0 else u.shape[0] + zs.stop
    nbr = (
        u[lo - 1 : hi - 1, 1:-1, 1:-1] + u[lo + 1 : hi + 1, 1:-1, 1:-1]
        + u[lo:hi, :-2, 1:-1] + u[lo:hi, 2:, 1:-1]
        + u[lo:hi, 1:-1, :-2] + u[lo:hi, 1:-1, 2:]
    )
    au = (6.0 * u[lo:hi, 1:-1, 1:-1] - nbr) / (h * h)
    return u[lo:hi, 1:-1, 1:-1] + JACOBI_OMEGA * (h * h / 6.0) * (
        f[lo:hi, 1:-1, 1:-1] - au
    )


def gsrb(u: np.ndarray, f: np.ndarray, h: float, color: int,
         z_slice: slice = slice(1, -1), global_z0: int = 0) -> None:
    """One red-black Gauss–Seidel half-sweep, in place, over the interior z
    range. ``color`` is 0 (red) or 1 (black) in GLOBAL parity — distributed
    slabs pass their global z offset so colors line up across ranks. HPGMG's
    smoother of choice; each full smooth is two half-sweeps with a ghost
    exchange between them."""
    zs = z_slice
    lo = zs.start
    hi = zs.stop if zs.stop >= 0 else u.shape[0] + zs.stop
    nz = hi - lo
    _, nxg, nyg = u.shape
    nx, ny = nxg - 2, nyg - 2
    k = (np.arange(nz) + global_z0 + lo - 1)[:, None, None]
    i = np.arange(nx)[None, :, None]
    j = np.arange(ny)[None, None, :]
    mask = ((k + i + j) & 1) == color
    nbr = (
        u[lo - 1 : hi - 1, 1:-1, 1:-1] + u[lo + 1 : hi + 1, 1:-1, 1:-1]
        + u[lo:hi, :-2, 1:-1] + u[lo:hi, 2:, 1:-1]
        + u[lo:hi, 1:-1, :-2] + u[lo:hi, 1:-1, 2:]
    )
    gs = (h * h * f[lo:hi, 1:-1, 1:-1] + nbr) / 6.0
    tgt = u[lo:hi, 1:-1, 1:-1]
    tgt[mask] = gs[mask]


def _restrict_axis(f: np.ndarray, axis: int) -> np.ndarray:
    """Adjoint of :func:`_interp_axis`, scaled by 1/2 (so the pair is a
    variational transfer couple and V-cycle factors stay mesh-independent)."""
    f = np.moveaxis(f, axis, 0)
    n2 = f.shape[0]
    padded = np.concatenate(
        [np.zeros_like(f[:1]), f, np.zeros_like(f[:1])], axis=0
    )
    even = f[0::2]
    odd = f[1::2]
    left = padded[0:n2:2]      # f[2i-1]
    right = padded[3 : n2 + 2 : 2]  # f[2i+2]
    out = 0.5 * (0.75 * (even + odd) + 0.25 * (left + right))
    return np.moveaxis(out, 0, axis)


def restrict_fv(r: np.ndarray) -> np.ndarray:
    """Restriction: the (scaled) transpose of the trilinear prolongation,
    applied separably. ``r`` interior-only with even dims; returns the
    interior-only coarse array."""
    out = _restrict_axis(r, 0)
    out = _restrict_axis(out, 1)
    return _restrict_axis(out, 2)


def restrict_inject_mean(r: np.ndarray) -> np.ndarray:
    """Plain 8-child averaging (kept for the transfer-pair ablation bench)."""
    nz, nx, ny = r.shape
    return r.reshape(nz // 2, 2, nx // 2, 2, ny // 2, 2).mean(axis=(1, 3, 5))


def _interp_axis(a: np.ndarray, axis: int) -> np.ndarray:
    """Cell-centered linear interpolation along one axis (2x refinement).

    Child cells sit at ±h_c/4 from the parent center, so each child is
    0.75*parent + 0.25*neighbor-on-its-side; zero ghosts beyond the faces
    (homogeneous Dirichlet corrections vanish at the boundary).
    """
    a = np.moveaxis(a, axis, 0)
    n = a.shape[0]
    padded = np.concatenate(
        [np.zeros_like(a[:1]), a, np.zeros_like(a[:1])], axis=0
    )
    out = np.empty((2 * n,) + a.shape[1:], dtype=a.dtype)
    out[0::2] = 0.75 * a + 0.25 * padded[:n]       # lower child: neighbor i-1
    out[1::2] = 0.75 * a + 0.25 * padded[2 : n + 2]  # upper child: neighbor i+1
    return np.moveaxis(out, 0, axis)


def prolong_fv(uc: np.ndarray) -> np.ndarray:
    """Cell-centered trilinear prolongation (separable 1-D interpolations),
    the pairing HPGMG-FV uses with averaging restriction. ``uc``
    interior-only; returns the interior-only fine correction."""
    out = _interp_axis(uc, 0)
    out = _interp_axis(out, 1)
    return _interp_axis(out, 2)


def norm2(r: np.ndarray) -> float:
    """Squared L2 norm contribution (summed across ranks by the solvers)."""
    return float(np.sum(r * r))


def manufactured_problem(nz: int, nx: int, ny: int, h: float,
                         seed: int = 99) -> Tuple[np.ndarray, np.ndarray]:
    """A discrete manufactured problem on the *global* grid: pick a smooth
    u_exact, compute f = A u_exact exactly in the discrete operator, so the
    discrete solution is u_exact to machine precision. Returns interior-only
    (u_exact, f)."""
    z = (np.arange(nz) + 0.5) * h
    x = (np.arange(nx) + 0.5) * h
    y = (np.arange(ny) + 0.5) * h
    zz, xx, yy = np.meshgrid(z, x, y, indexing="ij")
    u_exact = np.sin(np.pi * zz) * np.sin(np.pi * xx) * np.sin(np.pi * yy)
    u_g = alloc_field((nz, nx, ny))
    interior(u_g)[...] = u_exact
    f = apply_op(u_g, h)
    return u_exact, f
