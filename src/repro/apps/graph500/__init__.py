"""Graph500 BFS (paper §III-C2)."""

from repro.apps.graph500.common import (
    Graph500Config,
    block_bounds,
    build_csr,
    kronecker_edges,
    owner_of,
    pick_root,
    serial_bfs,
    validate_bfs,
)
from repro.apps.graph500.variants import (
    VARIANTS,
    graph500_main,
    run_hiper,
    run_mpi,
)

__all__ = [
    "Graph500Config",
    "block_bounds",
    "build_csr",
    "kronecker_edges",
    "owner_of",
    "pick_root",
    "serial_bfs",
    "validate_bfs",
    "VARIANTS",
    "graph500_main",
    "run_hiper",
    "run_mpi",
]
