"""Graph500: Kronecker graph generation, CSR construction, and the official
validation rules (paper §III-C2).

The generator is the specification's R-MAT/Kronecker recursion with the
standard parameters (A, B, C) = (0.57, 0.19, 0.19) and edgefactor 16,
vectorized over all edges at once. The paper ran scale 31; this reproduction
runs geometrically scaled-down graphs (DESIGN.md §2) with identical
statistical structure.

Validation follows the Graph500 result checks: the parent array must form a
tree rooted at the BFS root whose tree edges are graph edges, and the tree
depth of every reached vertex must equal its true BFS distance (which also
forces every graph edge to span at most one level).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.util.errors import ConfigError
from repro.util.rng import RngFactory

A, B, C = 0.57, 0.19, 0.19  # Graph500 Kronecker initiator


@dataclasses.dataclass(frozen=True)
class Graph500Config:
    scale: int = 10           # N = 2^scale vertices (paper: 31)
    edgefactor: int = 16
    seed: int = 20080617

    def __post_init__(self):
        if not (2 <= self.scale <= 26):
            raise ConfigError("scale must be in [2, 26] for an in-memory run")
        if self.edgefactor < 1:
            raise ConfigError("edgefactor must be >= 1")

    @property
    def nvertices(self) -> int:
        return 1 << self.scale

    @property
    def nedges(self) -> int:
        return self.edgefactor * self.nvertices


def kronecker_edges(cfg: Graph500Config) -> np.ndarray:
    """Generate the edge list, shape (2, nedges), vertices already permuted.

    Follows the Graph500 reference octave generator: one R-MAT bit per level,
    vectorized across all edges; then a random vertex relabeling to destroy
    degree locality.
    """
    rng = RngFactory(cfg.seed).stream("kron")
    m = cfg.nedges
    ij = np.zeros((2, m), dtype=np.int64)
    ab = A + B
    c_norm = C / (1.0 - ab)
    a_norm = A / ab
    for bit in range(cfg.scale):
        ii = rng.random(m) > ab
        jj = rng.random(m) > (c_norm * ii + a_norm * (~ii))
        ij[0] += (1 << bit) * ii
        ij[1] += (1 << bit) * jj
    perm = rng.permutation(cfg.nvertices)
    ij = perm[ij]
    # shuffle edge order as the reference does
    ij = ij[:, rng.permutation(m)]
    return ij


def build_csr(edges: np.ndarray, nvertices: int) -> Tuple[np.ndarray, np.ndarray]:
    """Undirected CSR (both directions), self-loops dropped, duplicates kept
    (harmless for BFS). Returns (row_starts, columns)."""
    src = np.concatenate([edges[0], edges[1]])
    dst = np.concatenate([edges[1], edges[0]])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    row_starts = np.zeros(nvertices + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=nvertices)
    np.cumsum(counts, out=row_starts[1:])
    return row_starts, dst


def serial_bfs(row_starts: np.ndarray, cols: np.ndarray, root: int) -> np.ndarray:
    """Reference BFS levels; -1 for unreached vertices."""
    n = row_starts.size - 1
    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    q = deque([root])
    while q:
        u = q.popleft()
        for v in cols[row_starts[u] : row_starts[u + 1]]:
            if level[v] < 0:
                level[v] = level[u] + 1
                q.append(int(v))
    return level


def pick_root(cfg: Graph500Config, row_starts: np.ndarray) -> int:
    """A deterministic non-isolated root (the spec samples search keys with
    degree > 0)."""
    rng = RngFactory(cfg.seed).stream("roots")
    n = row_starts.size - 1
    for _ in range(1000):
        r = int(rng.integers(0, n))
        if row_starts[r + 1] > row_starts[r]:
            return r
    raise ConfigError("could not find a non-isolated BFS root")


def validate_bfs(cfg: Graph500Config, edges: np.ndarray, root: int,
                 parent: np.ndarray) -> int:
    """Graph500 result validation; returns the number of reached vertices.

    Checks: root is its own parent; every reached vertex's parent edge exists
    in the graph; tree depths equal true BFS distances; the reached set is
    exactly root's connected component.
    """
    n = cfg.nvertices
    row_starts, cols = build_csr(edges, n)
    truth = serial_bfs(row_starts, cols, root)

    if parent[root] != root:
        raise AssertionError("BFS root is not its own parent")
    reached = np.flatnonzero(parent >= 0)
    want = np.flatnonzero(truth >= 0)
    if not np.array_equal(reached, want):
        raise AssertionError(
            f"reached-set mismatch: {reached.size} visited vs "
            f"{want.size} in root's component"
        )
    # edge-set membership of tree edges
    edge_set = set()
    for u, v in zip(edges[0].tolist(), edges[1].tolist()):
        edge_set.add((u, v))
        edge_set.add((v, u))
    # tree depth must equal true BFS distance
    depth = np.full(n, -1, dtype=np.int64)
    depth[root] = 0
    # compute depths by repeated sweeps (parent pointers form a DAG-free tree)
    pending = [v for v in reached.tolist() if v != root]
    guard = 0
    while pending:
        guard += 1
        if guard > n + 2:
            raise AssertionError("parent array contains a cycle")
        nxt = []
        for v in pending:
            p = int(parent[v])
            if (v, p) not in edge_set:
                raise AssertionError(
                    f"tree edge ({p} -> {v}) is not a graph edge"
                )
            if depth[p] >= 0:
                depth[v] = depth[p] + 1
            else:
                nxt.append(v)
        if len(nxt) == len(pending):
            raise AssertionError("parent array contains a cycle")
        pending = nxt
    mism = np.flatnonzero((truth >= 0) & (depth != truth))
    if mism.size:
        v = int(mism[0])
        raise AssertionError(
            f"vertex {v}: tree depth {int(depth[v])} != BFS distance "
            f"{int(truth[v])} (not a minimal BFS tree)"
        )
    return int(reached.size)


# -- distribution helpers ------------------------------------------------
def block_bounds(nvertices: int, nranks: int, rank: int) -> Tuple[int, int]:
    """1-D block partition of the vertex space (Graph500 reference style)."""
    per = (nvertices + nranks - 1) // nranks
    lo = min(rank * per, nvertices)
    return lo, min(lo + per, nvertices)


def owner_of(nvertices: int, nranks: int, v) -> np.ndarray:
    per = (nvertices + nranks - 1) // nranks
    return v // per
