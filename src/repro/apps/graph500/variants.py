"""Graph500 BFS variants (paper §III-C2):

- :func:`run_mpi` — the reference style: level-synchronous BFS with a 1-D
  vertex partition; per level, each rank expands its local frontier, routes
  (vertex, parent) discoveries to their owners with an MPI alltoall, drains
  what it receives, and an allreduce decides whether another level follows.
  Reference codes "must constantly poll for incoming data"; the alltoall is
  that polling made collective.
- :func:`run_hiper` — HiPER/AsyncSHMEM style, following the paper: owners do
  not poll. Discoveries are *put* into the owner's symmetric queue after an
  atomic reservation, and the paper's novel ``shmem_async_when`` predicates
  drain tasks on the queue's tail counter advancing — the runtime fires the
  drain exactly when data lands. A barrier + allreduce still delimits levels
  (BFS levels must be exact), so the paper's observation holds here too:
  little performance difference, much simpler receive logic.

Both produce minimal BFS parent trees validated by
:func:`repro.apps.graph500.common.validate_bfs`.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.apps.graph500.common import (
    Graph500Config,
    block_bounds,
    build_csr,
    kronecker_edges,
    owner_of,
    pick_root,
)
from repro.runtime.api import charge
from repro.runtime.future import Future, when_all
from repro.util.errors import ConfigError

#: Host cost charged per traversed edge (memory-bound graph walk).
SECONDS_PER_EDGE_FACTOR = 12.0  # flops-equivalent per edge


class _BfsRank:
    """Shared per-rank BFS state: local CSR block, visited/parent arrays."""

    def __init__(self, ctx, cfg: Graph500Config):
        self.ctx = ctx
        self.cfg = cfg
        self.me = ctx.rank
        self.n = ctx.nranks
        self.nv = cfg.nvertices
        # Every rank generates the same edge list deterministically and keeps
        # its own CSR rows (the reference generator distributes generation;
        # same data, different plumbing — see DESIGN.md).
        edges = kronecker_edges(cfg)
        self.row_starts, self.cols = build_csr(edges, self.nv)
        self.root = pick_root(cfg, self.row_starts)
        self.lo, self.hi = block_bounds(self.nv, self.n, self.me)
        self.parent = np.full(self.hi - self.lo, -1, dtype=np.int64)
        self.core_flops = ctx.config.machine.core_flops

    def expand(self, frontier: np.ndarray):
        """Expand local frontier vertices; returns (neighbors, parents)
        arrays of the discovered candidate edges (unfiltered)."""
        if frontier.size == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        starts = self.row_starts[frontier]
        ends = self.row_starts[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        charge(total * SECONDS_PER_EDGE_FACTOR / self.core_flops)
        nbrs = np.empty(total, dtype=np.int64)
        pars = np.empty(total, dtype=np.int64)
        pos = 0
        for v, s, e in zip(frontier, starts, ends):
            k = int(e - s)
            nbrs[pos : pos + k] = self.cols[s:e]
            pars[pos : pos + k] = v
            pos += k
        return nbrs, pars

    def absorb(self, verts: np.ndarray, pars: np.ndarray) -> np.ndarray:
        """Mark newly discovered local vertices; returns the new frontier
        (global vertex ids). First writer wins (any BFS parent is valid)."""
        if verts.size == 0:
            return np.empty(0, dtype=np.int64)
        charge(verts.size * SECONDS_PER_EDGE_FACTOR / self.core_flops)
        local = verts - self.lo
        fresh_mask = self.parent[local] < 0
        # np.unique-style first-wins within the batch:
        local_fresh = local[fresh_mask]
        pars_fresh = pars[fresh_mask]
        uniq, first_idx = np.unique(local_fresh, return_index=True)
        self.parent[uniq] = pars_fresh[first_idx]
        return uniq + self.lo


def _route(st: _BfsRank, nbrs: np.ndarray, pars: np.ndarray) -> List:
    """Group candidate (vertex, parent) pairs by owner rank."""
    out: List = [None] * st.n
    if nbrs.size == 0:
        return out
    owners = owner_of(st.nv, st.n, nbrs)
    order = np.argsort(owners, kind="stable")
    nbrs, pars, owners = nbrs[order], pars[order], owners[order]
    bounds = np.searchsorted(owners, np.arange(st.n + 1))
    for r in range(st.n):
        if bounds[r + 1] > bounds[r]:
            out[r] = np.stack(
                [nbrs[bounds[r] : bounds[r + 1]], pars[bounds[r] : bounds[r + 1]]]
            )
    return out


def run_mpi(ctx, cfg: Graph500Config):
    """Reference: level-synchronous BFS over MPI alltoall."""
    st = _BfsRank(ctx, cfg)
    mpi = ctx.mpi
    frontier = np.empty(0, dtype=np.int64)
    if st.lo <= st.root < st.hi:
        st.parent[st.root - st.lo] = st.root
        frontier = np.array([st.root], dtype=np.int64)

    while True:
        nbrs, pars = st.expand(frontier)
        outgoing = _route(st, nbrs, pars)
        incoming = yield mpi.alltoall_async(outgoing)
        verts = np.concatenate(
            [m[0] for m in incoming if m is not None]
            or [np.empty(0, dtype=np.int64)]
        )
        parents = np.concatenate(
            [m[1] for m in incoming if m is not None]
            or [np.empty(0, dtype=np.int64)]
        )
        frontier = st.absorb(verts, parents)
        total = yield mpi.allreduce_async(int(frontier.size), lambda a, b: a + b)
        if total == 0:
            break
    return st.parent


def run_hiper(ctx, cfg: Graph500Config, queue_slack: int = 6):
    """HiPER: puts into owner queues + shmem_async_when-driven drains.

    The receive queue is partitioned into one region per sender, so each
    region has a single writer: a sender writes its rows, then bumps its
    region's tail counter with an atomic add. Pairwise FIFO delivery makes
    the rows visible before the counter moves, so the owner's drain task —
    predicated on the counter via ``shmem_async_when`` — never reads
    unwritten slots. Drains overlap the level's communication; no polling.
    """
    st = _BfsRank(ctx, cfg)
    sh = ctx.shmem
    me, n = st.me, st.n

    # Tail counters are monotone across the whole search (no per-level
    # reset), so size each sender region for the worst case: the number of
    # my adjacency entries owned by that sender bounds what it can ever send
    # me (one candidate per cross edge). Take the global max so the
    # symmetric allocation has identical shape everywhere.
    my_cols = st.cols[st.row_starts[st.lo] : st.row_starts[st.hi]]
    incoming = np.bincount(owner_of(st.nv, n, my_cols), minlength=n)
    tails = sh.malloc(n, dtype=np.int64)
    percap = yield sh.reduce_async(
        int(incoming.max()) + 8, lambda a, b: max(a, b))
    queue = sh.malloc((n, percap, 2), dtype=np.int64)
    drained = [0] * n        # rows consumed per sender region
    sent = [0] * n           # rows written per target (sender side)
    new_frontier: List[np.ndarray] = []

    def arm_drain(s: int):
        """Drain region ``s`` when its tail advances (shmem_async_when)."""
        target = drained[s] + 1

        def drain():
            t = int(tails.arr[s])
            if t > drained[s]:
                rows = queue.arr[s, drained[s] : t]
                drained[s] = t
                new_frontier.append(
                    st.absorb(rows[:, 0].copy(), rows[:, 1].copy()))
            arm_drain(s)

        sh.async_when(tails, "ge", target, drain, index=s, daemon=True)

    for s in range(n):
        if s != me:
            arm_drain(s)
    yield sh.barrier_all_async()

    frontier = np.empty(0, dtype=np.int64)
    if st.lo <= st.root < st.hi:
        st.parent[st.root - st.lo] = st.root
        frontier = np.array([st.root], dtype=np.int64)

    while True:
        nbrs, pars = st.expand(frontier)
        outgoing = _route(st, nbrs, pars)
        for r in range(n):
            block = outgoing[r]
            if block is None:
                continue
            rows = block.T.copy()  # (k, 2)
            if r == me:
                new_frontier.append(st.absorb(rows[:, 0], rows[:, 1]))
                continue
            k = rows.shape[0]
            if sent[r] + k > percap:
                raise ConfigError(
                    "graph500 receive region overflow; raise queue_slack"
                )
            # write rows into my region at the target, then publish
            offset = (me * percap + sent[r]) * 2
            yield sh.put_async(queue, rows, r, offset=offset)
            yield sh.atomic_add_async(tails, k, r, index=me)
            sent[r] += k

        # Level boundary: barrier implies quiet, so all rows have LANDED —
        # but their async_when drain tasks may still be queued behind this
        # continuation. Sweep stragglers synchronously; the drains then see
        # ``drained`` already advanced and no-op (absorb is first-wins).
        yield sh.barrier_all_async()
        for s in range(n):
            if s == me:
                continue
            t = int(tails.arr[s])
            if t > drained[s]:
                rows = queue.arr[s, drained[s] : t]
                drained[s] = t
                new_frontier.append(
                    st.absorb(rows[:, 0].copy(), rows[:, 1].copy()))
        frontier = (
            np.concatenate(new_frontier) if new_frontier
            else np.empty(0, dtype=np.int64)
        )
        new_frontier.clear()
        total = yield sh.reduce_async(int(frontier.size), lambda a, b: a + b)
        if total == 0:
            break
    return st.parent


VARIANTS = {"mpi": run_mpi, "hiper": run_hiper}


def graph500_main(variant: str, cfg: Graph500Config) -> Callable:
    try:
        fn = VARIANTS[variant]
    except KeyError:
        raise ConfigError(
            f"unknown Graph500 variant {variant!r}; known: {sorted(VARIANTS)}"
        ) from None

    def main(ctx):
        return fn(ctx, cfg)

    main.__name__ = f"graph500_{variant}"
    return main
