"""GEO: a three-dimensional stencil for geophysical subsurface imaging
(paper §II-D and §III-B, Fig. 6).

A regular (nx, ny, nz_global) grid is distributed in the z-direction among
ranks. Each timestep applies a 7-point damped-averaging stencil and exchanges
one-plane halos with z-neighbors. Boundary conditions: Dirichlet zero on all
global faces.

This module holds everything the three variants share: configuration, the
vectorized stencil kernel, deterministic initialization, compute-cost
helpers, and the serial reference used for validation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.util.errors import ConfigError
from repro.util.rng import RngFactory

#: Stencil coefficients: new = C0*self + C1*sum(6 neighbors). C0 + 6*C1 = 1
#: keeps the update a convex average (unconditionally stable).
C0 = 0.4
C1 = 0.1

#: Flops per updated cell (6 adds + 2 muls).
FLOPS_PER_CELL = 8.0

#: Bytes touched per updated cell (7 reads + 1 write, 8-byte doubles):
#: stencils are memory-bound, so this drives the host cost model.
BYTES_PER_CELL = 64.0


@dataclasses.dataclass(frozen=True)
class GeoConfig:
    """Weak-scaling problem: each rank owns an (nx, ny, nz) slab."""

    nx: int = 32
    ny: int = 32
    nz: int = 32  # planes per rank
    timesteps: int = 4
    seed: int = 12345

    def __post_init__(self):
        if min(self.nx, self.ny, self.nz) < 3:
            raise ConfigError("GEO grid must be at least 3 cells per dimension")
        if self.timesteps < 1:
            raise ConfigError("GEO needs at least one timestep")

    @property
    def plane_cells(self) -> int:
        return self.nx * self.ny

    @property
    def plane_bytes(self) -> int:
        return self.plane_cells * 8

    def cells_per_rank(self) -> int:
        return self.plane_cells * self.nz


def initial_slab(cfg: GeoConfig, rank: int, nranks: int) -> np.ndarray:
    """This rank's initial field with halo planes: shape (nz+2, nx, ny).

    Plane index 0 and nz+1 are halos (zero-initialized; global boundaries
    stay zero for Dirichlet conditions). Deterministic per (seed, rank).
    """
    rng = RngFactory(cfg.seed).stream("geo", rank)
    slab = np.zeros((cfg.nz + 2, cfg.nx, cfg.ny), dtype=np.float64)
    slab[1 : cfg.nz + 1] = rng.random((cfg.nz, cfg.nx, cfg.ny))
    return slab


def stencil_planes(src: np.ndarray, dst: np.ndarray, z_lo: int, z_hi: int) -> None:
    """Apply the stencil to planes ``z_lo..z_hi-1`` (halo-indexed) of ``src``
    into ``dst``. Vectorized over the whole plane range (guide: prefer numpy
    broadcasting over Python loops). x/y faces are Dirichlet zero."""
    zs = slice(z_lo, z_hi)
    up = src[z_lo + 1 : z_hi + 1]
    down = src[z_lo - 1 : z_hi - 1]
    center = src[zs]
    acc = up + down
    # x neighbors (zero beyond the faces)
    acc[:, 1:, :] += center[:, :-1, :]
    acc[:, :-1, :] += center[:, 1:, :]
    # y neighbors
    acc[:, :, 1:] += center[:, :, :-1]
    acc[:, :, :-1] += center[:, :, 1:]
    dst[zs] = C0 * center + C1 * acc


def plane_compute_seconds(cfg: GeoConfig, planes: int, core_flops: float,
                          core_mem_bw: Optional[float] = None) -> float:
    """Virtual compute cost of updating ``planes`` z-planes on one core:
    roofline of the flop rate and the core's share of memory bandwidth
    (stencils are memory-bound on real nodes)."""
    cells = planes * cfg.plane_cells
    t = cells * FLOPS_PER_CELL / core_flops
    if core_mem_bw is not None and core_mem_bw > 0:
        t = max(t, cells * BYTES_PER_CELL / core_mem_bw)
    return t


def plane_cost_for(cfg: GeoConfig, machine_spec) -> float:
    """Per-plane host cost on one core of ``machine_spec``."""
    return plane_compute_seconds(
        cfg, 1, machine_spec.core_flops,
        machine_spec.mem_bw / machine_spec.cores,
    )


def gpu_kernel_costs(cfg: GeoConfig, planes: int) -> tuple:
    """(flops, bytes_moved) of a GPU stencil kernel over ``planes`` planes."""
    cells = planes * cfg.plane_cells
    return (cells * FLOPS_PER_CELL, cells * 8 * 8)  # 7 reads + 1 write


def reference_solution(cfg: GeoConfig, nranks: int) -> np.ndarray:
    """Serial evolution of the full global grid; returns the final field of
    shape (nranks*nz, nx, ny). The oracle every variant must match."""
    nz_g = cfg.nz * nranks
    u = np.zeros((nz_g + 2, cfg.nx, cfg.ny))
    for r in range(nranks):
        u[1 + r * cfg.nz : 1 + (r + 1) * cfg.nz] = initial_slab(cfg, r, nranks)[
            1 : cfg.nz + 1
        ]
    nxt = np.zeros_like(u)
    for _ in range(cfg.timesteps):
        stencil_planes(u, nxt, 1, nz_g + 1)
        u, nxt = nxt, u
        u[0] = 0.0
        u[nz_g + 1] = 0.0
    return u[1 : nz_g + 1].copy()


def check_result(cfg: GeoConfig, slabs: list) -> None:
    """Validate per-rank final slabs (list of (nz, nx, ny) arrays) against the
    serial reference; raises AssertionError with the max error on mismatch."""
    got = np.concatenate(slabs, axis=0)
    want = reference_solution(cfg, len(slabs))
    err = float(np.max(np.abs(got - want)))
    if not np.allclose(got, want, atol=1e-12):
        raise AssertionError(f"GEO result mismatch: max abs error {err:.3e}")
