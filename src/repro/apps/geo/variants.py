"""The three GEO implementations the paper compares (Fig. 6 and §II-D):

- :func:`run_mpi_omp` — MPI + OpenMP-style host parallelism (paper's first
  listing): parallel-for over planes, Isend/Irecv, Waitall.
- :func:`run_mpi_cuda` — hand-coded MPI + CUDA (second listing): kernels on
  the device with *blocking* cudaMemcpy calls in the critical path.
- :func:`run_hiper` — the HiPER composition (fourth listing): host computes
  the ghost planes (``forasync_future``), sends chain on the ghost future
  (``MPI_Isend_await``), the interior kernel awaits its transfers
  (``forasync_cuda``-style), and every copy is asynchronous
  (``async_copy_await``). The ~2% win comes from removing blocking device
  operations from the critical path.

All three produce bit-identical fields (validated against the serial
reference in tests), so timing differences isolate scheduling structure.

Each variant is a coroutine rank-main: call as
``spmd_run(geo_main(variant, cfg), config, module_factories=[...])``.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.apps.geo.common import (
    GeoConfig,
    gpu_kernel_costs,
    initial_slab,
    plane_cost_for,
    stencil_planes,
)
from repro.runtime.api import async_future_await, forasync_chunked, forasync_future
from repro.runtime.future import Future, satisfied_future, when_all
from repro.util.errors import ConfigError


def _plane_cost(ctx, cfg: GeoConfig) -> float:
    return plane_cost_for(cfg, ctx.config.machine)


_INIT_TAG = 1 << 20  # distinct from per-timestep tags


def _initial_halo_exchange(ctx, u: np.ndarray, nz: int):
    """Exchange the t=0 boundary planes so the first step sees neighbor data
    (coroutine helper: ``yield from`` it before the time loop)."""
    me, n = ctx.rank, ctx.nranks
    mpi = ctx.mpi
    down = me - 1 if me > 0 else None
    up = me + 1 if me < n - 1 else None
    sends = []
    if down is not None:
        sends.append(mpi.isend(u[1].copy(), down, tag=_INIT_TAG))
    if up is not None:
        sends.append(mpi.isend(u[nz].copy(), up, tag=_INIT_TAG))
    if down is not None:
        data, _, _ = yield mpi.irecv(src=down, tag=_INIT_TAG)
        u[0] = data
    if up is not None:
        data, _, _ = yield mpi.irecv(src=up, tag=_INIT_TAG)
        u[nz + 1] = data
    for f in sends:
        yield f


# ----------------------------------------------------------------------
# Variant 1: MPI + OpenMP-style host parallelism
# ----------------------------------------------------------------------
def run_mpi_omp(ctx, cfg: GeoConfig):
    me, n = ctx.rank, ctx.nranks
    mpi = ctx.mpi
    nz = cfg.nz
    plane_cost = _plane_cost(ctx, cfg)
    u = initial_slab(cfg, me, n)
    unew = np.zeros_like(u)
    down = me - 1 if me > 0 else None
    up = me + 1 if me < n - 1 else None
    yield from _initial_halo_exchange(ctx, u, nz)

    for t in range(cfg.timesteps):
        # Process ghost planes on this rank in parallel (omp parallel for).
        ghost = forasync_future(
            2, lambda i: stencil_planes(u, unew, 1 if i == 0 else nz,
                                        2 if i == 0 else nz + 1),
            cost_per_item=plane_cost,
            name=f"geo-ghost-t{t}",
        )
        yield ghost
        # Transmit ghost planes to neighbors and post receives.
        reqs: List[Future] = []
        if down is not None:
            reqs.append(mpi.isend(unew[1].copy(), down, tag=t))
        if up is not None:
            reqs.append(mpi.isend(unew[nz].copy(), up, tag=t))
        r_down = mpi.irecv(src=down, tag=t) if down is not None else None
        r_up = mpi.irecv(src=up, tag=t) if up is not None else None
        # Process the remainder of the z values in parallel.
        interior = forasync_future(
            range(2, nz),
            lambda z: stencil_planes(u, unew, z, z + 1),
            cost_per_item=plane_cost,
            name=f"geo-interior-t{t}",
        )
        yield interior
        # Wait for all sends/recvs to complete (MPI_Waitall).
        if r_down is not None:
            data, _, _ = yield r_down
            unew[0] = data
        else:
            unew[0] = 0.0
        if r_up is not None:
            data, _, _ = yield r_up
            unew[nz + 1] = data
        else:
            unew[nz + 1] = 0.0
        for f in reqs:
            yield f
        u, unew = unew, u
    return u[1 : nz + 1].copy()


# ----------------------------------------------------------------------
# Variant 2: hand-coded MPI + CUDA (blocking transfers)
# ----------------------------------------------------------------------
def run_mpi_cuda(ctx, cfg: GeoConfig):
    me, n = ctx.rank, ctx.nranks
    mpi, cu = ctx.mpi, ctx.cuda
    nz = cfg.nz
    down = me - 1 if me > 0 else None
    up = me + 1 if me < n - 1 else None

    host = initial_slab(cfg, me, n)
    yield from _initial_halo_exchange(ctx, host, nz)
    d_u = cu.malloc(host.shape)
    d_unew = cu.malloc(host.shape)
    yield cu.memcpy_async(d_u, host)

    ghost_lo = np.zeros((cfg.nx, cfg.ny))
    ghost_hi = np.zeros((cfg.nx, cfg.ny))

    for t in range(cfg.timesteps):
        a, b = d_u, d_unew
        kf, kb = gpu_kernel_costs(cfg, 2)
        # Ghost-plane kernel, then BLOCKING device-to-host copies (the
        # paper's point: cudaMemcpy wastes host cycles here).
        yield cu.kernel_async(
            lambda: (stencil_planes(a.data, b.data, 1, 2),
                     stencil_planes(a.data, b.data, nz, nz + 1)),
            flops=kf, bytes_moved=kb,
        )
        yield cu.memcpy_async(ghost_lo, b, index=1)
        yield cu.memcpy_async(ghost_hi, b, index=nz)
        reqs: List[Future] = []
        if down is not None:
            reqs.append(mpi.isend(ghost_lo.copy(), down, tag=t))
        if up is not None:
            reqs.append(mpi.isend(ghost_hi.copy(), up, tag=t))
        r_down = mpi.irecv(src=down, tag=t) if down is not None else None
        r_up = mpi.irecv(src=up, tag=t) if up is not None else None
        # Interior kernel.
        kf, kb = gpu_kernel_costs(cfg, nz - 2)
        yield cu.kernel_async(
            lambda: stencil_planes(a.data, b.data, 2, nz),
            flops=kf, bytes_moved=kb,
        )
        # Waitall, then BLOCKING host-to-device halo copies.
        if r_down is not None:
            data, _, _ = yield r_down
            yield cu.memcpy_async(b, data, index=0)
        else:
            yield cu.kernel_async(lambda: b.data.__setitem__(0, 0.0), flops=1)
        if r_up is not None:
            data, _, _ = yield r_up
            yield cu.memcpy_async(b, data, index=nz + 1)
        else:
            yield cu.kernel_async(
                lambda: b.data.__setitem__(nz + 1, 0.0), flops=1)
        for f in reqs:
            yield f
        d_u, d_unew = d_unew, d_u

    out = np.zeros((nz, cfg.nx, cfg.ny))
    yield cu.memcpy_async(out, d_u, index=slice(1, nz + 1))
    return out


# ----------------------------------------------------------------------
# Variant 3: HiPER — future-based composition of host, CUDA, and MPI
# ----------------------------------------------------------------------
def run_hiper(ctx, cfg: GeoConfig):
    if cfg.nz < 4:
        raise ConfigError("HiPER GEO partitioning needs nz >= 4")
    me, n = ctx.rank, ctx.nranks
    mpi, cu = ctx.mpi, ctx.cuda
    nz = cfg.nz
    plane_cost = _plane_cost(ctx, cfg)
    down = me - 1 if me > 0 else None
    up = me + 1 if me < n - 1 else None

    # Host owns planes {1, nz} (the "ghost region"); the device owns the
    # interior {2..nz-1}. Each keeps the one-plane overlap it needs, moved
    # asynchronously every step.
    hu = initial_slab(cfg, me, n)
    yield from _initial_halo_exchange(ctx, hu, nz)
    hunew = np.zeros_like(hu)
    d_u = cu.malloc(hu.shape)
    d_unew = cu.malloc(hu.shape)
    yield cu.memcpy_async(d_u, hu)

    for t in range(cfg.timesteps):
        a, b, ha, hb = d_u, d_unew, hu, hunew
        # Asynchronous overlap copies (old values), all off the critical path:
        d2h_lo = cu.memcpy_async(ha[2], a, index=2, stream=1)
        d2h_hi = cu.memcpy_async(ha[nz - 1], a, index=nz - 1, stream=1)
        h2d_lo = cu.memcpy_async(a, ha[1], index=1, stream=2)
        h2d_hi = cu.memcpy_async(a, ha[nz], index=nz, stream=2)

        # Asynchronously process ghost planes on the host once their device
        # overlap plane arrives (forasync_future in the paper's listing).
        f_lo = async_future_await(
            lambda: stencil_planes(ha, hb, 1, 2), d2h_lo,
            cost=plane_cost, name=f"geo-hghost-lo-t{t}",
        )
        f_hi = async_future_await(
            lambda: stencil_planes(ha, hb, nz, nz + 1), d2h_hi,
            cost=plane_cost, name=f"geo-hghost-hi-t{t}",
        )

        # Asynchronously exchange ghost planes (MPI_Isend_await on the ghost
        # futures; receives post immediately).
        pending: List[Future] = [f_lo, f_hi]
        if down is not None:
            pending.append(mpi.isend_await(lambda: hb[1].copy(), down, f_lo,
                                           tag=t))
            r = mpi.irecv(src=down, tag=t)
            pending.append(async_future_await(
                lambda fr=r: hb.__setitem__(0, fr.value()[0]), r,
                name=f"geo-halo-lo-t{t}",
            ))
        else:
            hb[0] = 0.0
        if up is not None:
            pending.append(mpi.isend_await(lambda: hb[nz].copy(), up, f_hi,
                                           tag=t))
            r = mpi.irecv(src=up, tag=t)
            pending.append(async_future_await(
                lambda fr=r: hb.__setitem__(nz + 1, fr.value()[0]), r,
                name=f"geo-halo-hi-t{t}",
            ))
        else:
            hb[nz + 1] = 0.0

        # Asynchronously process the interior on the device once its host
        # overlap planes arrive (forasync_cuda awaiting futures).
        kf, kb = gpu_kernel_costs(cfg, nz - 2)
        pending.append(cu.kernel_async(
            lambda: stencil_planes(a.data, b.data, 2, nz),
            flops=kf, bytes_moved=kb,
            await_futures=[h2d_lo, h2d_hi],
        ))

        # The outer finish scope of the paper's listing:
        yield when_all(pending)
        d_u, d_unew, hu, hunew = d_unew, d_u, hunew, hu

    out = np.zeros((nz, cfg.nx, cfg.ny))
    out[0] = hu[1]
    out[nz - 1] = hu[nz]
    mid = np.zeros((nz - 2, cfg.nx, cfg.ny))
    yield cu.memcpy_async(mid, d_u, index=slice(2, nz))
    out[1 : nz - 1] = mid
    return out


VARIANTS = {
    "mpi_omp": run_mpi_omp,
    "mpi_cuda": run_mpi_cuda,
    "hiper": run_hiper,
}


def geo_main(variant: str, cfg: GeoConfig) -> Callable:
    """Build a rank-main for :func:`repro.distrib.spmd_run`."""
    try:
        fn = VARIANTS[variant]
    except KeyError:
        raise ConfigError(
            f"unknown GEO variant {variant!r}; known: {sorted(VARIANTS)}"
        ) from None

    def main(ctx):
        return fn(ctx, cfg)

    main.__name__ = f"geo_{variant}"
    return main
