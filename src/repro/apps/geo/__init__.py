"""GEO: 3-D geophysical stencil (paper §II-D, §III-B, Fig. 6)."""

from repro.apps.geo.common import (
    GeoConfig,
    check_result,
    initial_slab,
    plane_compute_seconds,
    reference_solution,
    stencil_planes,
)
from repro.apps.geo.variants import VARIANTS, geo_main, run_hiper, run_mpi_cuda, run_mpi_omp

__all__ = [
    "GeoConfig",
    "check_result",
    "initial_slab",
    "plane_compute_seconds",
    "reference_solution",
    "stencil_planes",
    "VARIANTS",
    "geo_main",
    "run_hiper",
    "run_mpi_cuda",
    "run_mpi_omp",
]
