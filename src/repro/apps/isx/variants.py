"""ISx variants (paper Fig. 5):

- :func:`run_flat` — "Flat OpenSHMEM": one single-threaded PE per core,
  direct library calls. Fastest at small scale; collapses at large node
  counts because every core-PE participates in the global all-to-all
  (per-node NICs serialize P·cores incoming messages).
- :func:`run_hybrid` — "OpenSHMEM+OpenMP": one PE per node, worker-parallel
  bucketizing/sorting, same exchange with node-count participants only.
- :func:`run_hiper` — "AsyncSHMEM"/HiPER: hybrid layout, but bucket blocks
  are produced by tasks and each put chains on its block's future, letting
  the exchange overlap the remaining bucketize work. The paper reports this
  comparable to the hybrid reference (the exchange dominates), which is the
  expected shape here too.

All variants share the key generator, router, and validator in ``common``.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.apps.isx.common import (
    BUCKETIZE_OPS_PER_KEY,
    SORT_OPS_PER_KEY,
    IsxConfig,
    compute_seconds,
    generate_keys,
    local_sort,
    route_keys,
)
from repro.runtime.api import async_future, charge, forasync_future
from repro.runtime.future import Future, when_all
from repro.util.errors import ConfigError


def _flops(ctx) -> float:
    return ctx.config.machine.core_flops


def _exchange(ctx, cfg: IsxConfig, grouped: np.ndarray, counts: np.ndarray,
              window, tail):
    """The put/fadd all-to-all: reserve space in each target's window with an
    atomic fetch-add, then put the key block. Coroutine (yield from)."""
    sh = ctx.shmem
    me, n = ctx.rank, ctx.nranks
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Pipeline the space reservations: fire every fetch-add, then collect —
    # the round trips overlap instead of serializing (as real ISx's
    # nonblocking AMOs do). The whole reservation sweep goes out as one
    # wave, priced by the fabric in a single vectorized pass.
    res_pes: List[int] = []
    res_cnts: List[int] = []
    for k in range(n):
        pe = (me + k) % n  # stagger targets to avoid systematic hotspots
        cnt = int(counts[pe])
        if cnt:
            res_pes.append(pe)
            res_cnts.append(cnt)
    reservations = list(zip(
        res_pes, res_cnts, sh.atomic_fetch_add_wave(tail, res_cnts, res_pes)))
    puts: List[Future] = []
    for pe, cnt, fut in reservations:
        base = yield fut
        if base + cnt > window.size:
            raise ConfigError(
                f"ISx receive window overflow on PE {pe}: "
                f"{base + cnt} > {window.size}; raise IsxConfig.slack"
            )
        block = grouped[offsets[pe] : offsets[pe] + cnt]
        puts.append(sh.put_async(window, block, pe, offset=int(base),
                                 nbytes=block.nbytes * cfg.byte_scale))
    for f in puts:
        yield f
    yield sh.barrier_all_async()  # barrier implies quiet: all puts landed


def run_flat(ctx, cfg: IsxConfig):
    """Flat OpenSHMEM: sequential local phases, direct exchange."""
    sh = ctx.shmem
    me, n = ctx.rank, ctx.nranks
    flops = _flops(ctx)
    window = sh.malloc(cfg.window_size(), dtype=np.int64)
    tail = sh.malloc(1, dtype=np.int64)
    yield sh.barrier_all_async()

    keys = generate_keys(cfg, me, n)
    grouped, counts = route_keys(cfg, n, keys)
    charge(cfg.byte_scale
           * compute_seconds(keys.size, BUCKETIZE_OPS_PER_KEY, flops))

    yield from _exchange(ctx, cfg, grouped, counts, window, tail)

    nrecv = int(tail.arr[0])
    result = local_sort(window.arr[:nrecv].copy())
    charge(cfg.byte_scale * compute_seconds(nrecv, SORT_OPS_PER_KEY, flops))
    yield sh.barrier_all_async()
    return result


def run_hybrid(ctx, cfg: IsxConfig):
    """OpenSHMEM+OpenMP: worker-parallel local phases, same exchange."""
    sh = ctx.shmem
    me, n = ctx.rank, ctx.nranks
    flops = _flops(ctx)
    nworkers = ctx.runtime.num_workers
    window = sh.malloc(cfg.window_size(), dtype=np.int64)
    tail = sh.malloc(1, dtype=np.int64)
    yield sh.barrier_all_async()

    keys = generate_keys(cfg, me, n)
    # Parallel bucketize: chunk the keys across workers, then merge counts.
    chunk_results: List = [None] * nworkers
    bounds = np.linspace(0, keys.size, nworkers + 1, dtype=np.int64)

    def bucketize(i):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        chunk_results[i] = route_keys(cfg, n, keys[lo:hi])

    yield forasync_future(
        nworkers, bucketize,
        cost_per_item=cfg.byte_scale * compute_seconds(
            keys.size // max(nworkers, 1), BUCKETIZE_OPS_PER_KEY, flops),
        name="isx-bucketize",
    )
    counts = np.sum([c for _, c in chunk_results], axis=0).astype(np.int64)
    grouped = _merge_groups(n, chunk_results)

    yield from _exchange(ctx, cfg, grouped, counts, window, tail)

    nrecv = int(tail.arr[0])
    received = window.arr[:nrecv].copy()
    # Parallel local sort: sort worker-chunks, then merge (cost-charged).
    result_box = [None]

    def do_sort():
        result_box[0] = local_sort(received)

    yield async_future(
        do_sort,
        cost=cfg.byte_scale
        * compute_seconds(nrecv, SORT_OPS_PER_KEY, flops) / max(nworkers, 1),
    )
    yield sh.barrier_all_async()
    return result_box[0]


def run_hiper(ctx, cfg: IsxConfig):
    """AsyncSHMEM: bucket blocks produced by tasks; puts chain on futures so
    the exchange overlaps the remaining local work."""
    sh = ctx.shmem
    me, n = ctx.rank, ctx.nranks
    flops = _flops(ctx)
    nworkers = ctx.runtime.num_workers
    window = sh.malloc(cfg.window_size(), dtype=np.int64)
    tail = sh.malloc(1, dtype=np.int64)
    yield sh.barrier_all_async()

    keys = generate_keys(cfg, me, n)
    nchunks = max(nworkers, 1)
    bounds = np.linspace(0, keys.size, nchunks + 1, dtype=np.int64)
    chunk_cost = cfg.byte_scale * compute_seconds(
        keys.size // nchunks, BUCKETIZE_OPS_PER_KEY, flops)

    # Each chunk task routes its keys, immediately reserves space at each
    # target (atomic) and fires the puts — exchange begins while other
    # chunks are still bucketizing.
    def make_chunk(i: int):
        def chunk():  # coroutine task
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            grouped, counts = route_keys(cfg, n, keys[lo:hi])
            offs = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offs[1:])
            res_pes: List[int] = []
            res_cnts: List[int] = []
            for k in range(n):
                pe = (me + k) % n
                cnt = int(counts[pe])
                if cnt:
                    res_pes.append(pe)
                    res_cnts.append(cnt)
            reservations = list(zip(
                res_pes, res_cnts,
                sh.atomic_fetch_add_wave(tail, res_cnts, res_pes)))
            puts = []
            for pe, cnt, fut in reservations:
                base = yield fut
                if base + cnt > window.size:
                    raise ConfigError("ISx receive window overflow")
                block = grouped[offs[pe] : offs[pe] + cnt]
                puts.append(sh.put_async(window, block, pe, offset=int(base),
                                         nbytes=block.nbytes * cfg.byte_scale))
            for f in puts:
                yield f

        return chunk

    chunk_futs = [
        ctx.runtime.spawn(make_chunk(i), name=f"isx-chunk{i}",
                          cost=chunk_cost, return_future=True)
        for i in range(nchunks)
    ]
    yield when_all(chunk_futs)
    yield sh.barrier_all_async()

    nrecv = int(tail.arr[0])
    received = window.arr[:nrecv].copy()
    result_box = [None]

    def do_sort():
        result_box[0] = local_sort(received)

    yield async_future(
        do_sort,
        cost=cfg.byte_scale
        * compute_seconds(nrecv, SORT_OPS_PER_KEY, flops) / max(nworkers, 1),
    )
    yield sh.barrier_all_async()
    return result_box[0]


def _merge_groups(n: int, chunk_results) -> np.ndarray:
    """Concatenate per-chunk grouped arrays into target-major order, so the
    merged array is grouped by target PE with block sizes equal to the summed
    per-chunk counts."""
    chunk_offsets = []
    for _, counts in chunk_results:
        offs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offs[1:])
        chunk_offsets.append(offs)
    pieces = [
        grouped[offs[pe] : offs[pe + 1]]
        for pe in range(n)
        for (grouped, _), offs in zip(chunk_results, chunk_offsets)
    ]
    return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)


VARIANTS = {
    "flat": run_flat,
    "hybrid": run_hybrid,
    "hiper": run_hiper,
}


def isx_main(variant: str, cfg: IsxConfig) -> Callable:
    try:
        fn = VARIANTS[variant]
    except KeyError:
        raise ConfigError(
            f"unknown ISx variant {variant!r}; known: {sorted(VARIANTS)}"
        ) from None

    def main(ctx):
        return fn(ctx, cfg)

    main.__name__ = f"isx_{variant}"
    return main
