"""ISx: scalable integer sort (paper §III-B, Fig. 5).

Each PE generates ``keys_per_pe`` uniform integer keys, bucket-routes them to
their owner PE (key range is block-partitioned), and locally counting-sorts
what it receives. The bucket exchange is an all-to-all of puts preceded by
atomic fetch-adds to reserve space in the target's receive window — the
communication pattern whose per-NIC incast produces the paper's flat-variant
collapse at scale.

Weak scaling: ``keys_per_pe`` is constant as PEs grow.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.util.errors import ConfigError
from repro.util.rng import RngFactory

#: Approximate host instruction cost per key for bucketizing / sorting,
#: expressed in flops charged against the machine's per-core flop rate.
BUCKETIZE_OPS_PER_KEY = 6.0
SORT_OPS_PER_KEY = 8.0


@dataclasses.dataclass(frozen=True)
class IsxConfig:
    keys_per_pe: int = 1 << 14
    max_key: int = 1 << 28
    seed: int = 777
    #: Receive-window slack factor over the expected keys_per_pe.
    slack: float = 1.6
    #: Shape-preserving workload scale (DESIGN.md §2): compute costs and
    #: message wire sizes are charged as if each key array were this many
    #: times larger, while the actual arrays stay small enough for an
    #: in-memory Python run. The paper's 2^29 keys/PE maps to e.g.
    #: keys_per_pe=2^11 with byte_scale=2^18.
    byte_scale: int = 1

    def __post_init__(self):
        if self.keys_per_pe < 1:
            raise ConfigError("keys_per_pe must be positive")
        if self.max_key < 2:
            raise ConfigError("max_key must be at least 2")
        if self.byte_scale < 1:
            raise ConfigError("byte_scale must be >= 1")

    def window_size(self) -> int:
        return int(self.keys_per_pe * self.slack) + 64


def bucket_width(cfg: IsxConfig, npes: int) -> int:
    return (cfg.max_key + npes - 1) // npes


def generate_keys(cfg: IsxConfig, rank: int, npes: int) -> np.ndarray:
    rng = RngFactory(cfg.seed).stream("isx", rank)
    return rng.integers(0, cfg.max_key, size=cfg.keys_per_pe, dtype=np.int64)


def route_keys(cfg: IsxConfig, npes: int, keys: np.ndarray):
    """Split ``keys`` into per-target contiguous blocks.

    Returns ``(targets_sorted_keys, counts)`` where counts[p] is the number
    of keys destined for PE p and the keys are grouped by target in
    ascending-target order (stable).
    """
    width = bucket_width(cfg, npes)
    targets = keys // width
    order = np.argsort(targets, kind="stable")
    grouped = keys[order]
    counts = np.bincount(targets, minlength=npes).astype(np.int64)
    return grouped, counts


def local_sort(received: np.ndarray) -> np.ndarray:
    """Counting sort of the received keys (they share one bucket range)."""
    return np.sort(received, kind="stable")


def compute_seconds(nkeys: int, ops_per_key: float, core_flops: float) -> float:
    return nkeys * ops_per_key / core_flops


def validate_isx(cfg: IsxConfig, npes: int,
                 final_keys: List[np.ndarray]) -> None:
    """Check the global sort: ownership ranges, per-PE sortedness, and exact
    multiset conservation against the generated input."""
    width = bucket_width(cfg, npes)
    total = 0
    for pe, arr in enumerate(final_keys):
        total += arr.size
        if arr.size == 0:
            continue
        if not np.all(np.diff(arr) >= 0):
            raise AssertionError(f"PE {pe}: received keys not sorted")
        if arr.min() < pe * width or arr.max() >= (pe + 1) * width:
            raise AssertionError(
                f"PE {pe}: key outside its bucket range "
                f"[{pe * width}, {(pe + 1) * width})"
            )
    if total != npes * cfg.keys_per_pe:
        raise AssertionError(
            f"key count mismatch: {total} received vs "
            f"{npes * cfg.keys_per_pe} generated"
        )
    got = np.sort(np.concatenate([a for a in final_keys if a.size]))
    want = np.sort(np.concatenate(
        [generate_keys(cfg, r, npes) for r in range(npes)]))
    if not np.array_equal(got, want):
        raise AssertionError("global key multiset does not match the input")
