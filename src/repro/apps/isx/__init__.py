"""ISx integer sort (paper §III-B, Fig. 5)."""

from repro.apps.isx.common import (
    IsxConfig,
    bucket_width,
    generate_keys,
    local_sort,
    route_keys,
    validate_isx,
)
from repro.apps.isx.variants import VARIANTS, isx_main, run_flat, run_hiper, run_hybrid

__all__ = [
    "IsxConfig",
    "bucket_width",
    "generate_keys",
    "local_sort",
    "route_keys",
    "validate_isx",
    "VARIANTS",
    "isx_main",
    "run_flat",
    "run_hiper",
    "run_hybrid",
]
