"""Benchmark applications from the paper's evaluation (§III): GEO, ISx, UTS,
Graph500, and HPGMG-FV — each with its reference variants and a HiPER
variant, sharing workload generators and validators."""
