"""Paper workload presets, scaled (DESIGN.md §2 "shape-preserving scaling").

The paper's exact configurations (§III-A) are far beyond an in-process
Python run — ISx sorts 2^29 keys per PE, UTS walks the ~4.2-billion-node
T1XXL tree, Graph500 uses 2^31 vertices. Each preset maps the paper's
configuration to a scaled instance that keeps the communication-to-compute
ratios and statistical character, with a ``scale`` knob (1.0 = the sizes the
shipped benchmarks use; larger values approach the paper's at higher
simulation cost).
"""

from __future__ import annotations

from repro.apps.geo.common import GeoConfig
from repro.apps.graph500.common import Graph500Config
from repro.apps.hpgmg.solver import HpgmgConfig
from repro.apps.isx.common import IsxConfig
from repro.apps.uts.common import UtsConfig
from repro.net.coalesce import CoalescePolicy
from repro.util.errors import ConfigError


def _check_scale(scale: float) -> None:
    if not (0.1 <= scale <= 64):
        raise ConfigError(f"preset scale {scale} outside the sane range [0.1, 64]")


def isx_weak_scaling(scale: float = 1.0) -> IsxConfig:
    """Paper: 2^29 keys per PE (weak scaling). Carried keys x byte_scale
    reproduce the wire/compute volume; scale multiplies carried keys."""
    _check_scale(scale)
    return IsxConfig(
        keys_per_pe=max(256, int((1 << 11) * scale)),
        byte_scale=1 << 7,
        max_key=1 << 28,
    )


def uts_t1xxl(scale: float = 1.0) -> UtsConfig:
    """Paper: geometric T1XXL (~4.2e9 nodes, ~1 us of SHA-1 work per node).
    Scaled tree with the same root-heavy geometric shape; expected size
    ~1e5 x scale nodes."""
    _check_scale(scale)
    return UtsConfig(
        root_children=max(100, int(3000 * scale)),
        mean_children=0.97,
        node_cost=2e-6,
        seed=1,
    )


def graph500_reference(scale_exponent: int = 12) -> Graph500Config:
    """Paper: scale 31, edgefactor 16. Same generator and parameters at a
    laptop-size scale exponent."""
    if not (4 <= scale_exponent <= 22):
        raise ConfigError("scale_exponent must be in [4, 22] for in-memory runs")
    return Graph500Config(scale=scale_exponent, edgefactor=16)


def hpgmg_paper(scale: float = 1.0) -> HpgmgConfig:
    """Paper: log2(box_dim)=7 (128^3 boxes), 8 boxes per rank. Same box
    structure at box_dim=8 x scale."""
    _check_scale(scale)
    box_dim = 8
    if scale >= 2:
        box_dim = 16
    if scale >= 8:
        box_dim = 32
    return HpgmgConfig(box_dim=box_dim, boxes_xy=2, boxes_z_per_rank=2)


def geo_weak_scaling(scale: float = 1.0) -> GeoConfig:
    """The geophysical stencil: per-rank slab grows with scale."""
    _check_scale(scale)
    n = max(8, int(32 * scale))
    return GeoConfig(nx=n, ny=n, nz=n, timesteps=4)


def comm_coalesce() -> CoalescePolicy:
    """Coalescing policy for the fine-grained benchmarks (ISx bucket
    exchange, Graph500 frontier pushes): batch up to 32 messages / 32 KiB
    per destination, flushing lone stragglers after 5 us of virtual time.
    Pass as ``coalesce=`` to a comm module factory."""
    return CoalescePolicy(max_msgs=32, max_bytes=1 << 15, flush_interval=5e-6)


PRESETS = {
    "isx": isx_weak_scaling,
    "uts": uts_t1xxl,
    "graph500": graph500_reference,
    "hpgmg": hpgmg_paper,
    "geo": geo_weak_scaling,
}
