"""UTS variants (paper §III-C1, Fig. 7):

- :func:`run_shmem_omp` — "OpenSHMEM+OpenMP": continuous worker-parallel
  expansion within a rank, *lock-based synchronous* distributed stealing
  (lock victim, read, copy, update, unlock — 4-5 round trips, thieves
  serialized per victim). This is the variant whose "contention from
  distributed load balancing" degrades beyond ~128 ranks in the paper.
- :func:`run_omp_tasks` — "OpenSHMEM+OpenMP Tasks": expansion in task waves
  with a taskwait barrier after each wave ("repeatedly use coarse-grain
  synchronization to wait on all pending tasks before checking for
  completion and performing distributed load balancing").
- :func:`run_hiper` — "AsyncSHMEM": the same parallel structure as
  shmem_omp (paper: "identical in the structure of their parallelism"), but
  stealing is asynchronous and lock-free (read cursor/top, one
  compare-and-swap claim, one get — never a held lock), and communication
  composes with tasks on one runtime.

Shared machinery (:class:`_UtsRank`): a per-PE shared steal stack in
symmetric memory with a monotone write cursor (owner is the only producer,
so rows below ``top`` are always fully written), a take-cursor for disjoint
thief claims, a global outstanding-node counter for exact termination
detection, and a done flag broadcast by whichever rank retires the last node.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.apps.uts.common import (
    Node,
    UtsConfig,
    expand_chunk,
    pack,
    root_node,
    unpack,
)
from repro.runtime.api import async_future, timer_future
from repro.runtime.future import Future, Promise, when_all, when_any
from repro.util.errors import ConfigError

#: Rows of the per-PE steal stack (cumulative exports; generous bound).
STACK_ROWS = 1 << 14
#: Local backlog (in chunks) above which a rank exports work to its stack.
EXPORT_THRESHOLD_CHUNKS = 1
#: Victims probed per steal round.
PROBE_FANOUT = 4
#: Idle backoff bounds (virtual seconds).
BACKOFF_MIN = 5e-6
BACKOFF_MAX = 2e-4


def _broadcast_done_body(st: "_UtsRank"):
    """Body of PE0's termination watcher task: tell every PE we are done."""
    yield from st.broadcast_done()


class _UtsRank:
    """Per-rank state and the shared steal-stack / termination protocol."""

    def __init__(self, ctx, cfg: UtsConfig):
        self.ctx = ctx
        self.cfg = cfg
        self.sh = ctx.shmem
        self.me = ctx.rank
        self.n = ctx.nranks
        self.local: List[Node] = []
        self.active = 0
        self.processed = 0
        self.max_active = ctx.runtime.num_workers * 2
        self.export_rows_used = 0
        self.pending_delta = 0
        self.flush_threshold = cfg.chunk * 4
        self._export_chain = None  # serializes publish_export calls
        self._idle_promise = None
        self._steal_rng = ctx.runtime.rng_factory.stream("uts-steal")
        # Symmetric state (identical allocation order on every PE).
        self.stack = self.sh.malloc((STACK_ROWS, 2), dtype=np.int64)
        self.top = self.sh.malloc(1, dtype=np.int64)        # readable height
        self.cursor = self.sh.malloc(1, dtype=np.int64)     # take cursor
        self.lock = self.sh.malloc(1, dtype=np.int64)       # per-PE lock
        self.outstanding = self.sh.malloc(1, dtype=np.int64)  # PE0 only
        self.done_sym = self.sh.malloc(1, dtype=np.int64)

    # -- lifecycle -----------------------------------------------------
    def setup(self):
        if self.me == 0:
            self.sh.local_store(self.outstanding, 0, 1)  # the root
            self.local.append(root_node(self.cfg))
            # Termination detection lives at PE0: the paper's novel
            # shmem_async_when predicates the done-broadcast task on the
            # global counter reaching zero — re-checked on every atomic
            # update that lands here, no polling loop anywhere.
            self.sh.async_when(
                self.outstanding, "eq", 0,
                lambda: _broadcast_done_body(self),
            )
        yield self.sh.barrier_all_async()

    @property
    def done(self) -> bool:
        return bool(self.done_sym.arr[0] == 1)

    def done_future(self) -> Future:
        return self.sh.wait_until_async(self.done_sym, "eq", 1)

    def broadcast_done(self):
        puts = [self.sh.put_async(self.done_sym, np.array([1]), pe)
                for pe in range(self.n)]
        for f in puts:
            yield f

    def account(self, expanded: int, created: int):
        """Retire ``expanded`` nodes / register ``created`` children with the
        global counter at PE0.

        Accounting is batched locally (as in the reference UTS-SHMEM code)
        and flushed with *non-fetching* adds — zero detection happens at PE0
        via the ``shmem_async_when`` watcher armed in :meth:`setup`.
        Correctness relies on credit-before-debit causality: a node's credit
        reaches PE0 before any debit of that node can (same-pair FIFO for
        locally-processed nodes; the pre-export ``quiet`` barrier in
        :meth:`publish_export` for stolen ones), so the counter never
        transiently touches zero.
        """
        self.pending_delta += created - expanded
        if abs(self.pending_delta) >= self.flush_threshold:
            yield from self.flush_account()

    def flush_account(self):
        """Push any pending delta to the global counter (also called before
        idling/stealing/exporting so termination cannot stall on a hoarded
        delta)."""
        delta, self.pending_delta = self.pending_delta, 0
        if delta == 0:
            return
        yield self.sh.atomic_add_async(self.outstanding, delta, 0)

    # -- idle signalling -------------------------------------------------
    def idle_future(self) -> Future:
        self._idle_promise = Promise(name=f"uts-idle-pe{self.me}")
        return self._idle_promise.get_future()

    def wake_idle(self) -> None:
        p, self._idle_promise = self._idle_promise, None
        if p is not None and not p.satisfied:
            p.put(None)

    # -- export (owner is the only producer of its stack) ----------------
    def take_export_rows(self):
        """Synchronously decide and remove surplus work for export; returns
        ``(rows, base)`` or ``None``. Kept separate from the (asynchronous)
        publish so callers can keep spawning compute before the puts fly."""
        cfg = self.cfg
        threshold = cfg.chunk * EXPORT_THRESHOLD_CHUNKS
        surplus = len(self.local) - threshold
        if surplus < cfg.chunk:
            return None
        nexport = min(surplus // 2 + 1, cfg.chunk * 4)
        if self.export_rows_used + nexport > STACK_ROWS:
            return None  # stack exhausted; keep work local
        rows = np.array(
            [pack(self.local.pop(0)) for _ in range(nexport)], dtype=np.int64
        )
        base = self.export_rows_used
        self.export_rows_used += nexport
        return rows, base

    def publish_export(self, export):
        """Write rows, then publish by raising top: rows below top are always
        complete, so lock-free thieves never read garbage.

        The flush+quiet BEFORE raising ``top`` guarantees every exported
        node's credit has been applied at PE0 before any thief can see (and
        later debit) it — the causality that keeps the termination counter
        strictly positive until the true end."""
        rows, base = export
        # Serialize publications: ``top`` certifies a fully-written prefix,
        # so export i+1 must not raise it before export i's rows landed.
        prev, gate = self._export_chain, Promise(name=f"uts-export-pe{self.me}")
        self._export_chain = gate.get_future()
        if prev is not None:
            yield prev
        try:
            yield from self.flush_account()
            yield self.sh.quiet_async()
            yield self.sh.put_async(self.stack, rows, self.me, offset=base * 2)
            yield self.sh.atomic_fetch_add_async(self.top, len(rows), self.me)
        finally:
            gate.put(None)

    def maybe_export(self):
        export = self.take_export_rows()
        if export is not None:
            yield from self.publish_export(export)

    # -- stealing ---------------------------------------------------------
    def victims(self) -> List[int]:
        """Steal candidates: own stack first (reclaiming exported surplus is
        cheap and keeps exports from being orphaned), then random others."""
        others = [r for r in range(self.n) if r != self.me]
        self._steal_rng.shuffle(others)
        return [self.me] + others[:PROBE_FANOUT]

    def steal_lockfree(self):
        """AsyncSHMEM steal: read cursor/top, claim rows with one
        compare-and-swap, fetch them. No lock is ever held, so concurrent
        thieves never serialize behind each other's round trips."""
        for v in self.victims():
            cur = int((yield self.sh.get_async(self.cursor, v))[0])
            top_v = int((yield self.sh.get_async(self.top, v))[0])
            avail = top_v - cur
            if avail <= 0:
                continue
            take = min(self.cfg.chunk, avail)
            old = yield self.sh.atomic_compare_swap_async(
                self.cursor, cur, cur + take, v)
            if old != cur:
                continue  # lost the claim race; move on
            rows = yield self.sh.get_async(
                self.stack, v, offset=cur * 2, count=take * 2)
            rows = rows.reshape(take, 2)
            return [unpack(r[0], r[1]) for r in rows]
        return []

    def steal_locked(self):
        """Reference steal: lock the victim, inspect, copy, update, unlock.
        Serializes thieves per victim and holds the lock across ~4 RTTs —
        the paper's contention mechanism."""
        for v in self.victims():
            yield self.sh.set_lock_async(self.lock, home=v)
            cur = int((yield self.sh.get_async(self.cursor, v))[0])
            top_v = int((yield self.sh.get_async(self.top, v))[0])
            avail = top_v - cur
            if avail > 0:
                take = min(self.cfg.chunk, avail)
                rows = yield self.sh.get_async(
                    self.stack, v, offset=cur * 2, count=take * 2)
                yield self.sh.put_async(
                    self.cursor, np.array([cur + take]), v)
                yield self.sh.quiet_async()
                yield self.sh.clear_lock_async(self.lock, home=v)
                rows = rows.reshape(take, 2)
                return [unpack(r[0], r[1]) for r in rows]
            yield self.sh.clear_lock_async(self.lock, home=v)
        return []


def _continuous_engine(st: _UtsRank, steal_gen: Callable, lock_exports: bool):
    """Shared main loop for the two continuously-scheduled variants: chunk
    tasks self-sustain (each spawns successors), the main coroutine only
    handles idleness, stealing, and termination."""
    cfg = st.cfg
    rt = st.ctx.runtime

    def spawn_chunks():
        while st.local and st.active < st.max_active:
            take = min(cfg.chunk, len(st.local))
            chunk = [st.local.pop() for _ in range(take)]
            st.active += 1
            rt.spawn(
                _make_chunk_task(st, chunk, spawn_chunks),
                cost=len(chunk) * cfg.node_cost,
                name="uts-chunk", return_future=False,
            )

    yield from st.setup()
    spawn_chunks()
    done_fut = st.done_future()
    backoff = BACKOFF_MIN
    while not st.done:
        if st.active == 0 and not st.local:
            yield from st.flush_account()
            got = yield from steal_gen()
            if got:
                st.local.extend(got)
                spawn_chunks()
                backoff = BACKOFF_MIN
                continue
            if st.done:
                break
            yield when_any([done_fut, timer_future(backoff)])
            backoff = min(backoff * 2, BACKOFF_MAX)
        else:
            yield when_any([done_fut, st.idle_future()])
    yield st.sh.barrier_all_async()
    return st.processed


def _make_chunk_task(st: _UtsRank, chunk: List[Node], spawn_chunks):
    def chunk_task():  # coroutine task
        kids = expand_chunk(st.cfg, chunk)
        st.processed += len(chunk)
        st.local.extend(kids)
        export = st.take_export_rows()  # decide before re-spawning compute
        st.active -= 1
        spawn_chunks()
        if export is not None:
            yield from st.publish_export(export)
        yield from st.account(len(chunk), len(kids))
        if st.active == 0 and not st.local:
            st.wake_idle()

    return chunk_task


def run_hiper(ctx, cfg: UtsConfig):
    """AsyncSHMEM: continuous tasks + lock-free asynchronous stealing."""
    st = _UtsRank(ctx, cfg)
    result = yield from _continuous_engine(st, st.steal_lockfree,
                                           lock_exports=False)
    return result


def run_shmem_omp(ctx, cfg: UtsConfig):
    """OpenSHMEM+OpenMP: same task structure, lock-based stealing."""
    st = _UtsRank(ctx, cfg)
    result = yield from _continuous_engine(st, st.steal_locked,
                                           lock_exports=True)
    return result


def run_omp_tasks(ctx, cfg: UtsConfig):
    """OpenSHMEM+OpenMP Tasks: wave-parallel expansion with a taskwait
    barrier between waves; balancing/termination only at wave boundaries."""
    st = _UtsRank(ctx, cfg)
    yield from st.setup()
    cfg_chunk = cfg.chunk
    backoff = BACKOFF_MIN
    while not st.done:
        if st.local:
            wave, st.local = st.local, []
            chunks = [wave[i : i + cfg_chunk]
                      for i in range(0, len(wave), cfg_chunk)]
            kid_lists: List[List[Node]] = [None] * len(chunks)  # type: ignore

            def make_body(i, c):
                def body():
                    kid_lists[i] = expand_chunk(cfg, c)
                return body

            futs = [
                async_future(make_body(i, c), cost=len(c) * cfg.node_cost,
                             name=f"uts-wave-{i}")
                for i, c in enumerate(chunks)
            ]
            yield when_all(futs)  # <-- the coarse-grain taskwait
            created = 0
            for kl in kid_lists:
                created += len(kl)
                st.local.extend(kl)
            st.processed += len(wave)
            yield from st.maybe_export()
            yield from st.account(len(wave), created)
            backoff = BACKOFF_MIN
        else:
            yield from st.flush_account()
            got = yield from st.steal_locked()
            if got:
                st.local.extend(got)
                continue
            if st.done:
                break
            yield when_any([st.done_future(), timer_future(backoff)])
            backoff = min(backoff * 2, BACKOFF_MAX)
    yield st.sh.barrier_all_async()
    return st.processed


VARIANTS = {
    "shmem_omp": run_shmem_omp,
    "omp_tasks": run_omp_tasks,
    "hiper": run_hiper,
}


def uts_main(variant: str, cfg: UtsConfig) -> Callable:
    try:
        fn = VARIANTS[variant]
    except KeyError:
        raise ConfigError(
            f"unknown UTS variant {variant!r}; known: {sorted(VARIANTS)}"
        ) from None

    def main(ctx):
        return fn(ctx, cfg)

    main.__name__ = f"uts_{variant}"
    return main
