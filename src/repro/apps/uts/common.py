"""UTS: Unbalanced Tree Search (paper §III-C1, Fig. 7).

The benchmark counts the nodes of an implicitly-defined random tree whose
shape is deterministic but wildly unbalanced — the canonical stress test for
dynamic load balancing. The paper runs the *geometric* T1XXL tree; this
reproduction generates geometric trees of configurable expected size with the
same statistical character (root fan-out ``b0``, then geometrically
distributed child counts with mean < 1 so subtrees terminate).

Node identity is a 64-bit splitmix64 hash chain (the stand-in for UTS's SHA-1
descriptors), so any rank can expand any node with no communication — exactly
the property the real benchmark relies on.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Tuple

from repro.util.errors import ConfigError
from repro.util.rng import splitmix64

#: Max children per non-root node (UTS geometric trees bound fan-out).
MAX_KIDS = 8

Node = Tuple[int, int]  # (state hash, depth)


@dataclasses.dataclass(frozen=True)
class UtsConfig:
    """T1XXL-shaped geometric tree, scaled (DESIGN.md §2 substitution)."""

    root_children: int = 120       # T1XXL: thousands; scaled down
    mean_children: float = 0.92    # subtree geometric mean (<1 terminates)
    max_depth: int = 2000          # safety bound, effectively never hit
    seed: int = 42
    #: Virtual seconds of work per tree node (T1XXL nodes hash ~1us each).
    node_cost: float = 1e-6
    chunk: int = 32                # nodes expanded per scheduled chunk

    def __post_init__(self):
        if self.root_children < 1:
            raise ConfigError("root_children must be >= 1")
        if not (0.0 <= self.mean_children < 1.0):
            raise ConfigError(
                "mean_children must be in [0, 1) so the tree terminates"
            )
        if self.chunk < 1:
            raise ConfigError("chunk must be >= 1")

    @property
    def geom_p(self) -> float:
        """Geometric parameter with mean ``mean_children`` on support {0,1,...}."""
        return 1.0 / (1.0 + self.mean_children)


def root_node(cfg: UtsConfig) -> Node:
    return (splitmix64(cfg.seed), 0)


def child_count(cfg: UtsConfig, node: Node) -> int:
    """Deterministic child count of a node (geometric via its hash)."""
    state, depth = node
    if depth >= cfg.max_depth:
        return 0
    if depth == 0:
        return cfg.root_children
    u = ((state >> 11) & ((1 << 53) - 1)) / float(1 << 53)
    u = min(max(u, 1e-16), 1.0 - 1e-16)
    m = int(math.log(1.0 - u) / math.log(1.0 - cfg.geom_p))
    return min(m, MAX_KIDS)


def children(cfg: UtsConfig, node: Node) -> List[Node]:
    state, depth = node
    return [
        (splitmix64(state ^ (0x9E3779B9 * (i + 1))), depth + 1)
        for i in range(child_count(cfg, node))
    ]


def expand_chunk(cfg: UtsConfig, nodes: Iterable[Node]) -> List[Node]:
    """Expand a batch of nodes; returns all their children."""
    out: List[Node] = []
    for node in nodes:
        out.extend(children(cfg, node))
    return out


def sequential_count(cfg: UtsConfig) -> int:
    """Serial tree size (the validation oracle). Iterative DFS."""
    stack = [root_node(cfg)]
    count = 0
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(children(cfg, node))
    return count


# -- shared-stack descriptor packing (two int64 lanes per node) ----------
def pack(node: Node) -> Tuple[int, int]:
    state, depth = node
    # store the uint64 hash in a signed int64 lane
    return (state - (1 << 64) if state >= (1 << 63) else state, depth)


def unpack(lane0: int, lane1: int) -> Node:
    state = int(lane0)
    if state < 0:
        state += 1 << 64
    return (state, int(lane1))
