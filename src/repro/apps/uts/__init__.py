"""UTS: Unbalanced Tree Search (paper §III-C1, Fig. 7)."""

from repro.apps.uts.common import (
    Node,
    UtsConfig,
    child_count,
    children,
    expand_chunk,
    pack,
    root_node,
    sequential_count,
    unpack,
)
from repro.apps.uts.variants import (
    VARIANTS,
    run_hiper,
    run_omp_tasks,
    run_shmem_omp,
    uts_main,
)

__all__ = [
    "Node",
    "UtsConfig",
    "child_count",
    "children",
    "expand_chunk",
    "pack",
    "root_node",
    "sequential_count",
    "unpack",
    "VARIANTS",
    "run_hiper",
    "run_omp_tasks",
    "run_shmem_omp",
    "uts_main",
]
