"""Execution tracing — the paper's §V tooling claim, implemented.

"Like any unified scheduler, the HiPER runtime is aware of all of the work
executing on a system. Hooks have been added ... which enable programmers to
gather statistics on time spent in calls to different modules."

A :class:`TraceRecorder` attached to an executor records one event per
executed task segment: (rank, worker, module, task name, virtual start/end).
Under help-first blocking, a blocked task's segment spans the tasks its
worker helped with, so segments may nest (and utilization can read > 1).
From that single stream it derives:

- per-module time attribution (who used the machine),
- per-worker utilization timelines,
- a Chrome-trace JSON export (``chrome://tracing`` / Perfetto) for visual
  inspection of the unified schedule.
"""

from __future__ import annotations

import dataclasses
import json
from collections import defaultdict
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    rank: int
    worker: int
    module: str
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects task-segment events; attach via ``executor.attach_tracer``."""

    def __init__(self, max_events: int = 1_000_000):
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # called by the executor around every task segment
    def record(self, rank: int, worker: int, module: str, name: str,
               start: float, end: float) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(rank, worker, module, name, start, end))

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    def module_times(self) -> Dict[str, float]:
        """Virtual seconds attributed to each module (paper §V)."""
        out: Dict[str, float] = defaultdict(float)
        for ev in self.events:
            out[ev.module] += ev.duration
        return dict(out)

    def worker_busy(self) -> Dict[Tuple[int, int], float]:
        """(rank, worker) -> total busy virtual seconds."""
        out: Dict[Tuple[int, int], float] = defaultdict(float)
        for ev in self.events:
            out[(ev.rank, ev.worker)] += ev.duration
        return dict(out)

    def utilization(self, makespan: Optional[float] = None) -> float:
        """Mean busy fraction over all workers that appear in the trace."""
        busy = self.worker_busy()
        if not busy:
            return 0.0
        if makespan is None:
            makespan = max((ev.end for ev in self.events), default=0.0)
        if makespan <= 0:
            return 0.0
        return sum(busy.values()) / (len(busy) * makespan)

    def top_tasks(self, n: int = 10) -> List[Tuple[str, float, int]]:
        """Heaviest task names: (name, total seconds, count)."""
        totals: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
        for ev in self.events:
            rec = totals[ev.name]
            rec[0] += ev.duration
            rec[1] += 1
        ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])[:n]
        return [(name, t, int(c)) for name, (t, c) in ranked]

    def summary(self) -> str:
        lines = [f"trace: {len(self.events)} events"
                 + (f" (+{self.dropped} dropped)" if self.dropped else "")]
        lines.append("module attribution:")
        for mod, t in sorted(self.module_times().items(), key=lambda kv: -kv[1]):
            lines.append(f"  {mod:>12s}: {t * 1e3:10.4f} ms")
        lines.append(f"mean worker utilization: {self.utilization():.1%}")
        lines.append("heaviest tasks:")
        for name, t, c in self.top_tasks(5):
            lines.append(f"  {name:>24s}: {t * 1e3:10.4f} ms over {c} runs")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Chrome-trace ("trace event") JSON: one row per (rank, worker)."""
        rows = []
        for ev in self.events:
            rows.append({
                "name": ev.name,
                "cat": ev.module,
                "ph": "X",
                "ts": ev.start * 1e6,
                "dur": ev.duration * 1e6,
                "pid": ev.rank,
                "tid": ev.worker,
            })
        return json.dumps({"traceEvents": rows, "displayTimeUnit": "ms"})

    def save_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_chrome_trace())

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"TraceRecorder(events={len(self.events)}, dropped={self.dropped})"
