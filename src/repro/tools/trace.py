"""Execution tracing — the paper's §V tooling claim, implemented.

"Like any unified scheduler, the HiPER runtime is aware of all of the work
executing on a system. Hooks have been added ... which enable programmers to
gather statistics on time spent in calls to different modules."

A :class:`TraceRecorder` attached to an executor records one event per
executed task segment: (rank, worker, module, task name, virtual start/end,
task id). Under help-first blocking, a blocked task's segment spans the tasks
its worker helped with, so segments may *nest*; per-worker busy time is
therefore computed by merging each worker's segment intervals (self time,
never double-counted), which keeps utilization <= 1 by construction.

Beyond task segments the recorder collects:

- *spawn events* (who created which task, and when) — exported as
  Chrome-trace flow arrows from spawn site to first execution;
- *message events* (send -> delivery through the simulated fabric) — exported
  as flow arrows between ranks;
- *counter samples* (queue depth, utilization, ... from the telemetry
  sampler) — exported as Chrome-trace counter tracks.

From that stream it derives per-module time attribution, per-worker
utilization, and a Chrome-trace JSON export (``chrome://tracing`` /
Perfetto) for visual inspection of the unified schedule.
"""

from __future__ import annotations

import dataclasses
import json
from collections import defaultdict
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    rank: int
    worker: int
    module: str
    name: str
    start: float
    end: float
    task_id: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class SpawnEvent:
    rank: int
    worker: int
    task_id: int
    name: str
    time: float


@dataclasses.dataclass(frozen=True)
class MessageEvent:
    src_rank: int
    dst_rank: int
    channel: str
    nbytes: int
    send_time: float
    delivery_time: float


@dataclasses.dataclass(frozen=True)
class CounterSample:
    rank: int
    name: str
    time: float
    value: float


@dataclasses.dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (injected fault, recovery milestone, ...)."""

    rank: int
    name: str
    time: float
    detail: str = ""


def merge_intervals(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    return total + (cur_end - cur_start)


class TraceRecorder:
    """Collects task-segment events; attach via ``executor.attach_tracer``."""

    def __init__(self, max_events: int = 1_000_000):
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.spawns: List[SpawnEvent] = []
        self.messages: List[MessageEvent] = []
        self.counters: List[CounterSample] = []
        self.instants: List[InstantEvent] = []
        self.dropped = 0

    # called by the executor around every task segment
    def record(self, rank: int, worker: int, module: str, name: str,
               start: float, end: float, task_id: int = -1) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(rank, worker, module, name, start, end, task_id)
        )

    # called by the runtime at task creation (flow-arrow source)
    def record_spawn(self, rank: int, worker: int, task_id: int, name: str,
                     time: float) -> None:
        if len(self.spawns) >= self.max_events:
            self.dropped += 1
            return
        self.spawns.append(SpawnEvent(rank, worker, task_id, name, time))

    # called by the fabric for every transmitted message
    def record_message(self, src_rank: int, dst_rank: int, channel: str,
                       nbytes: int, send_time: float,
                       delivery_time: float) -> None:
        if len(self.messages) >= self.max_events:
            self.dropped += 1
            return
        self.messages.append(
            MessageEvent(src_rank, dst_rank, channel, nbytes, send_time,
                         delivery_time)
        )

    # called by the resilience injector (fault/recovery markers)
    def record_instant(self, rank: int, name: str, time: float,
                       detail: str = "") -> None:
        if len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        self.instants.append(InstantEvent(rank, name, time, detail))

    # called by the telemetry sampler (counter tracks)
    def record_counter(self, rank: int, name: str, time: float,
                       value: float) -> None:
        if len(self.counters) >= self.max_events:
            self.dropped += 1
            return
        self.counters.append(CounterSample(rank, name, time, value))

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    def module_times(self) -> Dict[str, float]:
        """Virtual seconds attributed to each module (paper §V). Inclusive
        time: a blocked segment's helped children are counted under their own
        modules too."""
        out: Dict[str, float] = defaultdict(float)
        for ev in self.events:
            out[ev.module] += ev.duration
        return dict(out)

    def worker_busy(self) -> Dict[Tuple[int, int], float]:
        """(rank, worker) -> busy virtual seconds as the *union* of the
        worker's segment intervals. Nested help-first segments (a blocked
        task spanning the tasks its worker helped with) count once."""
        by_worker: Dict[Tuple[int, int], List[Tuple[float, float]]] = defaultdict(list)
        for ev in self.events:
            by_worker[(ev.rank, ev.worker)].append((ev.start, ev.end))
        return {key: merge_intervals(ivs) for key, ivs in by_worker.items()}

    def utilization(self, makespan: Optional[float] = None) -> float:
        """Mean busy fraction over all workers that appear in the trace.
        Always <= 1 (busy time is interval-merged self time)."""
        busy = self.worker_busy()
        if not busy:
            return 0.0
        if makespan is None:
            makespan = max((ev.end for ev in self.events), default=0.0)
        if makespan <= 0:
            return 0.0
        return sum(busy.values()) / (len(busy) * makespan)

    def top_tasks(self, n: int = 10) -> List[Tuple[str, float, int]]:
        """Heaviest task names: (name, total seconds, count)."""
        totals: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
        for ev in self.events:
            rec = totals[ev.name]
            rec[0] += ev.duration
            rec[1] += 1
        ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])[:n]
        return [(name, t, int(c)) for name, (t, c) in ranked]

    def comm_volume(self) -> Dict[str, Dict[str, float]]:
        """Per-channel message/byte totals from recorded message events."""
        out: Dict[str, Dict[str, float]] = {}
        for msg in self.messages:
            rec = out.setdefault(msg.channel, {"messages": 0, "bytes": 0})
            rec["messages"] += 1
            rec["bytes"] += msg.nbytes
        return out

    def summary(self) -> str:
        lines = [f"trace: {len(self.events)} events"
                 + (f" (+{self.dropped} dropped)" if self.dropped else "")]
        lines.append("module attribution:")
        for mod, t in sorted(self.module_times().items(), key=lambda kv: -kv[1]):
            lines.append(f"  {mod:>12s}: {t * 1e3:10.4f} ms")
        lines.append(f"mean worker utilization: {self.utilization():.1%}")
        if self.messages:
            lines.append("communication volume:")
            for ch, rec in sorted(self.comm_volume().items()):
                lines.append(
                    f"  {ch:>12s}: {int(rec['messages'])} msgs, "
                    f"{int(rec['bytes'])} bytes"
                )
        lines.append("heaviest tasks:")
        for name, t, c in self.top_tasks(5):
            lines.append(f"  {name:>24s}: {t * 1e3:10.4f} ms over {c} runs")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Chrome-trace ("trace event") JSON: one row per (rank, worker),
        plus flow arrows (task spawn -> first execution, message send ->
        delivery) and counter tracks from the telemetry sampler."""
        rows = []
        first_exec: Dict[int, TraceEvent] = {}
        for ev in self.events:
            rows.append({
                "name": ev.name,
                "cat": ev.module,
                "ph": "X",
                "ts": ev.start * 1e6,
                "dur": ev.duration * 1e6,
                "pid": ev.rank,
                "tid": ev.worker,
                "args": {"task_id": ev.task_id},
            })
            if ev.task_id >= 0:
                seen = first_exec.get(ev.task_id)
                if seen is None or ev.start < seen.start:
                    first_exec[ev.task_id] = ev
        for sp in self.spawns:
            ev = first_exec.get(sp.task_id)
            if ev is None:
                continue
            rows.append({
                "name": f"spawn:{sp.name}", "cat": "flow", "ph": "s",
                "id": f"t{sp.task_id}", "ts": sp.time * 1e6,
                "pid": sp.rank, "tid": sp.worker,
            })
            rows.append({
                "name": f"spawn:{sp.name}", "cat": "flow", "ph": "f",
                "bp": "e", "id": f"t{sp.task_id}",
                "ts": max(ev.start, sp.time) * 1e6,
                "pid": ev.rank, "tid": ev.worker,
            })
        for i, msg in enumerate(self.messages):
            name = f"msg:{msg.channel}"
            rows.append({
                "name": name, "cat": "comm", "ph": "s", "id": f"m{i}",
                "ts": msg.send_time * 1e6, "pid": msg.src_rank, "tid": 0,
                "args": {"nbytes": msg.nbytes},
            })
            rows.append({
                "name": name, "cat": "comm", "ph": "f", "bp": "e",
                "id": f"m{i}",
                "ts": max(msg.delivery_time, msg.send_time) * 1e6,
                "pid": msg.dst_rank, "tid": 0,
            })
        for cs in self.counters:
            rows.append({
                "name": cs.name, "cat": "telemetry", "ph": "C",
                "ts": cs.time * 1e6, "pid": cs.rank,
                "args": {cs.name: cs.value},
            })
        for ins in self.instants:
            rows.append({
                "name": ins.name, "cat": "fault", "ph": "i", "s": "g",
                "ts": ins.time * 1e6, "pid": ins.rank, "tid": 0,
                "args": {"detail": ins.detail},
            })
        return json.dumps({"traceEvents": rows, "displayTimeUnit": "ms"})

    def save_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_chrome_trace())

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"TraceRecorder(events={len(self.events)}, dropped={self.dropped})"
