"""Failing-schedule artifacts: save / load / replay verification failures.

When the race-hunt harness finds a failing interleaving, the seed alone is
enough to reproduce it (strategies are fully seeded) — but CI artifacts
should survive code drift, so the artifact also embeds the *recorded
schedule* and the run's findings. :func:`load_schedule` restores everything
needed to replay either way::

    art = load_schedule("failing-schedule.json")
    repro.verify.replay_schedule(art.schedule)          # exact replay
    repro.verify.run_once(art.strategy, art.seed)       # from-seed replay
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.verify.harness import HuntOutcome

#: Bumped when the artifact layout changes.
SCHEDULE_FORMAT = 1


@dataclass
class ScheduleArtifact:
    """A verification failure, loadable for replay."""

    strategy: str
    seed: int
    digest: str
    schedule: List[Tuple[int, int, str, int]]
    races: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    error: Optional[str] = None
    workers: int = 4
    planted: bool = False

    def to_dict(self) -> dict:
        return {
            "format": SCHEDULE_FORMAT,
            "strategy": self.strategy,
            "seed": self.seed,
            "digest": self.digest,
            "workers": self.workers,
            "planted": self.planted,
            "races": self.races,
            "violations": self.violations,
            "error": self.error,
            "schedule": [list(e) for e in self.schedule],
        }


def artifact_from_outcome(outcome: "HuntOutcome", *, workers: int = 4,
                          planted: bool = False) -> ScheduleArtifact:
    return ScheduleArtifact(
        strategy=outcome.strategy,
        seed=outcome.seed,
        digest=outcome.digest,
        schedule=list(outcome.schedule),
        races=[r.describe() for r in outcome.races],
        violations=list(outcome.invariants.violations),
        error=outcome.error,
        workers=workers,
        planted=planted,
    )


def save_schedule(artifact: ScheduleArtifact, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact.to_dict(), fh, indent=1)
        fh.write("\n")
    return path


def load_schedule(path: str) -> ScheduleArtifact:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    fmt = data.get("format", 0)
    if fmt != SCHEDULE_FORMAT:
        raise ValueError(
            f"{path}: schedule artifact format {fmt} != {SCHEDULE_FORMAT}")
    return ScheduleArtifact(
        strategy=data["strategy"],
        seed=int(data["seed"]),
        digest=data["digest"],
        schedule=[tuple(e) for e in data["schedule"]],
        races=list(data.get("races", [])),
        violations=list(data.get("violations", [])),
        error=data.get("error"),
        workers=int(data.get("workers", 4)),
        planted=bool(data.get("planted", False)),
    )
