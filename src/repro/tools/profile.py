"""Profiling harness: run an SPMD workload with the full observability stack
attached and export machine-readable artifacts.

This is the front door of the unified telemetry layer (paper §V: a unified
scheduler sees *all* work, so one profiling pass yields task timelines,
module time attribution, per-module communication volume, and queue-depth
telemetry together):

- :class:`TelemetryModule` — a pluggable :class:`~repro.modules.base
  .HiperModule` that starts a :class:`~repro.util.stats.TelemetrySampler`
  per rank. It is an ordinary module: append :func:`telemetry_factory` to any
  ``spmd_run``'s ``module_factories`` and every rank samples deque depth,
  event-queue length, pop/steal rates, and idle fractions on virtual-time
  ticks — no core-runtime changes, which is itself the paper's plugin thesis.
- :func:`profile_spmd` — run a main under a tracing executor plus samplers,
  then write ``metrics.json`` (makespan, utilization, module times, comm
  volume, merged cross-rank stats) and ``trace.json`` (Chrome-trace /
  Perfetto, with spawn→execution and send→delivery flow arrows and counter
  tracks).

Exposed on the command line as ``python -m repro profile <figure>``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Callable, Dict, Optional, Sequence

from repro.exec.sim import SimExecutor
from repro.modules.base import HiperModule
from repro.tools.trace import TraceRecorder
from repro.util.stats import TelemetrySampler


class TelemetryModule(HiperModule):
    """Per-rank telemetry sampling as a pluggable module.

    ``initialize`` starts the sampler (picking up the executor's attached
    tracer, if any, for Chrome-trace counter tracks); ``finalize`` stops it.
    """

    name = "telemetry"
    capabilities = frozenset({"observability"})

    def __init__(self, ctx=None, *, period: float = 1e-4,
                 max_samples: int = 2048):
        super().__init__()
        self.ctx = ctx  # optional RankContext; unused single-rank
        self._period = period
        self._max_samples = max_samples
        self.sampler: Optional[TelemetrySampler] = None

    def initialize(self, runtime) -> None:
        self.sampler = TelemetrySampler(
            runtime, period=self._period, max_samples=self._max_samples,
            tracer=runtime.executor.tracer,
        )
        self.sampler.start()
        self._initialized = True

    def finalize(self, runtime) -> None:
        if self.sampler is not None:
            self.sampler.stop()


def telemetry_factory(**kwargs) -> Callable[[Any], TelemetryModule]:
    """Module factory for :func:`repro.distrib.spmd_run`."""
    return lambda ctx: TelemetryModule(ctx, **kwargs)


@dataclasses.dataclass
class ProfileReport:
    """Everything one profiling run produced."""

    result: Any  # SpmdResult
    tracer: TraceRecorder
    metrics: Dict[str, Any]
    metrics_path: Optional[str] = None
    trace_path: Optional[str] = None

    @property
    def utilization(self) -> float:
        return self.metrics["utilization"]


def profile_spmd(
    main: Callable,
    config=None,
    *,
    module_factories: Sequence[Callable] = (),
    out_dir: Optional[str] = None,
    sample_period: float = 1e-4,
    max_samples: int = 2048,
    max_events: int = 1_000_000,
    engine: str = "objects",
    shards: int = 1,
) -> ProfileReport:
    """Run ``main`` under full instrumentation; optionally write artifacts.

    With ``out_dir`` set, writes ``<out_dir>/metrics.json`` and
    ``<out_dir>/trace.json`` (Chrome-trace format, loadable in Perfetto or
    ``chrome://tracing``).

    ``shards > 1`` profiles the conservative-window sharded DES engine
    instead: the run fans out across OS-process shards, so the in-process
    tracer and telemetry sampler cannot observe it — the report's trace is
    empty and ``metrics["shards"]`` carries the window-protocol telemetry
    (windows, horizon, cross-shard traffic, per-shard barrier idle time).
    """
    from repro.distrib.spmd import ClusterConfig, spmd_run

    cfg = config or ClusterConfig()
    sharded = shards > 1
    ex = SimExecutor(task_overhead=cfg.task_overhead,
                     engine="flat" if sharded else engine, shards=shards)
    tracer = TraceRecorder(max_events=max_events)
    factories = list(module_factories)
    if not sharded:
        ex.attach_tracer(tracer)
        factories.append(
            telemetry_factory(period=sample_period, max_samples=max_samples)
        )
    t0 = time.perf_counter()
    result = spmd_run(main, cfg, module_factories=factories, executor=ex)
    wall = time.perf_counter() - t0

    merged = result.merged_stats()
    if sharded:
        events = sum(t["events_processed"] for t in result.shard_counters)
        sim_engine = f"flat x{shards} shards"
    else:
        events = ex.events_processed
        sim_engine = ex.engine
    metrics: Dict[str, Any] = {
        "makespan": result.makespan,
        "nranks": result.nranks,
        "utilization": tracer.utilization(result.makespan),
        "module_times": tracer.module_times(),
        "comm_volume": tracer.comm_volume(),
        "trace_events": len(tracer.events),
        "trace_dropped": tracer.dropped,
        # DES-engine throughput: whole-run average over the spmd_run wall
        # time (the per-tick instantaneous rate is in the sampler's
        # ``events_per_sec`` series / ``sim.*`` gauges).
        "sim": {
            "engine": sim_engine,
            "events_processed": events,
            "events_per_sec": events / wall if wall > 0 else 0.0,
        },
        "stats": merged.to_dict(),
    }
    if sharded:
        metrics["shards"] = {
            "nshards": result.nshards,
            "windows": result.windows,
            "cross_shard_msgs": result.counters["shards.cross_shard_msgs"],
            "cross_shard_bytes": result.counters["shards.cross_shard_bytes"],
            "per_shard": result.shard_counters,
        }

    report = ProfileReport(result=result, tracer=tracer, metrics=metrics)
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        report.metrics_path = os.path.join(out_dir, "metrics.json")
        with open(report.metrics_path, "w", encoding="utf-8") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
        report.trace_path = os.path.join(out_dir, "trace.json")
        tracer.save_chrome_trace(report.trace_path)
    return report
