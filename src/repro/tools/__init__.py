"""Tooling enabled by unified scheduling (paper §V): execution tracing,
module time attribution, Chrome-trace export, and the profiling harness."""

from repro.tools.profile import (ProfileReport, TelemetryModule,
                                 profile_spmd, telemetry_factory)
from repro.tools.schedule import (ScheduleArtifact, artifact_from_outcome,
                                  load_schedule, save_schedule)
from repro.tools.trace import (CounterSample, InstantEvent, MessageEvent,
                               SpawnEvent, TraceEvent, TraceRecorder,
                               merge_intervals)

__all__ = [
    "CounterSample",
    "InstantEvent",
    "MessageEvent",
    "ProfileReport",
    "ScheduleArtifact",
    "SpawnEvent",
    "TelemetryModule",
    "TraceEvent",
    "TraceRecorder",
    "artifact_from_outcome",
    "load_schedule",
    "merge_intervals",
    "profile_spmd",
    "save_schedule",
    "telemetry_factory",
]
