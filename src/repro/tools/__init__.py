"""Tooling enabled by unified scheduling (paper §V): execution tracing,
module time attribution, Chrome-trace export."""

from repro.tools.trace import TraceEvent, TraceRecorder

__all__ = ["TraceEvent", "TraceRecorder"]
