"""Tooling enabled by unified scheduling (paper §V): execution tracing,
module time attribution, Chrome-trace export, and the profiling harness."""

from repro.tools.profile import (ProfileReport, TelemetryModule,
                                 profile_spmd, telemetry_factory)
from repro.tools.trace import (CounterSample, InstantEvent, MessageEvent,
                               SpawnEvent, TraceEvent, TraceRecorder,
                               merge_intervals)

__all__ = [
    "CounterSample",
    "InstantEvent",
    "MessageEvent",
    "ProfileReport",
    "SpawnEvent",
    "TelemetryModule",
    "TraceEvent",
    "TraceRecorder",
    "merge_intervals",
    "profile_spmd",
    "telemetry_factory",
]
