"""Benchmark harness: sweeps, platforms, series tables (per paper figure)."""

from repro.bench.harness import (
    PLATFORMS,
    Series,
    SweepResult,
    cluster_for,
    run_telemetry,
    source_loc,
    sweep,
)

__all__ = [
    "PLATFORMS",
    "Series",
    "SweepResult",
    "cluster_for",
    "run_telemetry",
    "source_loc",
    "sweep",
]
