"""Benchmark harness: sweeps, platforms, series tables (per paper figure),
plus the scheduler perf-regression ledger (:mod:`repro.bench.record`)."""

from repro.bench.harness import (
    PLATFORMS,
    Series,
    SweepResult,
    cluster_for,
    run_telemetry,
    source_loc,
    sweep,
)
from repro.bench.record import (
    FAST_BENCHES,
    append_entry,
    entry_from_pytest_json,
    format_entry,
    load_ledger,
    record,
)

__all__ = [
    "PLATFORMS",
    "Series",
    "SweepResult",
    "cluster_for",
    "run_telemetry",
    "source_loc",
    "sweep",
    "FAST_BENCHES",
    "append_entry",
    "entry_from_pytest_json",
    "format_entry",
    "load_ledger",
    "record",
]
