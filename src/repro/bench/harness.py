"""Benchmark harness: node-count sweeps over the simulated cluster, with
paper-style series tables.

Each figure benchmark builds a list of :class:`Series` (one per implementation
variant), sweeps them over node counts, and prints the same rows the paper
plots. ``pytest-benchmark`` wraps the whole sweep (wall time of the
simulation); the scientific output is the *virtual* time table, which is also
attached to the benchmark's ``extra_info``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.distrib.spmd import ClusterConfig, SpmdResult, spmd_run
from repro.net.costmodel import network
from repro.platform.hwloc import machine

#: Paper platforms: (machine spec name, interconnect model name).
PLATFORMS = {
    "titan": ("titan", "gemini"),
    "edison": ("edison", "aries"),
}


def cluster_for(
    platform: str,
    nodes: int,
    *,
    layout: str,
    workers_cap: Optional[int] = None,
    seed: int = 0,
) -> ClusterConfig:
    """Build a ClusterConfig for one sweep point.

    ``layout``: "flat" (process per core) or "hybrid" (process per node,
    worker per core). ``workers_cap`` bounds workers/rank to keep Python
    simulation costs sane (documented in EXPERIMENTS.md).
    """
    mspec_name, net_name = PLATFORMS[platform]
    mspec = machine(mspec_name)
    cores = mspec.cores if workers_cap is None else min(mspec.cores, workers_cap)
    if layout == "flat":
        return ClusterConfig(
            nodes=nodes, ranks_per_node=cores, workers_per_rank=1,
            machine=mspec, network=network(net_name), seed=seed,
        )
    if layout == "hybrid":
        return ClusterConfig(
            nodes=nodes, ranks_per_node=1, workers_per_rank=cores,
            machine=mspec, network=network(net_name), seed=seed,
        )
    raise ValueError(f"unknown layout {layout!r}")


@dataclasses.dataclass
class Series:
    """One line of a figure: a variant swept over node counts."""

    name: str
    #: point -> SpmdResult; ``run`` receives the node count.
    run: Callable[[int], SpmdResult]
    #: node counts where this series is skipped (e.g. flat at huge scale).
    skip_above: Optional[int] = None

    def measure(self, nodes_list: Sequence[int]) -> Dict[int, SpmdResult]:
        out: Dict[int, SpmdResult] = {}
        for nodes in nodes_list:
            if self.skip_above is not None and nodes > self.skip_above:
                continue
            out[nodes] = self.run(nodes)
        return out


def run_telemetry(res: SpmdResult) -> Dict[str, float]:
    """Scheduler-telemetry summary of one run: worker utilization (virtual
    busy time over ``workers x makespan``), steal count, and fabric volume.
    Computed from the runtime's always-on accounting — no tracer needed."""
    out: Dict[str, float] = {}
    if not hasattr(res, "contexts"):  # metric stubs in tests
        return out
    busy = 0.0
    nworkers = 0
    for ctx in res.contexts:
        for w in getattr(ctx.runtime, "workers", []):
            busy += max(0.0, w.clock - w.idle_time)
            nworkers += 1
    if nworkers and res.makespan > 0:
        out["utilization"] = min(1.0, busy / (nworkers * res.makespan))
    merged = res.merged_stats()
    out["steals"] = float(merged.counter("core", "steal"))
    out["msgs"] = float(res.fabric.messages_sent)
    out["bytes"] = float(res.fabric.bytes_sent)
    return out


@dataclasses.dataclass
class SweepResult:
    title: str
    nodes_list: List[int]
    #: series name -> {nodes -> value}
    values: Dict[str, Dict[int, float]]
    unit: str = "ms"
    #: series name -> {nodes -> telemetry summary} (see :func:`run_telemetry`)
    telemetry: Dict[str, Dict[int, Dict[str, float]]] = dataclasses.field(
        default_factory=dict
    )

    def table(self) -> str:
        header = f"{'nodes':>7s} | " + " | ".join(
            f"{name:>18s}" for name in self.values
        )
        lines = [self.title, header, "-" * len(header)]
        for nodes in self.nodes_list:
            cells = []
            for name in self.values:
                v = self.values[name].get(nodes)
                cells.append(f"{v:18.4f}" if v is not None else " " * 17 + "-")
            lines.append(f"{nodes:7d} | " + " | ".join(cells))
        lines.append(f"(values in {self.unit}, virtual time)")
        if any(self.telemetry.values()):
            lines.append("telemetry (util% / steals / MB moved):")
            for nodes in self.nodes_list:
                cells = []
                for name in self.values:
                    tel = self.telemetry.get(name, {}).get(nodes)
                    if not tel:
                        cells.append(" " * 17 + "-")
                        continue
                    cells.append(
                        f"{tel.get('utilization', 0.0) * 100:5.1f} "
                        f"{int(tel.get('steals', 0)):>5d} "
                        f"{tel.get('bytes', 0.0) / 1e6:6.2f}"
                    )
                lines.append(f"{nodes:7d} | " + " | ".join(cells))
        return "\n".join(lines)

    def flat(self) -> Dict[str, float]:
        """Flattened {series@nodes[:telemetry_key]: value} for benchmark
        extra_info."""
        out = {
            f"{name}@{nodes}": v
            for name, pts in self.values.items()
            for nodes, v in pts.items()
        }
        for name, pts in self.telemetry.items():
            for nodes, tel in pts.items():
                for key, v in tel.items():
                    out[f"{name}@{nodes}:{key}"] = v
        return out


def sweep(
    title: str,
    series: Sequence[Series],
    nodes_list: Sequence[int],
    *,
    metric: Callable[[SpmdResult], float] = lambda r: r.makespan * 1e3,
    unit: str = "ms",
) -> SweepResult:
    """Run every series over every point; collect ``metric`` of each run
    plus its scheduler-telemetry summary."""
    values: Dict[str, Dict[int, float]] = {}
    telemetry: Dict[str, Dict[int, Dict[str, float]]] = {}
    for s in series:
        results = s.measure(nodes_list)
        values[s.name] = {nodes: metric(res) for nodes, res in results.items()}
        telemetry[s.name] = {
            nodes: run_telemetry(res) for nodes, res in results.items()
        }
    return SweepResult(title, list(nodes_list), values, unit, telemetry)


def source_loc(fn: Callable) -> int:
    """Non-blank source lines of a variant implementation (the paper's
    programmability discussions use LoC as one proxy)."""
    import inspect

    lines = inspect.getsource(fn).splitlines()
    return sum(1 for ln in lines if ln.strip() and not ln.strip().startswith("#"))
