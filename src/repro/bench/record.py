"""Performance recording: append pytest-benchmark results to committed JSON
ledgers (``BENCH_scheduler.json``, ``BENCH_comm.json``,
``BENCH_procs.json``).

The ledgers make overhead changes reviewable the same way figure outputs
are: every entry pins ops/sec per micro-benchmark to a commit hash and date,
so a perf regression shows up as a diff instead of an anecdote. Each ledger
is owned by a *suite* — a benchmark module plus its CI fast subset,
declared once via :func:`register_suite`:

- ``scheduler`` — spawn/join, steal, future machinery
  (``benchmarks/bench_micro_runtime.py``);
- ``comm`` — per-message vs. coalesced sends, polling sweeps, buffer-pool
  hit rates, ISx exchange end-to-end (``benchmarks/bench_micro_comm.py``);
- ``procs`` — the multiprocess SPMD backend end-to-end: launch + ISx
  exchange wall time at 1 vs. 4 ranks (``benchmarks/bench_procs.py``);
- ``sim`` — DES engine core, objects vs. flat wave storm
  (``benchmarks/bench_micro_sim.py``);
- ``service`` — job-gateway warm vs. cold execution and the concurrent-
  client load test (``benchmarks/bench_service.py``).

Usage::

    python -m repro bench-record --label "post-overhaul"
    python -m repro bench-record --suite comm
    python -m repro bench-record --fast        # CI perf-smoke subset
    python benchmarks/record.py                # same, as a script

Each invocation runs the suite's benchmark module under pytest-benchmark,
extracts per-benchmark ``ops`` (1/mean), mean/median/stddev and rounds, and
appends one entry to the suite's ledger.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

#: Benchmark suites: name -> (ledger, bench module, CI fast subset),
#: populated via :func:`register_suite`.
SUITES: Dict[str, Dict[str, Any]] = {}


def register_suite(name: str, *, bench_file: str, fast: Sequence[str],
                   ledger: Optional[str] = None,
                   pytest_args: Sequence[str] = ()) -> Dict[str, Any]:
    """Register one benchmark suite; returns its config dict.

    Every suite follows one convention — ledger ``BENCH_<suite>.json`` at
    the repo root (override with ``ledger``), benchmark module under
    ``benchmarks/`` — and each ``fast`` subset is a comparison *pair* the
    CI perf-smoke job always records both sides of, so the ledger's
    headline ratio stays computable from smoke entries alone. Registration
    is the whole integration: ``--suite <name>`` on the CLI, ledger path
    defaulting, and fast-subset selection all read from this table.
    """
    if name in SUITES:
        raise ValueError(f"benchmark suite {name!r} already registered")
    SUITES[name] = {
        "bench_file": bench_file,
        "fast": tuple(fast),
        "ledger": ledger or f"BENCH_{name}.json",
        "pytest_args": tuple(pytest_args),
    }
    return SUITES[name]


# spawn/join, steal, future machinery: the storm exercises the full
# dispatch hot path, the chain the promise/continuation machinery.
register_suite("scheduler",
               bench_file="benchmarks/bench_micro_runtime.py",
               fast=("test_spawn_and_join_throughput_sim",
                     "test_future_chain_throughput_sim"))
# per-message vs. coalesced sends, polling sweeps, buffer-pool hit
# rates, ISx exchange end-to-end.
register_suite("comm",
               bench_file="benchmarks/bench_micro_comm.py",
               fast=("test_small_put_per_message",
                     "test_small_put_coalesced"))
# multiprocess SPMD backend end-to-end: 4 ranks must beat 1 rank (real
# parallel speedup across processes).
register_suite("procs",
               bench_file="benchmarks/bench_procs.py",
               fast=("test_isx_procs_1rank",
                     "test_isx_procs_4ranks"))
# DES engine core: the wave storm (deep queue, batched same-timestamp
# cohorts) is where the flat engine must beat the objects engine; the
# pair records both sides so the events/sec ratio is always in-ledger.
# Extra rounds because the ledger's headline is a *ratio* of two
# recordings taken seconds apart — more rounds average out load spikes
# that would otherwise skew one side.
register_suite("sim",
               bench_file="benchmarks/bench_micro_sim.py",
               fast=("test_wave_storm_objects",
                     "test_wave_storm_flat"),
               pytest_args=("--benchmark-min-rounds=9",))
# Job-gateway service: warm-pool vs. cold per-job runtime construction
# (the pair CI records) plus the 1000-client load test whose latency
# percentiles land in the full ledger's extra_info.
register_suite("service",
               bench_file="benchmarks/bench_service.py",
               fast=("test_service_job_warm",
                     "test_service_job_cold"))
# Access-mode task graph: dmda vs. help-first placement on the hetero
# chains (the pair CI records; the headline is the virtual-makespan gap
# in extra_info), plus the commute-vs-ordered reduction pair in full runs.
register_suite("taskgraph",
               bench_file="benchmarks/bench_taskgraph.py",
               fast=("test_taskgraph_hetero_help_first",
                     "test_taskgraph_hetero_dmda"))

#: Back-compat aliases for the default ("scheduler") suite, derived from
#: SUITES so a suite definition is stated exactly once.
DEFAULT_LEDGER = SUITES["scheduler"]["ledger"]
DEFAULT_BENCH_FILE = SUITES["scheduler"]["bench_file"]
FAST_BENCHES = SUITES["scheduler"]["fast"]


def repo_root() -> str:
    """The repository root (directory containing this package's parent)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def current_commit(cwd: Optional[str] = None) -> str:
    """Current git commit hash (suffixed ``-dirty`` when the worktree has
    uncommitted changes), or ``"unknown"`` outside a checkout."""
    root = cwd or repo_root()
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=30,
        )
        if out.returncode != 0:
            return "unknown"
        sha = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=30,
        )
        if status.returncode == 0 and status.stdout.strip():
            sha += "-dirty"
        return sha
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"


def _summarize(raw: Dict[str, Any]) -> Dict[str, Any]:
    """Per-benchmark summary from one pytest-benchmark JSON document."""
    benches: Dict[str, Any] = {}
    for b in raw.get("benchmarks", []):
        st = b["stats"]
        benches[b["name"]] = {
            "ops_per_sec": st["ops"],
            "mean_s": st["mean"],
            "median_s": st["median"],
            "stddev_s": st["stddev"],
            "rounds": st["rounds"],
            "extra_info": b.get("extra_info", {}),
        }
    return benches


def entry_from_pytest_json(
    path: str,
    label: str,
    commit: Optional[str] = None,
    date: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one ledger entry from an existing pytest-benchmark JSON file
    (used to import runs recorded out-of-band, e.g. a pre-change baseline)."""
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    commit_info = raw.get("commit_info", {}) or {}
    return {
        "label": label,
        "commit": commit or commit_info.get("id", "unknown"),
        "date": date or raw.get("datetime",
                                datetime.now(timezone.utc).isoformat()),
        "machine": raw.get("machine_info", {}).get("node", "unknown"),
        "python": raw.get("machine_info", {}).get(
            "python_version", sys.version.split()[0]),
        "benchmarks": _summarize(raw),
    }


def run_benchmarks(
    bench_file: str = DEFAULT_BENCH_FILE,
    keyword: Optional[str] = None,
    cwd: Optional[str] = None,
    pytest_args: Sequence[str] = (),
) -> Dict[str, Any]:
    """Run ``bench_file`` under pytest-benchmark; return the raw JSON doc.

    Raises ``RuntimeError`` if pytest fails (a crashing benchmark must not
    silently record an empty entry).
    """
    root = cwd or repo_root()
    fd, tmp = tempfile.mkstemp(prefix="bench-", suffix=".json")
    os.close(fd)
    try:
        cmd = [
            sys.executable, "-m", "pytest", bench_file, "-q",
            "--benchmark-only", "--benchmark-disable-gc",
            f"--benchmark-json={tmp}",
        ]
        cmd += list(pytest_args)
        if keyword:
            cmd += ["-k", keyword]
        env = dict(os.environ)
        src = os.path.join(root, "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        proc = subprocess.run(cmd, cwd=root, env=env,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"benchmark run failed (exit {proc.returncode}):\n"
                f"{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
            )
        with open(tmp, "r", encoding="utf-8") as fh:
            return json.load(fh)
    finally:
        os.unlink(tmp)


def load_ledger(path: str) -> List[Dict[str, Any]]:
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return doc.get("entries", [])


def append_entry(path: str, entry: Dict[str, Any]) -> None:
    entries = load_ledger(path)
    entries.append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"entries": entries}, fh, indent=2, sort_keys=False)
        fh.write("\n")


def record(
    out: Optional[str] = None,
    label: str = "",
    bench_file: Optional[str] = None,
    fast: bool = False,
    keyword: Optional[str] = None,
    suite: str = "scheduler",
) -> Dict[str, Any]:
    """Run one suite's micro-benchmarks and append an entry to its ledger.

    ``fast`` restricts the run to the suite's CI smoke subset; ``keyword``
    passes an explicit pytest ``-k`` expression instead. ``out`` and
    ``bench_file`` override the suite's ledger path / benchmark module.
    Returns the appended entry.
    """
    try:
        cfg = SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown benchmark suite {suite!r}; known: {sorted(SUITES)}"
        ) from None
    root = repo_root()
    out = out or os.path.join(root, cfg["ledger"])
    bench_file = bench_file or cfg["bench_file"]
    if fast and keyword is None:
        keyword = " or ".join(cfg["fast"])
    raw = run_benchmarks(bench_file, keyword=keyword, cwd=root,
                         pytest_args=cfg["pytest_args"])
    entry = {
        "label": label or ("perf-smoke" if fast else "bench-record"),
        "suite": suite,
        "commit": current_commit(root),
        "date": datetime.now(timezone.utc).isoformat(),
        "machine": raw.get("machine_info", {}).get("node", "unknown"),
        "python": raw.get("machine_info", {}).get(
            "python_version", sys.version.split()[0]),
        "benchmarks": _summarize(raw),
    }
    append_entry(out, entry)
    return entry


def format_entry(entry: Dict[str, Any], baseline: Optional[Dict[str, Any]] = None) -> str:
    """Human-readable table for one entry, with speedup vs. ``baseline``."""
    lines = [
        f"entry: {entry['label']} @ {entry['commit'][:12]} ({entry['date']})"
    ]
    base = (baseline or {}).get("benchmarks", {})
    for name, rec in sorted(entry["benchmarks"].items()):
        line = (f"  {name:<45s} {rec['ops_per_sec']:>10.2f} ops/s "
                f"(mean {rec['mean_s'] * 1e3:8.3f} ms, "
                f"rounds {rec['rounds']})")
        ref = base.get(name)
        if ref and ref.get("ops_per_sec"):
            line += f"  [{rec['ops_per_sec'] / ref['ops_per_sec']:.2f}x vs {baseline['label']}]"
        lines.append(line)
    return "\n".join(lines)
