"""The HiPER CUDA module (paper §II-C3).

Supports blocking and asynchronous data transfers and asynchronous kernels
over the simulated device. This is the one shipped module that registers
*special-purpose functions* with the runtime: it claims copies to/from GPU
places, so any ``async_copy`` touching a GPU place is handed off to it
automatically. Asynchronous completions use the same polling-task technique
as the MPI module (paper: "The CUDA Module uses the same polling technique
as the MPI Module").

Works single-rank (no fabric needed): pass the runtime's GPU place
properties; in SPMD runs use :func:`cuda_factory`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.cuda.device import DeviceArray, GpuOp, SimGpu
from repro.modules.base import HiperModule
from repro.platform.place import Place, PlaceType
from repro.runtime.future import Future, Promise, when_all
from repro.runtime.polling import PollingService
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import GpuError, ModuleError


class CudaModule(HiperModule):
    """Pluggable CUDA module over simulated devices."""

    name = "cuda"
    capabilities = frozenset({"accelerator", "device-memory"})

    def __init__(self, ctx=None, *, poll_interval: float = 2e-6,
                 eager_kick: bool = True):
        super().__init__()
        self.ctx = ctx  # optional RankContext; unused single-rank
        self._poll_interval = poll_interval
        self._eager_kick = eager_kick
        self.devices: List[SimGpu] = []
        self._gpu_places: List[Place] = []
        self.polling: Optional[PollingService] = None
        self.runtime: Optional[HiperRuntime] = None

    # ------------------------------------------------------------------
    def initialize(self, runtime: HiperRuntime) -> None:
        self.require_place_type(runtime, PlaceType.GPU_MEM)
        self.runtime = runtime
        self._gpu_places = runtime.model.places_of_type(PlaceType.GPU_MEM)
        for place in self._gpu_places:
            self.devices.append(
                SimGpu.from_place(runtime.executor, place,
                                  on_complete=self._on_progress)
            )
        # Poll at the first GPU place: its tasks are reachable by all workers
        # whose paths include GPU places (the shipped default policy).
        self.polling = PollingService(
            runtime, self._gpu_places[0], module=self.name,
            interval=self._poll_interval, eager_kick=self._eager_kick,
            name="cuda-poll",
        )
        # Special-purpose registration (paper §II-C item 3): GPU copies.
        runtime.register_copy_handler(
            PlaceType.SYSTEM_MEM, PlaceType.GPU_MEM, self._handle_copy_h2d
        )
        runtime.register_copy_handler(
            PlaceType.GPU_MEM, PlaceType.SYSTEM_MEM, self._handle_copy_d2h
        )
        runtime.register_copy_handler(
            PlaceType.GPU_MEM, PlaceType.GPU_MEM, self._handle_copy_d2d
        )
        for api_name, fn in [
            ("cudaMalloc", self.malloc), ("cudaFree", self.free),
            ("cudaMemcpyAsync", self.memcpy_async),
            ("cudaMemcpy", self.memcpy),
            ("forasync_cuda", self.forasync_cuda),
        ]:
            self.export(runtime, api_name, fn)
        self._initialized = True

    def finalize(self, runtime: HiperRuntime) -> None:
        if self.polling is not None and self.polling.outstanding:
            raise GpuError(
                f"CUDA module finalized with {self.polling.outstanding} "
                "outstanding asynchronous operations"
            )

    def _on_progress(self) -> None:
        if self.polling is not None:
            self.polling.kick()

    # ------------------------------------------------------------------
    def device(self, index: int = 0) -> SimGpu:
        try:
            return self.devices[index]
        except IndexError:
            raise GpuError(
                f"no device {index}; platform has {len(self.devices)} GPU(s)"
            ) from None

    def gpu_place(self, index: int = 0) -> Place:
        return self._gpu_places[index]

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def malloc(self, shape, dtype=np.float64, device: int = 0) -> DeviceArray:
        return self.device(device).malloc(shape, dtype)

    def free(self, darr: DeviceArray) -> None:
        darr.device.free(darr)

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def _op_future(self, op: GpuOp, what: str, nbytes: int = 0) -> Future:
        rt = self.runtime
        assert rt is not None and self.polling is not None
        promise = Promise(name=f"cuda-{what}")
        self.polling.watch(
            lambda: (True, op.value) if op.test() else (False, None), promise
        )
        rt.stats.count(self.name, what)
        if nbytes:
            # Per-direction byte volume: what ends in h2d/d2h/d2d.
            rt.stats.count(self.name, f"bytes_{what.rsplit('_', 1)[-1]}", nbytes)
            rt.stats.observe(self.name, "xfer_size", nbytes)
        return promise.get_future()

    @staticmethod
    def _xfer_nbytes(dst, src, nbytes: Optional[int]) -> int:
        if nbytes is not None:
            return int(nbytes)
        for buf in (src, dst):
            if isinstance(buf, (DeviceArray, np.ndarray)):
                return int(buf.nbytes)
        return 0

    def memcpy_async(self, dst, src, *, stream: int = 0,
                     nbytes: Optional[int] = None, index=None) -> Future:
        """Direction inferred from argument types (host array vs DeviceArray).

        ``index`` addresses a region of the *device* side (e.g. one halo
        plane): for H2D it is the destination index, for D2H the source index.
        """
        d_dev = isinstance(dst, DeviceArray)
        s_dev = isinstance(src, DeviceArray)
        n = self._xfer_nbytes(dst, src, nbytes)
        if d_dev and s_dev:
            op = dst.device.copy_d2d(dst, src, stream=stream, nbytes=nbytes)
            return self._op_future(op, "memcpy_d2d", n)
        if d_dev:
            op = dst.device.copy_h2d(dst, src, stream=stream, nbytes=nbytes,
                                     dst_index=index)
            return self._op_future(op, "memcpy_h2d", n)
        if s_dev:
            op = src.device.copy_d2h(dst, src, stream=stream, nbytes=nbytes,
                                     src_index=index)
            return self._op_future(op, "memcpy_d2h", n)
        raise GpuError("memcpy_async needs at least one DeviceArray argument")

    def memcpy(self, dst, src, *, stream: int = 0,
               nbytes: Optional[int] = None, index=None) -> None:
        """Blocking transfer (the paper's GEO baseline uses these; the HiPER
        variant replaces them with futures — that is the measured win)."""
        self.memcpy_async(dst, src, stream=stream, nbytes=nbytes,
                          index=index).wait()

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def kernel_async(
        self,
        body: Callable[[], Any],
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        stream: int = 0,
        device: int = 0,
        await_futures: Sequence[Future] = (),
    ) -> Future:
        """Launch ``body`` as an asynchronous kernel; returns its completion
        future (value = body's return). With ``await_futures``, the launch
        itself is deferred until they are satisfied (composability: a kernel
        can depend on MPI receives, paper §II-D)."""
        rt = self.runtime
        assert rt is not None
        dev = self.device(device)
        if not await_futures:
            op = dev.launch(body, flops=flops, bytes_moved=bytes_moved,
                            stream=stream)
            return self._op_future(op, "kernel")
        out = Promise(name="cuda-kernel-await")
        dep = when_all(list(await_futures))

        def _launch(_f: Future) -> None:
            try:
                _f.value()
            except BaseException as exc:  # noqa: BLE001
                out.put_exception(exc)
                return
            op = dev.launch(body, flops=flops, bytes_moved=bytes_moved,
                            stream=stream)
            self._op_future(op, "kernel").on_ready(
                lambda f: _forward(f, out)
            )

        dep.on_ready(_launch)
        rt.stats.count(self.name, "kernel_await")
        return out.get_future()

    def forasync_cuda(
        self,
        domain: Union[int, range],
        body: Callable[[np.ndarray], Any],
        *,
        flops_per_item: float = 2.0,
        bytes_per_item: float = 16.0,
        stream: int = 0,
        device: int = 0,
        await_futures: Sequence[Future] = (),
    ) -> Future:
        """The paper's ``forasync_cuda`` (§II-D): a data-parallel kernel over
        an index domain. ``body`` receives the full index vector (vectorized,
        per the repo's numpy-first kernel style) and runs against device
        arrays at kernel completion."""
        dom = range(domain) if isinstance(domain, int) else domain
        idx = np.arange(dom.start, dom.stop, dom.step)

        return self.kernel_async(
            lambda: body(idx),
            flops=flops_per_item * len(idx),
            bytes_moved=bytes_per_item * len(idx),
            stream=stream,
            device=device,
            await_futures=await_futures,
        )

    # ------------------------------------------------------------------
    # async_copy handlers (special-purpose registration)
    # ------------------------------------------------------------------
    def _device_for_place(self, place: Place) -> SimGpu:
        for p, dev in zip(self._gpu_places, self.devices):
            if p is place:
                return dev
        raise GpuError(f"place {place.name!r} is not a GPU place of this module")

    def _handle_copy_h2d(self, rt, dst_buf, dst_place, src_buf, src_place,
                         nbytes: int) -> Future:
        if not isinstance(dst_buf, DeviceArray):
            raise GpuError("async_copy to a GPU place needs a DeviceArray destination")
        dev = self._device_for_place(dst_place)
        return self._op_future(dev.copy_h2d(dst_buf, src_buf, nbytes=nbytes),
                               "async_copy_h2d", nbytes)

    def _handle_copy_d2h(self, rt, dst_buf, dst_place, src_buf, src_place,
                         nbytes: int) -> Future:
        if not isinstance(src_buf, DeviceArray):
            raise GpuError("async_copy from a GPU place needs a DeviceArray source")
        dev = self._device_for_place(src_place)
        return self._op_future(dev.copy_d2h(dst_buf, src_buf, nbytes=nbytes),
                               "async_copy_d2h", nbytes)

    def _handle_copy_d2d(self, rt, dst_buf, dst_place, src_buf, src_place,
                         nbytes: int) -> Future:
        dev = self._device_for_place(dst_place)
        return self._op_future(dev.copy_d2d(dst_buf, src_buf, nbytes=nbytes),
                               "async_copy_d2d", nbytes)


def _forward(src: Future, dst: Promise) -> None:
    try:
        dst.put(src.value())
    except BaseException as exc:  # noqa: BLE001
        dst.put_exception(exc)


def cuda_factory(**kwargs) -> Callable[[Any], CudaModule]:
    """Module factory for :func:`repro.distrib.spmd_run`."""
    return lambda ctx: CudaModule(ctx, **kwargs)
