"""Simulated CUDA device (DESIGN.md §2 substitution for the Titan K20X).

The device executes *real numpy payloads* at operation completion — results
are bit-correct — while operation *timing* follows a roofline model:

- kernels: ``launch_overhead + max(flops / device_flops, bytes / device_bw)``,
  serialized on the device's compute engine (one kernel at a time, as on a
  K20X without concurrent-kernel headroom);
- copies: ``pcie_latency + nbytes / pcie_bw``, serialized per direction on
  dedicated DMA engines (H2D and D2H overlap each other and kernels);
- streams: operations within one stream are FIFO; different streams overlap
  subject to the engine constraints above.

Completed operations flip a ``done`` flag and invoke the module's progress
hook — the same request-plus-polling completion flow the paper's MPI and
CUDA modules share (§II-C3).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.util.errors import GpuError

_PCIE_LATENCY = 6e-6  # per-transfer setup latency, seconds


class DeviceArray:
    """Device-resident buffer. Holds a real numpy array for correctness; the
    framework treats it as living at the GPU place (host code should not
    read ``data`` directly — use copies, as with real CUDA)."""

    __slots__ = ("handle", "data", "device")
    _handles = itertools.count(1)

    def __init__(self, data: np.ndarray, device: "SimGpu"):
        self.handle = next(self._handles)
        self.data = data
        self.device = device

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __repr__(self) -> str:
        return (
            f"DeviceArray(#{self.handle}, {self.data.shape}, {self.data.dtype}, "
            f"dev={self.device.index})"
        )


class GpuOp:
    """Completion handle for one enqueued device operation."""

    __slots__ = ("kind", "done", "completion_time", "value")

    def __init__(self, kind: str):
        self.kind = kind
        self.done = False
        self.completion_time = 0.0
        self.value: Any = None

    def test(self) -> bool:
        return self.done

    def __repr__(self) -> str:
        return f"<GpuOp {self.kind} done={self.done}>"


class SimGpu:
    """One simulated accelerator."""

    def __init__(
        self,
        executor,
        index: int = 0,
        *,
        mem_bytes: int = 6 * 2**30,
        flops: float = 1.31e12,
        mem_bw: float = 208e9,
        pcie_bw: float = 6e9,
        launch_overhead: float = 8e-6,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        self.executor = executor
        self.index = index
        self.mem_bytes = int(mem_bytes)
        self.flops = float(flops)
        self.mem_bw = float(mem_bw)
        self.pcie_bw = float(pcie_bw)
        self.launch_overhead = float(launch_overhead)
        #: Completion hook (the module points this at its polling kick).
        self.on_complete = on_complete
        self.mem_used = 0
        self._live: Dict[int, DeviceArray] = {}
        self._stream_avail: Dict[int, float] = {}
        self._compute_avail = 0.0
        self._dma_avail = {"h2d": 0.0, "d2h": 0.0, "d2d": 0.0}
        self.kernels_launched = 0
        self.copies = 0

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def malloc(self, shape, dtype=np.float64) -> DeviceArray:
        arr = np.zeros(shape, dtype=dtype)
        if self.mem_used + arr.nbytes > self.mem_bytes:
            raise GpuError(
                f"cudaMalloc of {arr.nbytes} bytes exceeds device {self.index} "
                f"memory ({self.mem_used}/{self.mem_bytes} in use)"
            )
        darr = DeviceArray(arr, self)
        self.mem_used += arr.nbytes
        self._live[darr.handle] = darr
        return darr

    def free(self, darr: DeviceArray) -> None:
        if darr.handle not in self._live:
            raise GpuError(f"double free of {darr!r}")
        del self._live[darr.handle]
        self.mem_used -= darr.nbytes

    def _check_live(self, darr: DeviceArray, what: str) -> None:
        if darr.device is not self:
            raise GpuError(f"{what}: {darr!r} belongs to device {darr.device.index}")
        if darr.handle not in self._live:
            raise GpuError(f"{what}: {darr!r} was freed")

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def _schedule(self, stream: int, engine: str, duration: float,
                  op: GpuOp, apply_fn: Callable[[], Any]) -> GpuOp:
        now = self.executor.now()
        start = max(now, self._stream_avail.get(stream, 0.0))
        if engine == "compute":
            start = max(start, self._compute_avail)
            finish = start + duration
            self._compute_avail = finish
        else:
            start = max(start, self._dma_avail[engine])
            finish = start + duration
            self._dma_avail[engine] = finish
        self._stream_avail[stream] = finish

        def _complete() -> None:
            op.value = apply_fn()
            op.done = True
            op.completion_time = finish
            if self.on_complete is not None:
                self.on_complete()

        self.executor.call_later(max(0.0, finish - now), _complete)
        return op

    # ------------------------------------------------------------------
    # copies
    # ------------------------------------------------------------------
    def copy_h2d(self, dst: DeviceArray, src: np.ndarray, *, stream: int = 0,
                 nbytes: Optional[int] = None, dst_index=None) -> GpuOp:
        """Host-to-device. With ``dst_index``, the snapshot of ``src`` lands
        in ``dst.data[dst_index]`` (cudaMemcpy at an offset/region); otherwise
        it fills the flat prefix of the buffer."""
        self._check_live(dst, "copy_h2d")
        n = int(src.nbytes if nbytes is None else nbytes)
        if dst_index is None and n > dst.nbytes:
            raise GpuError(f"copy_h2d of {n} bytes into {dst.nbytes}-byte buffer")
        snapshot = np.ascontiguousarray(src).copy()
        self.copies += 1

        def _apply() -> None:
            if dst_index is not None:
                dst.data[dst_index] = snapshot.reshape(dst.data[dst_index].shape)
            else:
                flat = dst.data.reshape(-1).view(np.uint8)
                flat[:n] = snapshot.reshape(-1).view(np.uint8)[:n]

        return self._schedule(
            stream, "h2d", _PCIE_LATENCY + n / self.pcie_bw, GpuOp("h2d"), _apply
        )

    def copy_d2h(self, dst: np.ndarray, src: DeviceArray, *, stream: int = 0,
                 nbytes: Optional[int] = None, src_index=None) -> GpuOp:
        """Device-to-host. With ``src_index``, copies ``src.data[src_index]``
        into ``dst`` (which may be any same-shaped numpy view); otherwise the
        flat prefix. The read of device memory happens at completion time
        (virtual), matching real asynchronous D2H semantics."""
        self._check_live(src, "copy_d2h")
        if src_index is None:
            n = int(src.nbytes if nbytes is None else nbytes)
            if n > dst.nbytes:
                raise GpuError(f"copy_d2h of {n} bytes into {dst.nbytes}-byte buffer")
            if not dst.flags["C_CONTIGUOUS"]:
                raise GpuError("copy_d2h destination must be C-contiguous")
        else:
            n = int(src.data[src_index].nbytes if nbytes is None else nbytes)
        self.copies += 1

        def _apply() -> None:
            if src_index is not None:
                dst[...] = src.data[src_index].reshape(dst.shape)
            else:
                flat = dst.reshape(-1).view(np.uint8)
                flat[:n] = src.data.reshape(-1).view(np.uint8)[:n]

        return self._schedule(
            stream, "d2h", _PCIE_LATENCY + n / self.pcie_bw, GpuOp("d2h"), _apply
        )

    def copy_d2d(self, dst: DeviceArray, src: DeviceArray, *, stream: int = 0,
                 nbytes: Optional[int] = None) -> GpuOp:
        self._check_live(src, "copy_d2d")
        self._check_live(dst, "copy_d2d")
        n = int(src.nbytes if nbytes is None else nbytes)

        def _apply() -> None:
            flat = dst.data.reshape(-1).view(np.uint8)
            flat[:n] = src.data.reshape(-1).view(np.uint8)[:n]

        return self._schedule(
            stream, "d2d", n / self.mem_bw, GpuOp("d2d"), _apply
        )

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def launch(
        self,
        body: Callable[[], Any],
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        stream: int = 0,
    ) -> GpuOp:
        """Enqueue a kernel. ``body`` runs (on the host, against device
        arrays) at the kernel's virtual completion; its return value appears
        as the op's value. Roofline duration from ``flops``/``bytes_moved``."""
        if flops < 0 or bytes_moved < 0:
            raise GpuError("kernel flops/bytes must be non-negative")
        duration = self.launch_overhead + max(
            flops / self.flops, bytes_moved / self.mem_bw
        )
        self.kernels_launched += 1
        return self._schedule(stream, "compute", duration, GpuOp("kernel"), body)

    # ------------------------------------------------------------------
    @classmethod
    def from_place(cls, executor, place, on_complete=None) -> "SimGpu":
        """Build a device from a GPU place's properties (hwloc discovery)."""
        p = place.properties
        return cls(
            executor,
            index=int(p.get("device", 0)),
            mem_bytes=int(p.get("capacity_bytes", 6 * 2**30)),
            flops=float(p.get("flops", 1.31e12)),
            mem_bw=float(p.get("bandwidth_bytes_per_s", 208e9)),
            pcie_bw=float(p.get("pcie_bytes_per_s", 6e9)),
            launch_overhead=float(p.get("kernel_launch_overhead", 8e-6)),
            on_complete=on_complete,
        )

    def __repr__(self) -> str:
        return (
            f"SimGpu(index={self.index}, mem={self.mem_used}/{self.mem_bytes}, "
            f"kernels={self.kernels_launched}, copies={self.copies})"
        )
