"""The HiPER CUDA module and simulated GPU device (paper §II-C3)."""

from repro.cuda.device import DeviceArray, GpuOp, SimGpu
from repro.cuda.module import CudaModule, cuda_factory

__all__ = ["DeviceArray", "GpuOp", "SimGpu", "CudaModule", "cuda_factory"]
