"""Deterministic virtual-time executor (discrete-event simulation).

This is the reproduction's substitute for running on Edison/Titan (DESIGN.md
§2): every (rank, worker) pair carries a virtual clock; compute is charged
explicitly (task ``cost=`` or ``charge()``); communication and device
completions arrive as timestamped events. One OS thread drives everything, so
runs are bit-for-bit reproducible for a given seed.

Scheduling order: the engine always runs the lowest-``(clock, rank, wid)``
worker that may have work; when no worker can find work it advances the event
queue; when both are exhausted it has *proved* quiescence (and raises
:class:`DeadlockError` if anything is still blocked).

Worker selection is O(log W): maybe-ready workers live in a lazy-deletion
heap keyed by ``(clock, rank, wid)``. Entries whose worker left the set are
dropped on pop; entries whose clock went stale (the worker ran and advanced
while staying maybe-ready) are re-keyed in place — clocks only move forward,
so a stale entry always surfaces no later than its fresh position. The
selection order is bit-for-bit identical to the previous O(W) ``min()`` scan
(the key is a strict total order per worker); ``selection="scan"`` keeps the
scan implementation for the equivalence test in
``tests/test_scheduler_determinism.py``.

Blocking (``future.wait``, ``finish``) uses *help-until-ready*: the blocked
frame re-enters the engine loop, so any worker — including the blocked one —
keeps executing ready tasks and events keep flowing. This nests on the Python
call stack; pathological nesting depth raises a diagnostic rather than a bare
``RecursionError`` (coroutine tasks avoid the nesting entirely).
"""

from __future__ import annotations

import functools
import heapq
import itertools
import sys
from typing import Any, Callable, List, Optional, Set

import numpy as np

from repro.exec.base import Executor
from repro.exec.eventq import FlatEventQueue
from repro.runtime.context import ExecContext, _tls, current_context, scoped_context
from repro.runtime.finish import FinishScope
from repro.runtime.deques import NullLock
from repro.runtime.future import Future, Promise
from repro.runtime.runtime import HiperRuntime
from repro.runtime.task import Task, TaskSlab, TaskState
from repro.runtime.worker import WorkerState, find_task
from repro.util.errors import (
    ConfigError,
    DeadlockError,
    HiperError,
    PlaceFailure,
    RuntimeStateError,
)


class SimExecutor(Executor):
    """Single-threaded, deterministic, virtual-time engine for 1..N runtimes."""

    mode = "sim"

    #: Single OS thread: deque slots and occupancy indexes need no locking.
    lock_class = NullLock

    #: Exact occupancy + no parking races: wakes are only needed on
    #: empty -> non-empty slot transitions (see Executor.notify_on_every_push).
    notify_on_every_push = False

    #: Nested help-until-ready levels beyond which we fail loudly with advice
    #: instead of hitting Python's recursion limit somewhere unhelpful.
    MAX_HELP_DEPTH = 4000

    def __init__(self, *, trace: bool = False, task_overhead: float = 0.0,
                 selection: str = "heap", engine: str = "flat",
                 shards: int = 1):
        """``task_overhead``: virtual seconds charged per task dispatch
        (models scheduler/dispatch cost; 0 by default, exercised by the
        runtime-overhead ablation bench). ``selection``: ``"heap"`` (default,
        O(log W) lazy-deletion heap) or ``"scan"`` (legacy O(W) min-scan,
        kept to prove the two produce identical schedules). ``engine``:
        ``"flat"`` (default since it soaked through the PR-7 differential
        gates; slab-allocated events in a calendar queue plus recycled task
        records — see ``docs/sim-internals.md``) or ``"objects"`` (the
        original heapq-of-records engine, kept selectable; the two produce
        bit-for-bit identical schedules, gated by the verify differential).
        ``shards``: partition an SPMD run across N OS processes, each driving
        its own flat sub-simulator, synchronized by conservative time windows
        (see ``repro.exec.shards``). ``shards=1`` (default) is a strict
        passthrough — this executor runs everything itself and the attribute
        is never consulted again."""
        if selection not in ("heap", "scan"):
            raise ConfigError(
                f"selection must be 'heap' or 'scan', got {selection!r}")
        if engine not in ("objects", "flat"):
            raise ConfigError(
                f"engine must be 'objects' or 'flat', got {engine!r}")
        if not isinstance(shards, int) or isinstance(shards, bool):
            raise ConfigError(f"shards must be an int, got {shards!r}")
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if shards > 1 and engine != "flat":
            raise ConfigError(
                f"sharded execution requires engine='flat', got {engine!r}")
        self.shards = shards
        self._runtimes: List[HiperRuntime] = []
        self._workers: List[WorkerState] = []
        # (runtime id) -> place_id -> (pop_cover: wid->WorkerState,
        #                              steal_cover: List[WorkerState])
        self._coverage = {}
        self._maybe_ready: Set[WorkerState] = set()
        self._use_heap = selection == "heap"
        self._ready_heap: List = []  # (clock, rank, wid, seq, worker)
        self._wake_seq = itertools.count()
        self.engine = engine
        if engine == "flat":
            # Slab-allocated calendar queue; same truthiness/len/clear
            # protocol as the heap list, so _step/shutdown/repr are shared.
            self._events: Any = FlatEventQueue()
            self.call_later = self._call_later_flat  # type: ignore[method-assign]
            self.call_at = self._call_at_flat  # type: ignore[method-assign]
            self.call_at_batch = self._call_at_batch_flat  # type: ignore[method-assign]
            self.cancel_event = self._cancel_event_flat  # type: ignore[method-assign]
            self._advance_events = self._advance_events_flat  # type: ignore[method-assign]
            self.task_slab = TaskSlab()
            # Reusable bare dispatch context (now() == event floor): the
            # flat advance path pushes/pops this one instance per batch.
            self._bare_ctx = ExecContext(self)
        else:
            self._events = []  # heap of [time, seq, fn]; fn None == cancelled
        self._event_seq = itertools.count()
        self._event_floor = 0.0
        self._help_depth = 0
        self._dead_workers = {}  # id(runtime) -> set of failed worker ids
        self._blocked: List[str] = []
        self._shutdown = False
        self._stepping = False
        self.trace = trace
        self.task_overhead = float(task_overhead)
        self.events_processed = 0
        # Help-until-ready nests on the Python call stack, so engine driving
        # needs recursion headroom; raised on first drive/drain and restored
        # at shutdown (not a permanent process-wide side effect).
        self._saved_recursion_limit: Optional[int] = None

    #: Recursion limit while the engine drives (covers MAX_HELP_DEPTH nesting
    #: with several Python frames per help level).
    ENGINE_RECURSION_LIMIT = 100_000

    def _ensure_recursion_headroom(self) -> None:
        if self._saved_recursion_limit is not None:
            return
        current = sys.getrecursionlimit()
        if current < self.ENGINE_RECURSION_LIMIT:
            self._saved_recursion_limit = current
            sys.setrecursionlimit(self.ENGINE_RECURSION_LIMIT)

    def _restore_recursion_limit(self) -> None:
        if self._saved_recursion_limit is None:
            return
        # Restore only if nobody else adjusted the limit in the meantime.
        if sys.getrecursionlimit() == self.ENGINE_RECURSION_LIMIT:
            sys.setrecursionlimit(self._saved_recursion_limit)
        self._saved_recursion_limit = None

    # ------------------------------------------------------------------
    # Executor interface
    # ------------------------------------------------------------------
    def register_runtime(self, runtime: HiperRuntime) -> None:
        if self._shutdown:
            raise RuntimeStateError("executor already shut down")
        self._runtimes.append(runtime)
        self._coverage[id(runtime)] = self._build_coverage(runtime)
        self._workers.extend(runtime.workers)

    def _build_coverage(self, runtime: HiperRuntime,
                        exclude=frozenset()):
        """Precompute, per (place, creating worker), the tuple of workers
        that could actually take such a task: only the creator pops its slot
        (if the place is on its pop path) and only *other* workers steal it
        (if the place is on their steal path). notify() then wakes exactly
        the workers whose search could succeed, in one tuple walk.

        ``exclude`` (worker ids) drops failed workers from every wake list —
        fail_worker rebuilds the maps so the dead worker is never woken
        again."""
        cov = {}
        live = [w for w in runtime.workers if w.wid not in exclude]
        pop_sets = {w.wid: set(w.pop_path) for w in live}
        steal_sets = {w.wid: set(w.steal_path) for w in live}
        for place in runtime.model:
            steal_cover = [w for w in live if place in steal_sets[w.wid]]
            wake_all = tuple(
                dict.fromkeys(
                    [w for w in live if place in pop_sets[w.wid]] + steal_cover
                )
            )
            by_creator = []
            for creator in range(runtime.num_workers):
                wake = []
                if place in pop_sets.get(creator, ()):
                    wake.append(runtime.workers[creator])
                wake.extend(w for w in steal_cover if w.wid != creator)
                by_creator.append(tuple(wake))
            cov[place.place_id] = (by_creator, wake_all)
        return cov

    def shutdown(self) -> None:
        self._shutdown = True
        self._maybe_ready.clear()
        self._ready_heap.clear()
        if self.engine == "flat":
            # Break the reference cycles that keep a finished flat executor
            # alive under refcounting alone: the engine bindings in the
            # instance dict are bound methods (each holds ``self``) and the
            # reusable dispatch context points back at the executor. Under
            # ``gc.disable()`` — pytest-benchmark runs that way — an
            # un-broken cycle pins the executor's entire event slab and
            # task slab per instance. Dropping the slab wholesale is also
            # cheaper than clear(), which reallocates at full capacity.
            self._bare_ctx = None
            for name in ("call_later", "call_at", "call_at_batch",
                         "cancel_event", "_advance_events"):
                self.__dict__.pop(name, None)
            self._events = []
            self.task_slab = TaskSlab()
        else:
            self._events.clear()
        self._restore_recursion_limit()

    def pending_events(self) -> int:
        return len(self._events)

    def now(self) -> float:
        # current_context() inlined: now() runs once per enqueue (release-time
        # stamping), so the extra call is measurable on the dispatch path.
        stack = _tls.stack
        if stack:
            worker = stack[-1].worker
            if worker is not None:
                return worker.clock
        return self._event_floor

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError(f"cannot charge negative time {seconds}")
        ctx = current_context()
        if ctx is None or ctx.worker is None:
            raise RuntimeStateError("charge() must be called from a worker context")
        ctx.worker.clock += seconds
        if ctx.runtime is not None:
            ctx.runtime.stats.worker_activity(ctx.worker.wid, busy=seconds)

    def notify(self, runtime: HiperRuntime, place,
               created_by: Optional[int] = None) -> None:
        by_creator, wake_all = self._coverage[id(runtime)][place.place_id]
        workers = wake_all if created_by is None else by_creator[created_by]
        ready = self._maybe_ready
        if self._use_heap:
            heap, seq = self._ready_heap, self._wake_seq
            for w in workers:
                if w not in ready:
                    ready.add(w)
                    heapq.heappush(
                        heap, (w.clock, w.rank, w.wid, next(seq), w))
        else:
            for w in workers:
                ready.add(w)

    def _wake(self, worker: WorkerState) -> None:
        if worker not in self._maybe_ready:
            self._maybe_ready.add(worker)
            if self._use_heap:
                heapq.heappush(
                    self._ready_heap,
                    (worker.clock, worker.rank, worker.wid,
                     next(self._wake_seq), worker),
                )

    def call_later(self, delay: float, fn: Callable[[], None]) -> int:
        """Schedule ``fn`` after ``delay`` virtual seconds; returns a handle
        for :meth:`cancel_event`. Rejects negative and NaN delays — a NaN
        would corrupt the heap invariant silently (every comparison against
        it is False), scrambling event order downstream."""
        if delay < 0 or delay != delay:
            raise ConfigError(
                f"call_later delay must be a non-negative number, got {delay}")
        seq = next(self._event_seq)
        heapq.heappush(self._events, [self.now() + delay, seq, fn])
        return seq

    def call_at(self, when: float, fn: Callable[[], None]) -> int:
        """Schedule at an absolute virtual time (used by the network fabric);
        returns a handle for :meth:`cancel_event`. Rejects NaN timestamps
        (silent heap-order corruption, as in :meth:`call_later`).

        Clamped to the event floor, not zero: the floor only moves forward,
        and an event stamped in the virtual past would sort "before" events
        that have already been processed, silently reordering causality."""
        if when != when:
            raise ConfigError(f"call_at timestamp must not be NaN, got {when}")
        seq = next(self._event_seq)
        heapq.heappush(
            self._events,
            [when if when > self._event_floor else self._event_floor, seq, fn],
        )
        return seq

    def call_at_batch(self, whens, fn: Callable[[Any], None], args) -> None:
        """Schedule ``fn(args[i])`` at each ``whens[i]`` (floor-clamped like
        :meth:`call_at`). One call prices a whole fabric wave; the flat
        engine inserts it with a single vectorized slab append, this heap
        fallback degenerates to per-event pushes. Internal fast path: no
        NaN validation, no cancellation handles."""
        events = self._events
        floor = self._event_floor
        seq = self._event_seq
        push = heapq.heappush
        if isinstance(whens, np.ndarray):
            whens = whens.tolist()
        for w, a in zip(whens, args):
            push(events, [w if w > floor else floor, next(seq),
                          functools.partial(fn, a)])

    def cancel_event(self, handle: int) -> bool:
        """Cancel a pending event by the handle ``call_later``/``call_at``
        returned. Returns True if the event was still pending. Cancellation
        is lazy on both engines: the record keeps its queue position with a
        blanked callback and is skipped at dispatch, so an event of the
        batch currently being dispatched is already out of reach."""
        for entry in self._events:
            if entry[1] == handle:
                if entry[2] is None:
                    return False
                entry[2] = None
                return True
        return False

    # Flat-engine variants, swapped in as instance attributes by __init__.

    def _call_later_flat(self, delay: float, fn: Callable[[], None]) -> int:
        if delay < 0 or delay != delay:
            raise ConfigError(
                f"call_later delay must be a non-negative number, got {delay}")
        return self._events.push(self.now() + delay, fn)

    def _call_at_flat(self, when: float, fn: Callable[[], None]) -> int:
        if when != when:
            raise ConfigError(f"call_at timestamp must not be NaN, got {when}")
        return self._events.push(
            when if when > self._event_floor else self._event_floor, fn)

    def _call_at_batch_flat(self, whens, fn, args) -> None:
        # Clamp to the event floor only when some timestamp is below it:
        # waves are stamped at-or-after "now", so the common case is one
        # min() instead of a per-event rewrite.
        floor = self._event_floor
        if isinstance(whens, np.ndarray):
            if whens.size and float(whens.min()) < floor:
                whens = np.maximum(whens, floor)
        elif whens and min(whens) < floor:
            whens = [w if w > floor else floor for w in whens]
        self._events.push_batch(whens, fn, args)

    def _cancel_event_flat(self, handle: int) -> bool:
        return self._events.cancel(handle)

    # ------------------------------------------------------------------
    # fault injection (repro.resilience)
    # ------------------------------------------------------------------
    def fail_place(self, runtime: HiperRuntime, place,
                   reassign_to=None):
        """Simulate the failure of ``place`` on ``runtime`` at the current
        virtual time.

        Ready tasks whose body has not started are *replayed*: moved to
        ``reassign_to`` (default: system memory) with ``attempts`` bumped.
        Their finish-scope registration carries over unchanged, so enclosing
        joins keep waiting for the replayed work. Partially-executed
        coroutine continuations have observed state that died with the place,
        so they are failed with :class:`PlaceFailure` (catch it with
        ``async_retry(retry_on=PlaceFailure)`` to restore-and-redo from a
        checkpoint). Future enqueues targeting the place are redirected to
        the fallback. Returns ``(replayed, killed)`` counts.
        """
        fallback = reassign_to if reassign_to is not None else runtime.sysmem
        if fallback is place:
            raise ConfigError(
                f"cannot reassign failed place {place.name!r} to itself")
        if fallback.place_id in runtime._dead_places:
            raise ConfigError(
                f"fallback place {fallback.name!r} has itself failed")
        t = self.now()
        drained = runtime.deques.at(place).drain()
        runtime.mark_place_failed(place, fallback)
        replayed = killed = 0
        for task in drained:
            if task.gen is None:
                task.attempts += 1
                task.place = fallback
                replayed += 1
                runtime._enqueue(task)
            else:
                killed += 1
                self._fail(runtime, task, PlaceFailure(
                    f"place {place.name!r} on rank {runtime.rank} failed at "
                    f"t={t:.9f} with task {task.name!r} in flight",
                    place=place.name))
        stats = runtime.stats
        stats.count("resilience", "place_failures")
        if replayed:
            stats.count("resilience", "tasks_replayed", replayed)
        if killed:
            stats.count("resilience", "tasks_killed", killed)
        stats.sample("resilience/failures", t, float(replayed + killed))
        return replayed, killed

    def fail_worker(self, runtime: HiperRuntime, wid: int) -> int:
        """Simulate the failure of worker ``wid`` on ``runtime``.

        The worker leaves the maybe-ready set (its stale heap entries are
        lazily discarded), every wake-coverage list is rebuilt without it,
        and its deque slots are evacuated: stranded tasks are re-pushed under
        the lowest live worker id, which also receives all future pushes
        crediting the dead worker. Returns the number of tasks moved.
        """
        if not 0 <= wid < runtime.num_workers:
            raise ConfigError(
                f"worker {wid} out of range [0, {runtime.num_workers})")
        dead = self._dead_workers.setdefault(id(runtime), set())
        if wid in dead:
            return 0
        if len(dead) + 1 >= runtime.num_workers:
            raise ConfigError(
                f"cannot fail worker {wid}: it is the last live worker on "
                f"rank {runtime.rank}")
        dead.add(wid)
        worker = runtime.workers[wid]
        self._maybe_ready.discard(worker)
        self._coverage[id(runtime)] = self._build_coverage(runtime,
                                                           exclude=dead)
        target = min(w.wid for w in runtime.workers if w.wid not in dead)
        runtime.mark_worker_failed(wid, target)
        moved = 0
        for place in runtime.model:
            for task in runtime.deques.at(place).slots[wid].drain():
                task.created_by = target
                moved += 1
                runtime._enqueue(task)
        stats = runtime.stats
        stats.count("resilience", "worker_failures")
        if moved:
            stats.count("resilience", "tasks_moved", moved)
        stats.sample("resilience/failures", self.now(), float(moved))
        return moved

    # ------------------------------------------------------------------
    # the engine loop
    # ------------------------------------------------------------------
    def _step(self) -> bool:
        """Run one task or one event batch. False iff nothing can happen."""
        if self._use_heap:
            ready, heap = self._maybe_ready, self._ready_heap
            while ready:
                clock, _rank, _wid, _seq, worker = heap[0]
                if worker not in ready:
                    heapq.heappop(heap)  # lazily-deleted entry
                    continue
                if clock != worker.clock:
                    # Stale key: the worker ran (clocks only advance) while
                    # staying maybe-ready. Re-key at its current clock.
                    heapq.heapreplace(
                        heap, (worker.clock, worker.rank, worker.wid,
                               next(self._wake_seq), worker))
                    continue
                task = find_task(worker)
                if task is None:
                    ready.discard(worker)
                    heapq.heappop(heap)
                    continue
                self._run_task(worker, task)
                return True
        else:  # legacy scan-min selection (determinism cross-check)
            while self._maybe_ready:
                worker = min(
                    self._maybe_ready, key=lambda w: (w.clock, w.rank, w.wid)
                )
                task = find_task(worker)
                if task is None:
                    self._maybe_ready.discard(worker)
                    continue
                self._run_task(worker, task)
                return True
        if self._events:
            self._advance_events()
            return True
        return False

    def _run_task(self, worker: WorkerState, task: Task) -> None:
        release = task.release_time
        if release > worker.clock:  # advance_clock_to, inlined (hot path)
            worker.idle_time += release - worker.clock
            worker.clock = release
        if self.trace:  # pragma: no cover - debugging aid
            print(f"[sim t={worker.clock:.9f}] r{worker.rank}w{worker.wid} run {task.describe()}")
        self.execute_task(worker.runtime, worker, task)
        slab = self.task_slab
        if slab is not None and (task.state is TaskState.DONE
                                 or task.state is TaskState.FAILED):
            # Flat engine: the record's lifetime provably ends here —
            # suspended/re-enqueued tasks are still referenced by resumer
            # closures or deques and stay out of the pool.
            slab.release(task)
        # The task may have pushed follow-up work for this worker; notify()
        # covers cross-worker wakes but re-adding ourselves is cheap and keeps
        # the hot pop-path loop tight. (Usually still a member here — then
        # this is just a set test; the worker's existing heap entry is
        # re-keyed lazily when its stale clock surfaces at the heap top.)
        if worker not in self._maybe_ready:
            self._wake(worker)

    def _advance_events(self) -> None:
        """Pop and run every event sharing the minimum timestamp (blanked —
        cancelled — callbacks pop with their batch but are skipped)."""
        t0, _, fn = heapq.heappop(self._events)
        self._event_floor = max(self._event_floor, t0)
        batch = [fn]
        while self._events and self._events[0][0] == t0:
            batch.append(heapq.heappop(self._events)[2])
        ctx = ExecContext(self)  # bare context: now() == event floor
        with scoped_context(ctx):
            for fn in batch:
                if fn is None:
                    continue
                fn()
                self.events_processed += 1

    def _advance_events_flat(self) -> None:
        """Flat-engine advance: one calendar pop surfaces the whole
        equal-timestamp cohort as raw slab slots, and dispatch runs straight
        off the slab columns — no per-event materialization.  Singleton
        cohorts snapshot their one record and release it up front; larger
        cohorts stay resident on the queue's in-flight stack until done, so
        concurrent pushes cannot recycle their slots and cancel_event treats
        them as already-run (the same reach the objects engine gives its
        materialized batch).

        The bare dispatch context (now() == event floor) is one reusable
        instance, and the context-stack push/pop is inlined: this wraps
        every virtual-time advance, and on singleton batches the CM overhead
        was a measurable share of the engine loop."""
        q = self._events
        t0, slots = q.pop_batch()
        if t0 > self._event_floor:
            self._event_floor = t0
        fns_l, args_l = q.fns, q.args
        if len(slots) == 1:
            # Singleton cohort (timer chains): snapshot-and-release is
            # cheaper than the in-flight protocol. The release is inlined
            # (kind 0 == free, clear payload, pool the slot) — a method
            # call per timer event is measurable at storm rates.
            slot = slots[0]
            fn = fns_l[slot]
            arg = args_l[slot]
            q._kind[slot] = 0
            fns_l[slot] = None
            args_l[slot] = None
            q._free.append(slot)
            if fn is None:
                return
            stack = _tls.stack
            stack.append(self._bare_ctx)
            try:
                if arg is None:
                    fn()
                else:
                    fn(arg)
                self.events_processed += 1
            finally:
                stack.pop()
            return
        n = 0
        stack = _tls.stack
        stack.append(self._bare_ctx)
        q.inflight.append(slots)
        epoch = q.epoch
        try:
            if type(slots) is range:
                # Contiguous cohort: iterate the payload columns by slice —
                # zip of two list slices beats per-slot indexed loads. The
                # slices are snapshots, which is exactly the semantics the
                # objects engine gives its materialized batch (a cancel
                # landing mid-dispatch is too late either way).
                for fn, arg in zip(fns_l[slots.start:slots.stop],
                                   args_l[slots.start:slots.stop]):
                    if fn is None:
                        continue
                    if arg is None:
                        fn()
                    else:
                        fn(arg)
                    n += 1
            else:
                for s in slots:
                    fn = fns_l[s]
                    if fn is None:
                        continue
                    arg = args_l[s]
                    if arg is None:
                        fn()
                    else:
                        fn(arg)
                    n += 1
        finally:
            q.inflight.pop()
            if q.epoch == epoch:
                q.release_batch(slots)
            stack.pop()
            self.events_processed += n

    def on_task_start(self, worker: WorkerState, task: Task) -> None:
        # task.cost is the body's total compute: charge it on the FIRST
        # segment only (coroutine resumes are continuations of the same
        # body); the dispatch overhead applies to every segment.
        cost = self.task_overhead + (task.cost if task.gen is None else 0.0)
        if cost:
            worker.clock += cost
            worker.runtime.stats.worker_activity(worker.wid, busy=cost)

    # ------------------------------------------------------------------
    # blocking
    # ------------------------------------------------------------------
    def block_until(
        self,
        predicate: Callable[[], bool],
        description: str = "",
        time_source: Optional[Callable[[], float]] = None,
    ) -> None:
        ctx = current_context()
        worker = ctx.worker if ctx is not None else None
        if not predicate():
            self._help_depth += 1
            if self._help_depth > self.MAX_HELP_DEPTH:
                self._help_depth -= 1
                raise HiperError(
                    f"help-until-ready nesting exceeded {self.MAX_HELP_DEPTH} "
                    f"while blocking on {description or 'a condition'}; "
                    "convert deeply-blocking plain tasks to coroutine tasks "
                    "(yield the future instead of wait())"
                )
            self._blocked.append((description or "<anonymous wait>", predicate))
            try:
                while not predicate():
                    if not self._step():
                        names = [d for d, _ in self._blocked]
                        # Diagnose help-stack inversion: an OUTER blocked
                        # frame whose condition is already satisfied cannot
                        # unwind past us — plain blocking calls in an
                        # iterative SPMD pattern; the fix is coroutine style.
                        inverted = [
                            d for d, p in self._blocked[:-1] if p()
                        ]
                        if inverted:
                            raise DeadlockError(
                                "help-stack inversion: progress requires "
                                f"unwinding to {inverted!r}, which is buried "
                                "beneath this frame on the help stack. Use "
                                "the *_async/future APIs and yield from "
                                "coroutine mains instead of blocking calls "
                                f"(innermost wait: {description!r})",
                                blocked=names,
                            )
                        raise DeadlockError(
                            f"no runnable work or events while waiting on "
                            f"{description or 'a condition'}",
                            blocked=names,
                        )
            finally:
                self._blocked.pop()
                self._help_depth -= 1
        if worker is not None and time_source is not None:
            worker.advance_clock_to(time_source())

    # ------------------------------------------------------------------
    # roots and driving
    # ------------------------------------------------------------------
    def submit_root(
        self, runtime: HiperRuntime, fn: Callable[[], Any], *, name: str = "root"
    ) -> Future:
        """Enqueue ``fn`` as a root task under a fresh finish scope; return a
        future satisfied (with ``fn``'s value) once the whole scope quiesces.
        Does not drive the engine — SPMD launchers submit all ranks first."""
        # self.lock_class, not a hard-coded NullLock: subclasses (the
        # schedule-exploring verifier) plug in tracked locks here.
        scope = FinishScope(name=f"{name}-scope", lock_cls=self.lock_class)
        inner = runtime.spawn(
            fn, scope=scope, return_future=True, name=name,
            place=runtime.workers[0].pop_path[0],
        )
        assert inner is not None
        scope.close()
        out = Promise(name=f"{name}-done")

        def _joined(_f) -> None:
            try:
                scope.raise_collected()
                out.put(inner.value())
            except BaseException as exc:  # noqa: BLE001
                out.put_exception(exc)

        scope.all_done_future().on_ready(_joined)
        return out.get_future()

    def drive(self, until: Callable[[], bool]) -> None:
        """Pump the engine until ``until()`` is true; raise on dead quiescence."""
        if self._stepping:
            raise RuntimeStateError(
                "drive() re-entered; use block_until from inside tasks"
            )
        self._ensure_recursion_headroom()
        self._stepping = True
        try:
            while not until():
                if not self._step():
                    raise DeadlockError(
                        "engine quiesced before completion",
                        blocked=[d for d, _ in self._blocked]
                        + [
                            f"ready tasks at {name}: {n}"
                            for rt in self._runtimes
                            for name, n in rt.deques.snapshot().items()
                        ],
                    )
        finally:
            self._stepping = False

    def drain(self) -> None:
        """Run until full quiescence (no ready tasks, no events)."""
        self._ensure_recursion_headroom()
        while self._step():
            pass

    def run_root(
        self, runtime: HiperRuntime, fn: Callable[[], Any], *, name: str = "root"
    ) -> Any:
        fut = self.submit_root(runtime, fn, name=name)
        # Bind the promise once: the predicate runs per engine step, and a
        # plain attribute read beats the Future.satisfied property call.
        promise = fut._promise
        self.drive(lambda: promise._satisfied)
        return fut.value()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Virtual completion time: max worker clock / event floor seen."""
        clocks = [w.clock for w in self._workers]
        return max(clocks + [self._event_floor]) if clocks else self._event_floor

    def worker_clocks(self) -> List[float]:
        return [w.clock for w in self._workers]

    def __repr__(self) -> str:
        return (
            f"SimExecutor(runtimes={len(self._runtimes)}, "
            f"workers={len(self._workers)}, events={len(self._events)}, "
            f"floor={self._event_floor:.6f})"
        )
