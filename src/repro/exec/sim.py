"""Deterministic virtual-time executor (discrete-event simulation).

This is the reproduction's substitute for running on Edison/Titan (DESIGN.md
§2): every (rank, worker) pair carries a virtual clock; compute is charged
explicitly (task ``cost=`` or ``charge()``); communication and device
completions arrive as timestamped events. One OS thread drives everything, so
runs are bit-for-bit reproducible for a given seed.

Scheduling order: the engine always runs the lowest-``(clock, rank, wid)``
worker that may have work; when no worker can find work it advances the event
queue; when both are exhausted it has *proved* quiescence (and raises
:class:`DeadlockError` if anything is still blocked).

Blocking (``future.wait``, ``finish``) uses *help-until-ready*: the blocked
frame re-enters the engine loop, so any worker — including the blocked one —
keeps executing ready tasks and events keep flowing. This nests on the Python
call stack; pathological nesting depth raises a diagnostic rather than a bare
``RecursionError`` (coroutine tasks avoid the nesting entirely).
"""

from __future__ import annotations

import heapq
import itertools
import sys
from typing import Any, Callable, List, Optional, Set

from repro.exec.base import Executor
from repro.runtime.context import ExecContext, current_context, scoped_context
from repro.runtime.finish import FinishScope
from repro.runtime.future import Future, Promise
from repro.runtime.runtime import HiperRuntime
from repro.runtime.task import Task
from repro.runtime.worker import WorkerState, find_task
from repro.util.errors import ConfigError, DeadlockError, HiperError, RuntimeStateError


class SimExecutor(Executor):
    """Single-threaded, deterministic, virtual-time engine for 1..N runtimes."""

    mode = "sim"

    #: Nested help-until-ready levels beyond which we fail loudly with advice
    #: instead of hitting Python's recursion limit somewhere unhelpful.
    MAX_HELP_DEPTH = 4000

    def __init__(self, *, trace: bool = False, task_overhead: float = 0.0):
        """``task_overhead``: virtual seconds charged per task dispatch
        (models scheduler/dispatch cost; 0 by default, exercised by the
        runtime-overhead ablation bench)."""
        self._runtimes: List[HiperRuntime] = []
        self._workers: List[WorkerState] = []
        self._coverage = {}  # (runtime id) -> place_id -> List[WorkerState]
        self._maybe_ready: Set[WorkerState] = set()
        self._events: List = []  # heap of (time, seq, fn)
        self._event_seq = itertools.count()
        self._event_floor = 0.0
        self._help_depth = 0
        self._blocked: List[str] = []
        self._shutdown = False
        self._stepping = False
        self.trace = trace
        self.task_overhead = float(task_overhead)
        self.events_processed = 0
        # Help-until-ready nests on the Python call stack, so engine driving
        # needs recursion headroom; raised on first drive/drain and restored
        # at shutdown (not a permanent process-wide side effect).
        self._saved_recursion_limit: Optional[int] = None

    #: Recursion limit while the engine drives (covers MAX_HELP_DEPTH nesting
    #: with several Python frames per help level).
    ENGINE_RECURSION_LIMIT = 100_000

    def _ensure_recursion_headroom(self) -> None:
        if self._saved_recursion_limit is not None:
            return
        current = sys.getrecursionlimit()
        if current < self.ENGINE_RECURSION_LIMIT:
            self._saved_recursion_limit = current
            sys.setrecursionlimit(self.ENGINE_RECURSION_LIMIT)

    def _restore_recursion_limit(self) -> None:
        if self._saved_recursion_limit is None:
            return
        # Restore only if nobody else adjusted the limit in the meantime.
        if sys.getrecursionlimit() == self.ENGINE_RECURSION_LIMIT:
            sys.setrecursionlimit(self._saved_recursion_limit)
        self._saved_recursion_limit = None

    # ------------------------------------------------------------------
    # Executor interface
    # ------------------------------------------------------------------
    def register_runtime(self, runtime: HiperRuntime) -> None:
        if self._shutdown:
            raise RuntimeStateError("executor already shut down")
        self._runtimes.append(runtime)
        cov = {}
        for place in runtime.model:
            cov[place.place_id] = [
                runtime.workers[w] for w in runtime.paths.workers_covering(place)
            ]
        self._coverage[id(runtime)] = cov
        self._workers.extend(runtime.workers)

    def shutdown(self) -> None:
        self._shutdown = True
        self._events.clear()
        self._maybe_ready.clear()
        self._restore_recursion_limit()

    def pending_events(self) -> int:
        return len(self._events)

    def now(self) -> float:
        ctx = current_context()
        if ctx is not None and ctx.worker is not None:
            return ctx.worker.clock
        return self._event_floor

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError(f"cannot charge negative time {seconds}")
        ctx = current_context()
        if ctx is None or ctx.worker is None:
            raise RuntimeStateError("charge() must be called from a worker context")
        ctx.worker.clock += seconds
        if ctx.runtime is not None:
            ctx.runtime.stats.worker_activity(ctx.worker.wid, busy=seconds)

    def notify(self, runtime: HiperRuntime, place) -> None:
        for w in self._coverage[id(runtime)][place.place_id]:
            self._maybe_ready.add(w)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ConfigError(f"call_later delay must be non-negative, got {delay}")
        heapq.heappush(self._events, (self.now() + delay, next(self._event_seq), fn))

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule at an absolute virtual time (used by the network fabric)."""
        heapq.heappush(
            self._events, (max(when, 0.0), next(self._event_seq), fn)
        )

    # ------------------------------------------------------------------
    # the engine loop
    # ------------------------------------------------------------------
    def _step(self) -> bool:
        """Run one task or one event batch. False iff nothing can happen."""
        while self._maybe_ready:
            worker = min(
                self._maybe_ready, key=lambda w: (w.clock, w.rank, w.wid)
            )
            task = find_task(worker)
            if task is None:
                self._maybe_ready.discard(worker)
                continue
            self._run_task(worker, task)
            return True
        if self._events:
            self._advance_events()
            return True
        return False

    def _run_task(self, worker: WorkerState, task: Task) -> None:
        worker.advance_clock_to(task.release_time)
        if self.trace:  # pragma: no cover - debugging aid
            print(f"[sim t={worker.clock:.9f}] r{worker.rank}w{worker.wid} run {task.describe()}")
        self.execute_task(worker.runtime, worker, task)
        # The task may have pushed follow-up work for this worker; notify()
        # covers cross-worker wakes but re-adding ourselves is cheap and keeps
        # the hot pop-path loop tight.
        self._maybe_ready.add(worker)

    def _advance_events(self) -> None:
        """Pop and run every event sharing the minimum timestamp."""
        t0, _, fn = heapq.heappop(self._events)
        self._event_floor = max(self._event_floor, t0)
        batch = [fn]
        while self._events and self._events[0][0] == t0:
            batch.append(heapq.heappop(self._events)[2])
        ctx = ExecContext(self)  # bare context: now() == event floor
        with scoped_context(ctx):
            for fn in batch:
                fn()
                self.events_processed += 1

    def on_task_start(self, worker: WorkerState, task: Task) -> None:
        # task.cost is the body's total compute: charge it on the FIRST
        # segment only (coroutine resumes are continuations of the same
        # body); the dispatch overhead applies to every segment.
        cost = self.task_overhead + (task.cost if task.gen is None else 0.0)
        if cost:
            worker.clock += cost
            worker.runtime.stats.worker_activity(worker.wid, busy=cost)

    # ------------------------------------------------------------------
    # blocking
    # ------------------------------------------------------------------
    def block_until(
        self,
        predicate: Callable[[], bool],
        description: str = "",
        time_source: Optional[Callable[[], float]] = None,
    ) -> None:
        ctx = current_context()
        worker = ctx.worker if ctx is not None else None
        if not predicate():
            self._help_depth += 1
            if self._help_depth > self.MAX_HELP_DEPTH:
                self._help_depth -= 1
                raise HiperError(
                    f"help-until-ready nesting exceeded {self.MAX_HELP_DEPTH} "
                    f"while blocking on {description or 'a condition'}; "
                    "convert deeply-blocking plain tasks to coroutine tasks "
                    "(yield the future instead of wait())"
                )
            self._blocked.append((description or "<anonymous wait>", predicate))
            try:
                while not predicate():
                    if not self._step():
                        names = [d for d, _ in self._blocked]
                        # Diagnose help-stack inversion: an OUTER blocked
                        # frame whose condition is already satisfied cannot
                        # unwind past us — plain blocking calls in an
                        # iterative SPMD pattern; the fix is coroutine style.
                        inverted = [
                            d for d, p in self._blocked[:-1] if p()
                        ]
                        if inverted:
                            raise DeadlockError(
                                "help-stack inversion: progress requires "
                                f"unwinding to {inverted!r}, which is buried "
                                "beneath this frame on the help stack. Use "
                                "the *_async/future APIs and yield from "
                                "coroutine mains instead of blocking calls "
                                f"(innermost wait: {description!r})",
                                blocked=names,
                            )
                        raise DeadlockError(
                            f"no runnable work or events while waiting on "
                            f"{description or 'a condition'}",
                            blocked=names,
                        )
            finally:
                self._blocked.pop()
                self._help_depth -= 1
        if worker is not None and time_source is not None:
            worker.advance_clock_to(time_source())

    # ------------------------------------------------------------------
    # roots and driving
    # ------------------------------------------------------------------
    def submit_root(
        self, runtime: HiperRuntime, fn: Callable[[], Any], *, name: str = "root"
    ) -> Future:
        """Enqueue ``fn`` as a root task under a fresh finish scope; return a
        future satisfied (with ``fn``'s value) once the whole scope quiesces.
        Does not drive the engine — SPMD launchers submit all ranks first."""
        scope = FinishScope(name=f"{name}-scope")
        inner = runtime.spawn(
            fn, scope=scope, return_future=True, name=name,
            place=runtime.workers[0].pop_path[0],
        )
        assert inner is not None
        scope.close()
        out = Promise(name=f"{name}-done")

        def _joined(_f) -> None:
            try:
                scope.raise_collected()
                out.put(inner.value())
            except BaseException as exc:  # noqa: BLE001
                out.put_exception(exc)

        scope.all_done_future().on_ready(_joined)
        return out.get_future()

    def drive(self, until: Callable[[], bool]) -> None:
        """Pump the engine until ``until()`` is true; raise on dead quiescence."""
        if self._stepping:
            raise RuntimeStateError(
                "drive() re-entered; use block_until from inside tasks"
            )
        self._ensure_recursion_headroom()
        self._stepping = True
        try:
            while not until():
                if not self._step():
                    raise DeadlockError(
                        "engine quiesced before completion",
                        blocked=[d for d, _ in self._blocked]
                        + [
                            f"ready tasks at {name}: {n}"
                            for rt in self._runtimes
                            for name, n in rt.deques.snapshot().items()
                        ],
                    )
        finally:
            self._stepping = False

    def drain(self) -> None:
        """Run until full quiescence (no ready tasks, no events)."""
        self._ensure_recursion_headroom()
        while self._step():
            pass

    def run_root(
        self, runtime: HiperRuntime, fn: Callable[[], Any], *, name: str = "root"
    ) -> Any:
        fut = self.submit_root(runtime, fn, name=name)
        self.drive(lambda: fut.satisfied)
        return fut.value()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Virtual completion time: max worker clock / event floor seen."""
        clocks = [w.clock for w in self._workers]
        return max(clocks + [self._event_floor]) if clocks else self._event_floor

    def worker_clocks(self) -> List[float]:
        return [w.clock for w in self._workers]

    def __repr__(self) -> str:
        return (
            f"SimExecutor(runtimes={len(self._runtimes)}, "
            f"workers={len(self._workers)}, events={len(self._events)}, "
            f"floor={self._event_floor:.6f})"
        )
