"""Flat-record event storage for the simulated engine (``engine="flat"``).

The objects engine keeps pending events in a ``heapq`` of
``[time, seq, fn]`` entries: every scheduled event allocates a list and a
closure, and every push/pop pays an O(log n) sift whose comparisons are
Python-level compares.  At paper-scale rank counts (512-1024 PEs, an
all-to-all wave keeps 10^5..10^6 fabric deliveries outstanding) that
per-event overhead dominates the simulation.

:class:`FlatEventQueue` replaces the heap with two pieces:

**An event slab** — parallel preallocated columns (``when`` / ``seq`` /
``kind`` / ``gen`` and the payload columns :attr:`fns` / :attr:`args`)
indexed by an integer *slot*, recycled through a free list: the
BufferPool idiom (:mod:`repro.util.bufpool`) applied to event records.
Handles returned to callers pack ``(generation << 32) | slot``, so a
stale handle (the slot was popped and reused) can never cancel the
wrong event.

**A calendar over the slab**, three tiers:

- the *spine* — numpy when/seq/slot arrays sorted ascending by
  ``(when, seq)`` with a head cursor.  Equal-timestamp cohorts pop as
  one ``searchsorted`` + slice: no per-event Python work at all.
- the *far tier* — unsorted parallel slot/when/seq lists absorbing O(1)
  appends (when/seq copied at push time so the merge never gathers them
  back out of the slab), with ``_far_min`` tracking the earliest
  timestamp.  It is merged into the spine by **one vectorized lexsort**
  only when the next pop would otherwise surface a later event
  (``_far_min`` at or below the head).
- the *near buffer* ``_cur`` — a small insertion-sorted buffer holding
  ``(-when, -seq, slot)`` tuples (negated keys so stdlib C ``insort``
  keeps the minimum at the *tail*).  It serves two roles: pushes that
  land before the current head (worker clocks may lag the event floor),
  and — when the spine and far tier are empty — the whole queue, so
  timer-chain workloads (push one, pop one) never touch numpy at all.
  When a timestamp exists in both the buffer and the spine, the pop
  merges the two runs by ``seq``.

Storm workloads — the ISx all-to-all wave pushing thousands of fabric
deliveries back-to-back — therefore pay one C-speed sort instead of N
heap sifts, and :meth:`push_batch` / :meth:`pop_batch` amortize the
Python bookkeeping over whole timestamp cohorts.

Cancellation is lazy, mirroring the objects engine: :meth:`cancel`
blanks the record's callback, the record keeps its place in the
calendar, and the consumer skips ``None`` callbacks when the batch
surfaces.  ``len()`` therefore counts *records* (live + cancelled), the
same thing ``len()`` of the heap reports.

Pop order is bit-for-bit the heap's order — ascending ``(when, seq)``
with ``seq`` the global monotone insertion counter — which is what lets
the flat engine be digest-gated against the objects engine (see
``docs/sim-internals.md``).

Hot-path calling convention: :meth:`pop_batch` returns the cohort as a
timestamp plus raw slab *slots* (plain ints, no per-event allocation);
the consumer dispatches straight off the slab columns (``fns[slot]`` /
``args[slot]``) and hands the slots back via :meth:`release_batch` once
done.  While a cohort is being dispatched its slots sit on the
:attr:`inflight` stack (not in the free list, so concurrent pushes can
never overwrite them); :meth:`cancel` checks that stack so an event of
the batch currently being dispatched is beyond cancellation's reach —
the same guarantee the objects engine gets from materializing its batch
out of the heap before running it.  Payload references are cleared on
release (cancel clears the callback immediately).
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FlatEventQueue"]

_INF = float("inf")

# Slab record kinds.
_K_FREE = 0
_K_CB = 1

_SLOT_MASK = 0xFFFFFFFF

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)


class FlatEventQueue:
    """Slab-backed calendar queue with heap-identical ``(when, seq)`` order.

    Supports the protocol ``SimExecutor`` needs from its event store:
    truthiness / ``len()`` (pending records), ``clear()``, plus
    ``push`` / ``push_batch`` / ``pop`` / ``pop_batch`` /
    ``release_batch`` / ``peek_when`` / ``cancel``.
    """

    #: Cap on the near buffer: a burst of early pushes beyond this spills to
    #: the far tier (one extra lexsort) instead of paying O(n) insorts.
    CUR_LIMIT = 1024

    __slots__ = (
        "_when", "_seq_arr", "_kind", "_gen", "fns", "args",
        "_free", "_next_slot", "_cap",
        "_next_seq", "_n_records",
        "_cur", "_far", "_far_w", "_far_q", "_far_min",
        "_sw", "_sq", "_ss", "_head", "_n_sp",
        "inflight", "epoch",
        "sorts", "sorted_events",
    )

    def __init__(self, capacity: int = 1024) -> None:
        cap = max(16, capacity)
        # The slab: parallel columns indexed by slot.  Plain lists, not
        # numpy arrays — scalar stores/loads are the access pattern here,
        # and list indexing beats numpy scalar indexing; the numpy view is
        # materialized only at sort time.
        self._when: List[float] = [0.0] * cap
        self._seq_arr: List[int] = [0] * cap
        self._kind: List[int] = [_K_FREE] * cap
        self._gen: List[int] = [0] * cap
        #: Slab payload columns, indexed by the slots pop_batch returns.
        self.fns: List[Optional[Callable]] = [None] * cap
        self.args: List[Any] = [None] * cap
        self._free: List[int] = []
        self._next_slot = 0
        self._cap = cap

        self._next_seq = 0
        self._n_records = 0

        # Calendar tiers: near buffer of (-when, -seq, slot) tuples sorted
        # ascending (minimum at the tail), far tier (unsorted slots), and
        # the sorted numpy spine with its head cursor.
        self._cur: List[Tuple[float, int, int]] = []
        # Far tier: parallel slot/when/seq lists.  when/seq are copied here
        # at push time (C-level extends) so _rebuild never has to gather
        # them back out of the slab with a per-slot Python loop.
        self._far: List[int] = []
        self._far_w: List[float] = []
        self._far_q: List[int] = []
        self._far_min = _INF
        self._sw = _EMPTY_F
        self._sq = _EMPTY_I
        self._ss = _EMPTY_I
        self._head = 0
        self._n_sp = 0

        #: Stack of slot batches currently being dispatched (nested when a
        #: callback drives the engine recursively, e.g. help-until-ready).
        #: Their slots are off the calendar but not yet in the free list;
        #: :meth:`cancel` treats them as already-run.
        self.inflight: List[Sequence[int]] = []
        #: Bumped by :meth:`clear`; a dispatcher holding popped slots must
        #: not release them into a queue that was cleared under it.
        self.epoch = 0

        # Introspection counters (telemetry / tests).
        self.sorts = 0
        self.sorted_events = 0

    # ------------------------------------------------------------------
    # Slab management

    def _grow(self, need: int) -> None:
        cap = self._cap
        while cap < need:
            cap *= 2
        extra = cap - self._cap
        self._when.extend([0.0] * extra)
        self._seq_arr.extend([0] * extra)
        self._kind.extend([_K_FREE] * extra)
        self._gen.extend([0] * extra)
        self.fns.extend([None] * extra)
        self.args.extend([None] * extra)
        self._cap = cap

    def _alloc(self) -> int:
        free = self._free
        if free:
            slot = free.pop()
            self._gen[slot] += 1
            return slot
        slot = self._next_slot
        if slot >= self._cap:
            self._grow(slot + 1)
        self._next_slot = slot + 1
        return slot

    # ------------------------------------------------------------------
    # Push

    def push(self, when: float, fn: Callable, arg: Any = None) -> int:
        """Schedule ``fn`` (or ``fn(arg)``) at ``when``; returns a handle
        usable with :meth:`cancel`."""
        # _alloc inlined: push is the per-event hot path.
        free = self._free
        if free:
            slot = free.pop()
            self._gen[slot] += 1
        else:
            slot = self._next_slot
            if slot >= self._cap:
                self._grow(slot + 1)
            self._next_slot = slot + 1
        seq = self._next_seq
        self._next_seq = seq + 1
        self._when[slot] = when
        self._seq_arr[slot] = seq
        self._kind[slot] = _K_CB
        self.fns[slot] = fn
        self.args[slot] = arg
        self._n_records += 1

        cur = self._cur
        if self._head >= self._n_sp and not self._far:
            # Whole queue lives in the near buffer: timer-chain mode (push
            # one, pop one) — a classic insertion-sorted timer list, no
            # numpy anywhere on the path.
            if len(cur) < self.CUR_LIMIT:
                insort(cur, (-when, -seq, slot))
                return (self._gen[slot] << 32) | slot
        else:
            # Strictly before the next pop candidate: buffer it so the
            # push does not force a far-tier merge.  (Ties go to the far
            # tier — this seq is the global maximum, so the pop-side merge
            # preserves cohort order either way.)
            if self._head < self._n_sp:
                sh = self._sw[self._head]
                if cur:
                    cw = -cur[-1][0]
                    cand = cw if cw < sh else sh
                else:
                    cand = sh
            else:
                cand = -cur[-1][0] if cur else _INF
            fm = self._far_min
            if fm < cand:
                cand = fm
            if when < cand and len(cur) < self.CUR_LIMIT:
                insort(cur, (-when, -seq, slot))
                return (self._gen[slot] << 32) | slot
        self._far.append(slot)
        self._far_w.append(when)
        self._far_q.append(seq)
        if when < self._far_min:
            self._far_min = when
        return (self._gen[slot] << 32) | slot

    def push_batch(
        self,
        whens: Sequence[float],
        fn: Callable,
        args: Sequence[Any],
    ) -> None:
        """Schedule ``fn(args[i])`` at ``whens[i]`` for the whole batch.

        The batch always lands in the far tier: one append per slab column
        (a slice-assign when the slots are contiguous), merged into the
        spine by the first pop that needs it.
        """
        n = len(args)
        if n == 0:
            return
        if isinstance(whens, np.ndarray):
            wmin = float(whens.min())
            whens = whens.tolist()
        else:
            whens = list(whens)
            wmin = min(whens)
        if len(whens) != n:
            raise ValueError(
                f"push_batch: {len(whens)} timestamps for {n} args")
        free = self._free
        nf = len(free)
        seq0 = self._next_seq
        self._next_seq = seq0 + n
        seqs = range(seq0, seq0 + n)
        if nf == 0:
            # Contiguous tail: one slice-assign per slab column.
            base = self._next_slot
            end = base + n
            if end > self._cap:
                self._grow(end)
            self._next_slot = end
            slots: Sequence[int] = range(base, end)
            self._when[base:end] = whens
            self._seq_arr[base:end] = seqs
            self._kind[base:end] = [_K_CB] * n
            self.fns[base:end] = [fn] * n
            self.args[base:end] = args
            self._far.extend(slots)
        else:
            if nf >= n:
                # Recycled slots, taken with one slice (slot order is
                # irrelevant: ordering is carried by when/seq, not by
                # slot identity).
                cut = nf - n
                slots = free[cut:]
                del free[cut:]
                gen_l = self._gen
                arr = np.asarray(slots, dtype=np.int64)
                if (int(arr[-1]) - int(arr[0]) == n - 1
                        and bool((arr[1:] > arr[:-1]).all())):
                    # The freed run of a released wave cohort comes back
                    # contiguous ascending: fill every slab column with one
                    # slice-assign instead of a per-slot loop.
                    s0 = int(arr[0])
                    s1 = s0 + n
                    gen_l[s0:s1] = [g + 1 for g in gen_l[s0:s1]]
                    self._when[s0:s1] = whens
                    self._seq_arr[s0:s1] = seqs
                    self._kind[s0:s1] = [_K_CB] * n
                    self.fns[s0:s1] = [fn] * n
                    self.args[s0:s1] = args
                    self._far.extend(slots)
                    slots = None
                else:
                    for slot in slots:
                        gen_l[slot] += 1
            else:
                slots = [self._alloc() for _ in range(n)]
            if slots is not None:
                when_l, seq_l, kind_l = self._when, self._seq_arr, self._kind
                fn_l, arg_l = self.fns, self.args
                for slot, w, s, a in zip(slots, whens, seqs, args):
                    when_l[slot] = w
                    seq_l[slot] = s
                    kind_l[slot] = _K_CB
                    fn_l[slot] = fn
                    arg_l[slot] = a
                self._far.extend(slots)
        self._far_w.extend(whens)
        self._far_q.extend(seqs)
        if wmin < self._far_min:
            self._far_min = wmin
        self._n_records += n

    # ------------------------------------------------------------------
    # Sort machinery

    def _rebuild(self) -> None:
        """Merge the spine remainder and the far tier into a fresh spine,
        sorted ascending by ``(when, seq)``.

        Only the far *batch* is truly unsorted, so it alone pays a lexsort
        (O(m log m) for the m new records); the spine remainder is already
        in order, and the two sorted runs are combined with one **stable**
        argsort of the concatenated timestamps — numpy's stable kind is
        timsort, whose run detection gallops through two pre-sorted runs in
        ~O(n) instead of re-sorting them.  Without this, workloads that
        interleave pushes and pops (a real all-to-all, unlike the push-all-
        then-drain micro-bench shape) re-sort the whole outstanding queue on
        every merge and go quadratic at scale.

        Tie correctness: a stable sort keeps equal-``when`` spine entries
        (first in the concatenation) ahead of far entries, and that *is*
        seq order — every far record was pushed after the last rebuild, so
        its seq exceeds every spine record's."""
        head = self._head
        fw = np.asarray(self._far_w, dtype=np.float64)
        fq = np.asarray(self._far_q, dtype=np.int64)
        fs = np.asarray(self._far, dtype=np.int64)
        self._far = []
        self._far_w = []
        self._far_q = []
        self._far_min = _INF
        order_f = np.lexsort((fq, fw))
        fw = fw[order_f]
        fq = fq[order_f]
        fs = fs[order_f]
        if head < self._n_sp:
            w2 = np.concatenate((self._sw[head:], fw))
            order = np.argsort(w2, kind="stable")
            self._sw = w2[order]
            self._sq = np.concatenate((self._sq[head:], fq))[order]
            self._ss = np.concatenate((self._ss[head:], fs))[order]
        else:
            self._sw = fw
            self._sq = fq
            self._ss = fs
        self._head = 0
        self._n_sp = len(self._sw)
        self.sorts += 1
        self.sorted_events += self._n_sp

    # ------------------------------------------------------------------
    # Pop / peek / cancel

    def _candidate(self) -> float:
        """Timestamp the next pop would surface (after any needed merge)."""
        cur = self._cur
        if self._head < self._n_sp:
            sh = float(self._sw[self._head])
            cand = -cur[-1][0] if cur and -cur[-1][0] < sh else sh
        elif cur:
            cand = -cur[-1][0]
        else:
            cand = _INF
        fm = self._far_min
        return fm if fm < cand else cand

    def peek_when(self) -> Optional[float]:
        """Timestamp of the next record (live or cancelled), or None."""
        if not self._n_records:
            return None
        return self._candidate()

    def pop(self) -> Tuple[float, Optional[Callable], Any]:
        """Pop the minimum record; returns ``(when, fn, arg)``.  ``fn`` is
        None if the record was cancelled (mirroring the heap engine, which
        also surfaces blanked entries to its consumer)."""
        if not self._n_records:
            raise IndexError("pop from an empty FlatEventQueue")
        cur = self._cur
        head = self._head
        if self._far:
            cand = float(self._sw[head]) if head < self._n_sp else _INF
            if cur and -cur[-1][0] < cand:
                cand = -cur[-1][0]
            if self._far_min <= cand:
                self._rebuild()
                head = 0
        sw = self._sw
        sp_ok = head < self._n_sp
        take_cur = False
        if cur:
            if not sp_ok:
                take_cur = True
            else:
                cw = -cur[-1][0]
                sh = sw[head]
                if cw < sh or (cw == sh and -cur[-1][1] < self._sq[head]):
                    take_cur = True
        if take_cur:
            nw, _ns, slot = cur.pop()
            when = -nw
        else:
            when = float(sw[head])
            slot = int(self._ss[head])
            self._head = head + 1
        fn_l, arg_l = self.fns, self.args
        fn = fn_l[slot]
        arg = arg_l[slot]
        self._kind[slot] = _K_FREE
        fn_l[slot] = None
        arg_l[slot] = None
        self._free.append(slot)
        self._n_records -= 1
        return when, fn, arg

    def pop_batch(self) -> Tuple[float, List[int]]:
        """Pop *all* records sharing the minimum timestamp, in seq (FIFO)
        order, as ``(when, slots)``.

        The caller reads :attr:`fns` / :attr:`args` by slot (skipping
        ``None`` callbacks — cancelled records) and MUST hand the slots
        back via :meth:`release_batch` once dispatched.
        """
        if not self._n_records:
            raise IndexError("pop from an empty FlatEventQueue")
        cur = self._cur
        head = self._head
        if self._far:
            cand = float(self._sw[head]) if head < self._n_sp else _INF
            if cur and -cur[-1][0] < cand:
                cand = -cur[-1][0]
            if self._far_min <= cand:
                self._rebuild()
                head = 0
        sw = self._sw
        n_sp = self._n_sp
        sp_ok = head < n_sp
        if sp_ok and (not cur or sw[head] <= -cur[-1][0]):
            t0 = float(sw[head])
            if cur and -cur[-1][0] == t0:
                return t0, self._pop_merge(t0)
            # Pure spine cohort: one C-level searchsorted + slice, no
            # per-event Python work at all.
            nxt = head + 1
            if nxt == n_sp or sw[nxt] != t0:
                slots: Sequence[int] = [int(self._ss[head])]
                self._head = nxt
            else:
                end = int(np.searchsorted(sw, t0, side="right"))
                seg = self._ss[head:end]
                s0 = int(seg[0])
                if (int(seg[-1]) - s0 == end - head - 1
                        and bool((seg[1:] > seg[:-1]).all())):
                    # Contiguous ascending slots (wave cohorts recycle their
                    # predecessor's slot run verbatim): return a range so the
                    # dispatcher and release can use slice ops per column
                    # instead of per-slot loops.
                    slots = range(s0, s0 + (end - head))
                else:
                    slots = seg.tolist()
                self._head = end
            self._n_records -= len(slots)
            return t0, slots
        if cur:
            nw0 = cur[-1][0]
            t0 = -nw0
            if sp_ok and sw[head] == t0:
                return t0, self._pop_merge(t0)
            out: List[int] = []
            while cur and cur[-1][0] == nw0:
                out.append(cur.pop()[2])
            self._n_records -= len(out)
            return t0, out
        raise IndexError("pop from an empty FlatEventQueue")  # pragma: no cover

    def _pop_merge(self, t0: float) -> List[int]:
        """Drain the ``t0`` cohort from both the near buffer and the spine,
        interleaved by seq (both sources are seq-sorted within a timestamp)."""
        cur = self._cur
        sw, sq, ss = self._sw, self._sq, self._ss
        head = self._head
        n_sp = self._n_sp
        out: List[int] = []
        while True:
            cur_ok = bool(cur) and -cur[-1][0] == t0
            sp_ok = head < n_sp and sw[head] == t0
            if cur_ok and sp_ok:
                if -cur[-1][1] < sq[head]:
                    out.append(cur.pop()[2])
                else:
                    out.append(int(ss[head]))
                    head += 1
            elif sp_ok:
                out.append(int(ss[head]))
                head += 1
            elif cur_ok:
                out.append(cur.pop()[2])
            else:
                break
        self._head = head
        self._n_records -= len(out)
        return out

    def release_batch(self, slots: Sequence[int]) -> None:
        """Recycle the slots of a dispatched :meth:`pop_batch` cohort."""
        kind = self._kind
        fn_l, arg_l = self.fns, self.args
        if type(slots) is range:
            s0, s1 = slots.start, slots.stop
            n = s1 - s0
            kind[s0:s1] = [_K_FREE] * n
            fn_l[s0:s1] = [None] * n
            arg_l[s0:s1] = [None] * n
        else:
            for slot in slots:
                kind[slot] = _K_FREE
                fn_l[slot] = None
                arg_l[slot] = None
        self._free.extend(slots)

    def cancel(self, handle: int) -> bool:
        """Cancel the event behind ``handle``.  Returns True if it was
        still pending; False if it already ran, was already cancelled, or
        the handle is stale (slot recycled into a newer generation).

        Lazy delete: the record keeps its calendar position with a blanked
        callback, exactly like the heap engine's cancelled entries."""
        slot = handle & _SLOT_MASK
        if slot >= self._cap:
            return False
        if (self._kind[slot] != _K_CB or self._gen[slot] != (handle >> 32)
                or self.fns[slot] is None):
            return False
        # An in-flight slot (popped, mid-dispatch, not yet released) still
        # looks live on the slab; it is nonetheless beyond reach, exactly
        # like the objects engine's already-materialized batch.  Rare op,
        # so the O(batch) scan is fine.
        for batch in self.inflight:
            if slot in batch:
                return False
        self.fns[slot] = None
        self.args[slot] = None
        return True

    # ------------------------------------------------------------------
    # Container protocol

    def __len__(self) -> int:
        """Pending records — live *plus* lazily-cancelled, the same count
        ``len()`` of the objects engine's heap reports."""
        return self._n_records

    def __bool__(self) -> bool:
        return self._n_records > 0

    def clear(self) -> None:
        self.epoch += 1
        self.inflight = []
        cap = self._cap
        self._kind = [_K_FREE] * cap
        self.fns = [None] * cap
        self.args = [None] * cap
        self._free = []
        self._next_slot = 0
        self._n_records = 0
        self._cur = []
        self._far = []
        self._far_w = []
        self._far_q = []
        self._far_min = _INF
        self._sw = _EMPTY_F
        self._sq = _EMPTY_I
        self._ss = _EMPTY_I
        self._head = 0
        self._n_sp = 0
