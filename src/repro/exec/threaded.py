"""Real OS-thread executor (single rank).

One persistent thread per worker, exactly the paper's §II-B1 thread pool. The
policy core (deques, pop/steal paths, futures, finish) is shared with the
simulated executor; this engine exists to (a) prove that core is genuinely
thread-safe and (b) run single-rank task-parallel programs with real
concurrency. Performance evaluation happens on :class:`SimExecutor` — under
the CPython GIL, wall-clock scaling here is not meaningful (DESIGN.md §2).

Blocking uses the same help-until-ready strategy: a blocked worker executes
other ready tasks, then parks on a condition variable. A watchdog timeout
(default 30 s wall) converts silent hangs into :class:`DeadlockError` —
the threaded engine cannot *prove* deadlock the way the simulator can.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, List, Optional

from repro.exec.base import Executor
from repro.runtime.context import ExecContext, current_context, scoped_context
from repro.runtime.finish import FinishScope
from repro.runtime.future import Future, Promise
from repro.runtime.runtime import HiperRuntime
from repro.runtime.worker import WorkerState, find_task, has_visible_work
from repro.util.errors import ConfigError, DeadlockError, RuntimeStateError

_PARK_TIMEOUT = 0.002  # seconds; bounds wake latency for missed notifies


class ThreadedExecutor(Executor):
    """One OS thread per worker of a single runtime."""

    mode = "threads"

    def __init__(self, *, block_timeout: float = 30.0, join_timeout: float = 5.0):
        if block_timeout <= 0:
            raise ConfigError("block_timeout must be positive")
        if join_timeout <= 0:
            raise ConfigError("join_timeout must be positive")
        self.block_timeout = block_timeout
        self.join_timeout = join_timeout
        self._runtime: Optional[HiperRuntime] = None
        self._threads: List[threading.Thread] = []
        self._cond = threading.Condition()
        self._stop = False
        self._started = False
        self._shutdown = False
        #: Monotonic count of executed task segments (any worker). The
        #: watchdogs treat a change as proof of liveness, so a run that keeps
        #: completing tasks never trips the deadline however long it takes.
        self._progress = 0
        self._t0 = time.monotonic()
        # timer facility
        self._timers: List = []
        self._timer_seq = itertools.count()
        self._timer_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def register_runtime(self, runtime: HiperRuntime) -> None:
        if self._runtime is not None:
            raise RuntimeStateError(
                "ThreadedExecutor drives exactly one runtime; multi-rank runs "
                "use SimExecutor (see repro.distrib)"
            )
        self._runtime = runtime

    def _ensure_started(self) -> None:
        if self._shutdown:
            # After shutdown() the worker threads are gone; without this
            # check submit_root/call_later would enqueue work nobody can run
            # and hang silently until the watchdog fired.
            raise RuntimeStateError(
                "ThreadedExecutor used after shutdown(); create a fresh "
                "executor for a new run"
            )
        if self._started:
            return
        with self._cond:
            if self._started:
                return
            self._started = True
        assert self._runtime is not None
        for w in self._runtime.workers:
            th = threading.Thread(
                target=self._worker_loop, args=(w,),
                name=f"hiper-worker-{w.wid}", daemon=True,
            )
            self._threads.append(th)
            th.start()
        self._timer_thread = threading.Thread(
            target=self._timer_loop, name="hiper-timer", daemon=True
        )
        self._timer_thread.start()

    def shutdown(self) -> None:
        with self._cond:
            self._stop = True
            self._shutdown = True
            self._cond.notify_all()
        leaked: List[str] = []
        for th in self._threads:
            th.join(timeout=self.join_timeout)
            if th.is_alive():
                leaked.append(th.name)
        if self._timer_thread is not None:
            self._timer_thread.join(timeout=self.join_timeout)
            if self._timer_thread.is_alive():
                leaked.append(self._timer_thread.name)
        self._threads.clear()
        self._timer_thread = None
        if leaked:
            # A worker stuck in a task body survived the stop signal. Fail
            # loudly: a silently-leaked thread keeps mutating runtime state
            # after "shutdown" and poisons everything the caller does next.
            raise RuntimeStateError(
                f"shutdown leaked {len(leaked)} thread(s) still alive after "
                f"{self.join_timeout}s: {', '.join(leaked)} (likely a task "
                "body stuck in non-cooperative blocking)"
            )

    # ------------------------------------------------------------------
    def now(self) -> float:
        return time.monotonic() - self._t0

    def pending_events(self) -> int:
        with self._cond:
            return len(self._timers)

    def charge(self, seconds: float) -> None:
        # Real work takes real time on this engine; cost annotations are
        # accounting-only.
        if seconds < 0:
            raise ConfigError(f"cannot charge negative time {seconds}")
        ctx = current_context()
        if ctx is not None and ctx.runtime is not None and ctx.worker is not None:
            ctx.runtime.stats.worker_activity(ctx.worker.wid, busy=seconds)

    def notify(self, runtime: HiperRuntime, place,
               created_by: Optional[int] = None) -> None:
        # Parked workers recheck has_visible_work (an occupancy-mask test)
        # on wake, so a broadcast is cheap enough; ``created_by`` precision
        # only pays off on the simulated engine's maybe-ready set.
        with self._cond:
            self._cond.notify_all()

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ConfigError(f"call_later delay must be non-negative, got {delay}")
        self._ensure_started()
        with self._cond:
            heapq.heappush(
                self._timers, (self.now() + delay, next(self._timer_seq), fn)
            )
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def _worker_loop(self, worker: WorkerState) -> None:
        rt = self._runtime
        assert rt is not None
        while True:
            task = find_task(worker)
            if task is not None:
                self.execute_task(rt, worker, task)
                continue
            with self._cond:
                if self._stop:
                    return
                if not has_visible_work(worker):
                    self._cond.wait(timeout=_PARK_TIMEOUT)

    def _timer_loop(self) -> None:
        while True:
            fire: List[Callable[[], None]] = []
            with self._cond:
                if self._stop:
                    return
                now = self.now()
                while self._timers and self._timers[0][0] <= now:
                    fire.append(heapq.heappop(self._timers)[2])
                if not fire:
                    delay = (
                        min(self._timers[0][0] - now, 0.01)
                        if self._timers
                        else 0.01
                    )
                    self._cond.wait(timeout=max(delay, 1e-4))
                    continue
            ctx = ExecContext(self)
            with scoped_context(ctx):
                for fn in fire:
                    fn()

    # ------------------------------------------------------------------
    def on_task_start(self, worker, task) -> None:
        # Starting a segment is progress too: in a nested help-until-ready
        # chain (task A waits on B waits on C ...) nothing *completes* until
        # the innermost body returns, but new segments keep starting — a
        # completion-only signal would false-alarm on deep chains.
        # GIL-atomic bump; watchdogs only care that the value *changes*, so a
        # theoretical lost update merely delays one deadline extension.
        self._progress += 1

    def execute_task(self, runtime: HiperRuntime, worker, task) -> None:
        super().execute_task(runtime, worker, task)
        # Completion tick as well: a long-running body that just finished
        # should restart the stall clock before the next quiet stretch.
        self._progress += 1

    def block_until(
        self,
        predicate: Callable[[], bool],
        description: str = "",
        time_source: Optional[Callable[[], float]] = None,
    ) -> None:
        # The watchdog measures *stall* time, not total blocking time: any
        # task completion anywhere in the runtime extends the deadline, so a
        # long but steadily progressing computation (e.g. a chain of slow
        # tasks) never trips it — only a genuine lack of progress does.
        mark = self._progress
        deadline = time.monotonic() + self.block_timeout
        ctx = current_context()
        worker = ctx.worker if ctx is not None else None
        rt = ctx.runtime if ctx is not None else None
        while not predicate():
            if worker is not None and rt is not None:
                task = find_task(worker)
                if task is not None:
                    self.execute_task(rt, worker, task)
                    continue
            with self._cond:
                if not predicate():
                    self._cond.wait(timeout=_PARK_TIMEOUT)
            now_m = time.monotonic()
            seen = self._progress
            if seen != mark:
                mark = seen
                deadline = now_m + self.block_timeout
            elif now_m > deadline:
                raise DeadlockError(
                    f"blocked on {description or 'a condition'} with no task "
                    f"progress for more than {self.block_timeout}s "
                    "(threaded watchdog)"
                )
        if worker is not None and time_source is not None:
            # Mirror the simulated engine (Executor.block_until contract):
            # the blocked worker's clock advances to the satisfaction
            # timestamp, so idle/busy accounting stays comparable across
            # engines. On this engine both sides are wall-clock based.
            worker.advance_clock_to(time_source())

    # ------------------------------------------------------------------
    def submit_root(
        self, runtime: HiperRuntime, fn: Callable[[], Any], *, name: str = "root"
    ) -> Future:
        self._ensure_started()
        scope = FinishScope(name=f"{name}-scope")
        inner = runtime.spawn(
            fn, scope=scope, return_future=True, name=name,
            place=runtime.workers[0].pop_path[0],
        )
        assert inner is not None
        scope.close()
        out = Promise(name=f"{name}-done")

        def _joined(_f) -> None:
            try:
                scope.raise_collected()
                out.put(inner.value())
            except BaseException as exc:  # noqa: BLE001
                out.put_exception(exc)

        scope.all_done_future().on_ready(_joined)
        return out.get_future()

    def run_root(
        self, runtime: HiperRuntime, fn: Callable[[], Any], *, name: str = "root"
    ) -> Any:
        fut = self.submit_root(runtime, fn, name=name)
        done = threading.Event()
        fut.on_ready(lambda _f: done.set())
        # Progress-extending watchdog: wait in slices and restart the stall
        # deadline whenever workers completed tasks since the last check.
        mark = self._progress
        deadline = time.monotonic() + self.block_timeout
        while not done.wait(timeout=0.05):
            now_m = time.monotonic()
            seen = self._progress
            if seen != mark:
                mark = seen
                deadline = now_m + self.block_timeout
            elif now_m > deadline:
                raise DeadlockError(
                    f"root task {name!r} made no progress for "
                    f"{self.block_timeout}s (threaded watchdog)"
                )
        return fut.value()

    def makespan(self) -> float:
        return self.now()

    def __repr__(self) -> str:
        return f"ThreadedExecutor(workers={len(self._threads)}, started={self._started})"
