"""Executor interface: what drives workers.

The scheduling *policy* (deques, paths, finish, futures) is engine-agnostic;
an :class:`Executor` supplies the *mechanism*: how workers loop, how time
advances, how blocked tasks keep their worker useful, and how timers fire.

Two implementations ship:

- :class:`repro.exec.sim.SimExecutor` — deterministic virtual-time
  discrete-event engine; the vehicle for all performance evaluation (the
  paper ran on Cray hardware; under the CPython GIL only virtual time gives
  meaningful scheduling measurements — see DESIGN.md §2).
- :class:`repro.exec.threaded.ThreadedExecutor` — one OS thread per worker;
  validates that the policy core is thread-safe and provides real
  concurrency for single-rank usage.
"""

from __future__ import annotations

import abc
import threading
from types import GeneratorType
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.runtime.context import ExecContext, _tls
from repro.runtime.future import Future
from repro.runtime.task import Task, TaskState
from repro.util.errors import HiperError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.place import Place
    from repro.runtime.runtime import HiperRuntime
    from repro.runtime.worker import WorkerState

#: Counter key for the per-completion tally (built once, not per task).
_COMPLETED_KEY = ("core", "tasks_completed")


class Executor(abc.ABC):
    """Engine contract shared by the simulated and threaded executors."""

    #: "sim" or "threads"; modules may branch on this (e.g. poll intervals).
    mode: str = "abstract"

    #: Lock class protecting engine-adjacent shared state (deque slots,
    #: occupancy indexes, polling services). The single-threaded simulated
    #: executor overrides this with :class:`repro.runtime.deques.NullLock`,
    #: eliding all lock traffic from the scheduling hot path.
    lock_class: type = threading.Lock

    #: Whether the runtime must call :meth:`notify` on *every* enqueue, or
    #: only when a deque slot flips from empty to non-empty. Engines with
    #: exact occupancy tracking and no parking races (the simulated executor)
    #: set this False: while a slot stays occupied, every worker that could
    #: take from it is provably still maybe-ready.
    notify_on_every_push: bool = True

    #: Optional :class:`repro.tools.TraceRecorder`; set via attach_tracer.
    tracer = None

    #: Optional fault-injection hook (``repro.resilience``): called with the
    #: task before its body first runs; raising fails the task through the
    #: normal ``_fail`` path. None in production — one attribute load + None
    #: test per fresh task is the entire no-fault cost.
    task_fault_hook = None

    #: Optional :class:`repro.runtime.task.TaskSlab` recycling Task records.
    #: Set (per instance) by the simulated executor's flat engine; when
    #: non-None, ``HiperRuntime.spawn`` acquires records from the slab and
    #: the engine releases provably-finished ones back to it. One attribute
    #: load + None test per spawn is the entire cost elsewhere.
    task_slab = None

    def attach_tracer(self, tracer) -> None:
        """Record every executed task segment into ``tracer`` (paper §V
        tooling: the unified scheduler sees all work, so one hook covers
        every module)."""
        self.tracer = tracer

    def pending_events(self) -> int:
        """Pending engine events/timers (telemetry: event-queue depth)."""
        return 0

    # -- lifecycle ----------------------------------------------------------
    @abc.abstractmethod
    def register_runtime(self, runtime: "HiperRuntime") -> None:
        """Attach one runtime (one rank) to this executor."""

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Stop workers and release resources. Idempotent."""

    # -- time ------------------------------------------------------------
    @abc.abstractmethod
    def now(self) -> float:
        """Current time: the running worker's virtual clock (sim) or wall
        time since executor start (threads)."""

    @abc.abstractmethod
    def charge(self, seconds: float) -> None:
        """Account ``seconds`` of simulated compute to the current worker.

        No-op on the threaded executor (real work takes real time there).
        Must be called from inside a task.
        """

    # -- scheduling hooks -------------------------------------------------
    @abc.abstractmethod
    def notify(self, runtime: "HiperRuntime", place: "Place",
               created_by: Optional[int] = None) -> None:
        """A task became ready at ``place``; wake candidate workers.

        ``created_by`` (the spawning worker id, when known) lets engines wake
        precisely: only worker ``created_by`` can *pop* the task, and only
        workers with ``place`` on their steal path can *steal* it."""

    @abc.abstractmethod
    def block_until(
        self,
        predicate: Callable[[], bool],
        description: str = "",
        time_source: Optional[Callable[[], float]] = None,
    ) -> None:
        """Block the *current task* until ``predicate()`` is true without
        idling its worker (help-until-ready). ``time_source``, if given,
        reports the timestamp at which the condition became true; engines
        MUST advance the blocked worker's clock to it on return
        (``worker.advance_clock_to(time_source())``), so blocked-time
        accounting stays comparable across engines. On the simulated engine
        the timestamp is virtual; on the threaded engine both the worker
        clock and the timestamp are wall-seconds since executor start.
        """

    @abc.abstractmethod
    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` (virtual or wall) seconds, outside any
        task context. Used by polling services and timeout modelling."""

    @abc.abstractmethod
    def run_root(self, runtime: "HiperRuntime", fn: Callable[[], Any], *,
                 name: str = "root") -> Any:
        """Spawn ``fn`` as a root task on ``runtime``, drive the engine until
        it (and everything it transitively spawned) completes, and return its
        value. This is the external entry point used by ``HiperRuntime.run``."""

    # -- shared task-execution machinery ------------------------------------
    def execute_task(self, runtime: "HiperRuntime", worker: "WorkerState",
                     task: Task) -> None:
        """Run one task (or one segment of a coroutine task) on ``worker``.

        Shared by both executors; engine-specific accounting happens in the
        :meth:`on_task_start` hook.
        """
        # Context push/pop inlined (vs scoped_context): this wraps every task
        # segment, and the thread-local stack access must happen per call (the
        # threaded engine has one stack per OS thread).
        stack = _tls.stack
        stack.append(ExecContext(self, runtime, worker, task))
        tracer = self.tracer
        try:
            t0 = self.now() if tracer is not None else 0.0
            self.on_task_start(worker, task)
            worker.tasks_run += 1
            try:
                if task.gen is None:
                    fault_hook = self.task_fault_hook
                    if fault_hook is not None:
                        fault_hook(task)
                    result = task.start_body()
                    if type(result) is GeneratorType:
                        task.gen = result
                        self._drive_coroutine(runtime, task)
                    else:
                        self._complete(runtime, task, result)
                else:
                    self._drive_coroutine(runtime, task)
            except BaseException as exc:  # noqa: BLE001 - boundary by design
                self._fail(runtime, task, exc)
            finally:
                if tracer is not None:
                    t1 = self.now()
                    tracer.record(task.rank, worker.wid, task.module,
                                  task.name, t0, t1,
                                  task_id=task.task_id)
                    runtime.stats.time(task.module, "task", t1 - t0)
        finally:
            stack.pop()

    def _drive_coroutine(self, runtime: "HiperRuntime", task: Task) -> None:
        while True:
            finished, payload = task.step()
            if finished:
                self._complete(runtime, task, payload)
                return
            if payload is None:
                # Cooperative yield: go to the back of the line.
                task.state = TaskState.READY
                runtime.reenqueue(task)
                return
            if isinstance(payload, Future):
                if payload.satisfied:
                    task.prepare_resume(payload)
                    continue
                task.state = TaskState.SUSPENDED
                runtime.stats.count("core", "suspend")
                payload.on_ready(_make_resumer(runtime, task))
                return
            raise HiperError(
                f"coroutine task {task.name!r} yielded {type(payload).__name__}; "
                "only Future or None may be yielded"
            )

    def _complete(self, runtime: "HiperRuntime", task: Task, result: Any) -> None:
        task.state = TaskState.DONE
        if task.result_promise is not None:
            task.result_promise.put(result)
        if task.scope is not None:
            task.scope.task_completed(None)
        counters = runtime._counters
        if counters is not None:
            counters[_COMPLETED_KEY] += 1
        ep = task.epilogue
        if ep is not None:
            ep(task, None)

    def _fail(self, runtime: "HiperRuntime", task: Task, exc: BaseException) -> None:
        task.state = TaskState.FAILED
        runtime.stats.count("core", "tasks_failed")
        if task.result_promise is not None:
            # The consumer of the future owns the failure.
            task.result_promise.put_exception(exc)
            if task.scope is not None:
                task.scope.task_completed(None)
        elif task.scope is not None:
            task.scope.task_completed(exc)
        else:  # pragma: no cover - root tasks always have a scope
            raise exc
        ep = task.epilogue
        if ep is not None:
            ep(task, exc)

    # -- engine-specific accounting hook -----------------------------------
    def on_task_start(self, worker: "WorkerState", task: Task) -> None:
        """Called just before a task body/segment runs (override to charge
        task cost, advance clocks, record stats)."""


def _make_resumer(runtime: "HiperRuntime", task: Task):
    def _resume(fut: Future) -> None:
        task.prepare_resume(fut)
        task.state = TaskState.READY
        runtime.stats.count("core", "resume")
        runtime.reenqueue(task)

    return _resume
