"""Execution engines: virtual-time simulation, OS threads, OS processes."""

from repro.exec.base import Executor
from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor
from repro.exec.procs import (
    ProcessExecutor,
    ProcsJob,
    ProcsResult,
    procs_child_main,
    procs_run,
)

__all__ = [
    "Executor",
    "SimExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "ProcsJob",
    "ProcsResult",
    "procs_child_main",
    "procs_run",
]
