"""Execution engines: virtual-time simulation and real OS threads."""

from repro.exec.base import Executor
from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor

__all__ = ["Executor", "SimExecutor", "ThreadedExecutor"]
