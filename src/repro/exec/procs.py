"""Multiprocess SPMD backend: one OS process per rank, real parallelism.

This is the reproduction's third execution backend, alongside the
deterministic simulator (``repro.exec.sim`` + ``repro.distrib.spmd_run``)
and the single-process thread pool (``repro.exec.threaded``):

- each rank runs a full :class:`~repro.runtime.runtime.HiperRuntime` on a
  :class:`~repro.exec.threaded.ThreadedExecutor` in its own process (no GIL
  sharing between ranks — wall-clock speedup is real);
- ranks talk over a :class:`~repro.net.procfabric.ProcFabric` socket mesh
  that implements the SimFabric surface, so the whole protocol stack
  (FabricMux channels, SHMEM, MPI collectives, coalescing, buffer pools)
  carries over unchanged;
- each rank's symmetric heap lives in a ``multiprocessing.shared_memory``
  segment (:class:`~repro.shmem.shared.SharedArena`);
- process startup is delegated to a pluggable :mod:`repro.launch` launcher
  (``local`` fork/spawn, ``subprocess`` command lines, batch-system stubs).

The parent-side :class:`ProcessExecutor` mirrors the threaded engine's
lifecycle discipline: a run that leaves orphaned children or leaked shared
memory behind raises :class:`~repro.util.errors.RuntimeStateError` instead
of silently stranding resources.

Jobs are described by a :class:`ProcsJob`. Because rank mains must exist in
other processes, apps are named by *factory*: either a dotted path
``"pkg.mod:factory"`` (required for spawn/subprocess launchers) or a direct
callable (fork launcher only). The factory is called with the job's args in
the child and must return the ``main(ctx)`` to run.
"""

from __future__ import annotations

import dataclasses
import importlib
import os
import pickle
import shutil
import tempfile
import time
import traceback
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.util.errors import ConfigError, RuntimeStateError

#: Name -> dotted path of the standard module factories (child-resolvable).
_MODULE_FACTORIES: Dict[str, str] = {
    "shmem": "repro.shmem:shmem_factory",
    "mpi": "repro.mpi:mpi_factory",
    "cuda": "repro.cuda:cuda_factory",
    "upcxx": "repro.upcxx:upcxx_factory",
}

_POLL = 0.02  # parent poll interval, seconds

#: How long a finished rank keeps its fabric endpoint alive waiting for the
#: parent's all-done signal before tearing down anyway (a safety valve; the
#: parent normally signals within one poll interval of the last result).
_TEARDOWN_WAIT = 60.0


def resolve_dotted(path: str) -> Any:
    """``"pkg.mod:attr"`` -> the attribute."""
    mod_name, sep, attr = path.partition(":")
    if not sep:
        raise ConfigError(
            f"dotted factory path must look like 'pkg.mod:attr', got {path!r}")
    mod = importlib.import_module(mod_name)
    try:
        return getattr(mod, attr)
    except AttributeError:
        raise ConfigError(f"{mod_name!r} has no attribute {attr!r}") from None


@dataclasses.dataclass
class ProcsJob:
    """Everything a child process needs to run one rank."""

    run_id: str
    rundir: str                      # rendezvous: sockets, results, job.pkl
    nranks: int
    factory: Union[str, Callable]    # dotted path, or callable (fork only)
    args: Tuple = ()
    kwargs: Optional[Dict[str, Any]] = None
    #: (module name or dotted factory-factory path, kwargs) per module.
    modules: Sequence = (("shmem", {}),)
    machine: str = "workstation"
    workers_per_rank: int = 1
    heap_bytes: int = 1 << 26
    seed: int = 0
    block_timeout: float = 60.0
    connect_timeout: float = 30.0

    def resolve_factory(self) -> Callable:
        if callable(self.factory):
            return self.factory
        return resolve_dotted(self.factory)

    def resolve_modules(self) -> List[Callable]:
        out = []
        for spec in self.modules:
            if callable(spec):
                out.append(spec)
                continue
            name, kwargs = spec
            path = _MODULE_FACTORIES.get(name, name)
            out.append(resolve_dotted(path)(**(kwargs or {})))
        return out


@dataclasses.dataclass
class ProcsResult:
    """Outcome of one multiprocess SPMD run."""

    results: List[Any]
    wall_time: float
    run_id: str
    launcher: str
    #: Merged per-rank stats counters: "module.op" -> count.
    counters: Dict[str, int]

    @property
    def nranks(self) -> int:
        return len(self.results)


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------
def _result_path(rundir: str, rank: int) -> str:
    return os.path.join(rundir, f"result-{rank}.pkl")


def _write_result(rundir: str, rank: int, status: Tuple) -> None:
    tmp = _result_path(rundir, rank) + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(status, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, _result_path(rundir, rank))  # atomic publish


def _ready_rendezvous(job: ProcsJob, rank: int) -> None:
    """Block until every rank has written its ready marker."""
    with open(os.path.join(job.rundir, f"ready-{rank}"), "w") as fh:
        fh.write("ready\n")
    deadline = time.monotonic() + job.connect_timeout
    waiting = set(range(job.nranks))
    while waiting:
        waiting = {r for r in waiting if not os.path.exists(
            os.path.join(job.rundir, f"ready-{r}"))}
        if not waiting:
            return
        if time.monotonic() > deadline:
            raise ConfigError(
                f"rank {rank}: peers {sorted(waiting)} never reached the "
                f"startup rendezvous within {job.connect_timeout}s")
        time.sleep(_POLL)


def procs_child_main(job: ProcsJob, rank: int) -> int:
    """Entry point of one rank process (launchers target this).

    Builds the rank's runtime + fabric + shared heap, runs the main, writes
    the pickled result, holds the fabric open until every rank has finished
    (peers may still target this PE's symmetric heap), then tears down.
    Returns the process exit code.
    """
    from repro.distrib.spmd import ClusterConfig, RankContext, _bind_main
    from repro.exec.threaded import ThreadedExecutor
    from repro.net.procfabric import ProcFabric
    from repro.platform.hwloc import discover, machine
    from repro.runtime.runtime import HiperRuntime
    from repro.shmem.shared import SharedArena, segment_name

    ex = None
    fabric = None
    arena = None
    rt = None
    ctx = None
    status: Tuple = ("error", rank, "InternalError", "child never ran", "")
    ok = False
    try:
        main_fn = job.resolve_factory()(*job.args, **(job.kwargs or {}))
        ex = ThreadedExecutor(block_timeout=job.block_timeout)
        fabric = ProcFabric(ex, job.nranks, rank, job.rundir,
                            connect_timeout=job.connect_timeout)
        fabric.start()
        arena = SharedArena(segment_name(job.run_id, rank), job.heap_bytes)
        spec = machine(job.machine)
        model = discover(spec, num_workers=job.workers_per_rank,
                         detail="flat")
        model.name = f"{model.name}-r{rank}"
        rt = HiperRuntime(model, ex, rank=rank, nranks=job.nranks,
                          seed=job.seed)
        config = ClusterConfig(nodes=job.nranks, ranks_per_node=1,
                               workers_per_rank=job.workers_per_rank,
                               machine=spec)
        ctx = RankContext(rank, job.nranks, rt, fabric, config,
                          shared={"shmem-arena": arena})
        mods = [factory(ctx) for factory in job.resolve_modules()]
        rt.start(mods)
        # Startup rendezvous: no rank may enter its main (and start sending)
        # until every rank has finished module init — a message landing on a
        # peer whose channels aren't registered yet would kill its reader
        # thread. File-based on purpose: the fabric isn't safely usable yet,
        # which is exactly what this barrier establishes.
        _ready_rendezvous(job, rank)
        result = ex.run_root(rt, _bind_main(main_fn, ctx),
                             name=f"rank{rank}-main")
        counters = {f"{m}.{op}": int(v)
                    for (m, op), v in rt.stats.counters.items()}
        status = ("ok", result, counters)
        ok = True
    except BaseException as exc:  # noqa: BLE001 - serialized to the parent
        status = ("error", rank, type(exc).__name__, str(exc),
                  traceback.format_exc())
    try:
        _write_result(job.rundir, rank, status)
    except OSError:
        ok = False
    # Serve peers until the whole job is done: another rank's main may still
    # put/get against this PE. The parent publishes `alldone` once every
    # rank's result landed (or the run is being torn down on error).
    alldone = os.path.join(job.rundir, "alldone")
    deadline = time.monotonic() + _TEARDOWN_WAIT
    while not os.path.exists(alldone) and time.monotonic() < deadline:
        time.sleep(_POLL)
    for step in (
        (lambda: rt.shutdown()) if rt is not None else None,
        (lambda: ctx._mux.close()) if ctx is not None and ctx._mux else None,
        (lambda: fabric.close()) if fabric is not None else None,
        (lambda: ex.shutdown()) if ex is not None else None,
        (lambda: arena.destroy()) if arena is not None else None,
    ):
        if step is None:
            continue
        try:
            step()
        except BaseException as exc:  # noqa: BLE001 - teardown best-effort
            if ok:
                _write_result(job.rundir, rank, (
                    "error", rank, type(exc).__name__,
                    f"teardown failed: {exc}", traceback.format_exc()))
                ok = False
    return 0 if ok else 1


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ProcessExecutor:
    """Parent-side orchestrator of a multiprocess SPMD run.

    Not a task engine (the engine inside each rank is a
    :class:`ThreadedExecutor`); this owns process lifecycle: rendezvous
    directory, launcher dispatch, result collection, straggler termination,
    and the no-orphans / no-leaked-shared-memory shutdown discipline.
    """

    mode = "procs"

    def __init__(
        self,
        nranks: int,
        *,
        launcher: str = "local",
        workers_per_rank: int = 1,
        machine: str = "workstation",
        heap_bytes: int = 1 << 26,
        timeout: float = 300.0,
        block_timeout: float = 60.0,
        seed: int = 0,
        join_timeout: float = 5.0,
    ):
        if nranks < 1:
            raise ConfigError(f"nranks must be >= 1, got {nranks}")
        if timeout <= 0 or block_timeout <= 0:
            raise ConfigError("timeouts must be positive")
        self.nranks = nranks
        self.launcher_name = launcher
        self.workers_per_rank = workers_per_rank
        self.machine = machine
        self.heap_bytes = heap_bytes
        self.timeout = timeout
        self.block_timeout = block_timeout
        self.seed = seed
        self.join_timeout = join_timeout
        self._handles: List = []
        self._rundir: Optional[str] = None
        self._run_id: Optional[str] = None
        self._shutdown = False

    # ------------------------------------------------------------------
    def run(
        self,
        factory: Union[str, Callable],
        args: Tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        modules: Sequence = (("shmem", {}),),
    ) -> ProcsResult:
        """Launch ``nranks`` rank processes and collect their results."""
        from repro.launch import get_launcher
        from repro.shmem.shared import cleanup_segments

        if self._shutdown:
            raise RuntimeStateError(
                "ProcessExecutor used after shutdown(); create a fresh one")
        if self._handles:
            raise RuntimeStateError("a run is already in flight")
        launcher = get_launcher(self.launcher_name)
        run_id = uuid.uuid4().hex[:12]
        rundir = tempfile.mkdtemp(prefix=f"repro-procs-{run_id}-")
        job = ProcsJob(
            run_id=run_id, rundir=rundir, nranks=self.nranks,
            factory=factory, args=tuple(args), kwargs=dict(kwargs or {}),
            modules=tuple(modules), machine=self.machine,
            workers_per_rank=self.workers_per_rank,
            heap_bytes=self.heap_bytes, seed=self.seed,
            block_timeout=self.block_timeout,
        )
        self._rundir, self._run_id = rundir, run_id
        t0 = time.perf_counter()
        try:
            self._handles = [launcher.launch(job, rank)
                             for rank in range(self.nranks)]
            statuses = self._collect(rundir)
        finally:
            # Signal finished ranks to tear down, reap everything, and only
            # then sweep for leaks (children unlink their own segments on a
            # clean exit; the sweep catches killed/crashed ones).
            self._touch_alldone(rundir)
            self._reap()
            cleanup_segments(run_id, self.nranks)
            shutil.rmtree(rundir, ignore_errors=True)
            self._rundir = self._run_id = None
        wall = time.perf_counter() - t0

        results: List[Any] = []
        counters: Dict[str, int] = {}
        errors: List[Tuple[int, str, str, str]] = []
        for rank, status in enumerate(statuses):
            if status is None:
                errors.append((rank, "ProcessDied",
                               "rank exited without writing a result", ""))
                results.append(None)
            elif status[0] == "ok":
                results.append(status[1])
                for key, v in status[2].items():
                    counters[key] = counters.get(key, 0) + v
            else:
                _, erank, ename, emsg, etb = status
                errors.append((erank, ename, emsg, etb))
                results.append(None)
        if errors:
            # Surface the root cause, not a stranded peer's watchdog stall.
            errors.sort(key=lambda e: e[1] == "DeadlockError")
            rank, ename, emsg, etb = errors[0]
            detail = f"\n--- rank {rank} traceback ---\n{etb}" if etb else ""
            raise ConfigError(
                f"{len(errors)} rank(s) failed; first failure on rank "
                f"{rank}: {ename}: {emsg}{detail}"
            )
        return ProcsResult(results=results, wall_time=wall, run_id=run_id,
                           launcher=self.launcher_name, counters=counters)

    # ------------------------------------------------------------------
    def _collect(self, rundir: str) -> List[Optional[Tuple]]:
        """Wait until every rank has a result file or exited; timeout kills
        stragglers and raises."""
        deadline = time.monotonic() + self.timeout
        statuses: List[Optional[Tuple]] = [None] * self.nranks
        have = [False] * self.nranks
        while True:
            for rank in range(self.nranks):
                if have[rank]:
                    continue
                path = _result_path(rundir, rank)
                if os.path.exists(path):
                    with open(path, "rb") as fh:
                        statuses[rank] = pickle.load(fh)
                    have[rank] = True
            if all(have):
                return statuses
            # A dead child without a result file never will produce one.
            pending_dead = [
                rank for rank in range(self.nranks)
                if not have[rank] and self._handles[rank].poll() is not None
            ]
            if pending_dead:
                # One more sweep: the file may have landed between checks.
                for rank in pending_dead:
                    path = _result_path(rundir, rank)
                    if os.path.exists(path):
                        with open(path, "rb") as fh:
                            statuses[rank] = pickle.load(fh)
                        have[rank] = True
                if any(not have[rank] for rank in pending_dead):
                    return statuses
            if time.monotonic() > deadline:
                stragglers = [h.rank for h in self._handles if h.alive]
                self._terminate_all()
                raise RuntimeStateError(
                    f"multiprocess run timed out after {self.timeout}s; "
                    f"terminated straggler rank(s) {stragglers} "
                    "(likely a rank stalled at a barrier after a peer "
                    "failure, or the workload outgrew the timeout)"
                )
            time.sleep(_POLL)

    def _touch_alldone(self, rundir: str) -> None:
        try:
            with open(os.path.join(rundir, "alldone"), "w") as fh:
                fh.write("done\n")
        except OSError:
            pass

    def _terminate_all(self) -> None:
        for h in self._handles:
            try:
                h.terminate()
            except OSError:
                pass

    def _reap(self) -> None:
        """Join every child; escalate terminate -> kill; raise on orphans."""
        deadline = time.monotonic() + self.timeout
        while any(h.alive for h in self._handles):
            if time.monotonic() > deadline:
                break
            time.sleep(_POLL)
        survivors = [h for h in self._handles if h.alive]
        for h in survivors:
            h.terminate()
        if survivors:
            t_end = time.monotonic() + self.join_timeout
            while any(h.alive for h in survivors) and time.monotonic() < t_end:
                time.sleep(_POLL)
            for h in survivors:
                if h.alive:
                    h.kill()
            t_end = time.monotonic() + self.join_timeout
            while any(h.alive for h in survivors) and time.monotonic() < t_end:
                time.sleep(_POLL)
        leaked = [h for h in self._handles if h.alive]
        self._handles = []
        if leaked:
            raise RuntimeStateError(
                f"shutdown leaked {len(leaked)} child process(es) still "
                f"alive after kill: pids "
                f"{[h.pid for h in leaked]} (mirrors the threaded engine's "
                "leaked-thread discipline)"
            )

    def shutdown(self) -> None:
        """Idempotent; terminates any in-flight children and sweeps leaks."""
        if self._shutdown:
            return
        self._shutdown = True
        rundir, run_id = self._rundir, self._run_id
        if self._handles:
            if rundir:
                self._touch_alldone(rundir)
            self._terminate_all()
            self._reap()
        if run_id:
            from repro.shmem.shared import cleanup_segments

            cleanup_segments(run_id, self.nranks)
        if rundir:
            shutil.rmtree(rundir, ignore_errors=True)
        self._rundir = self._run_id = None

    def __repr__(self) -> str:
        return (f"ProcessExecutor(nranks={self.nranks}, "
                f"launcher={self.launcher_name!r})")


def procs_run(
    factory: Union[str, Callable],
    args: Tuple = (),
    kwargs: Optional[Dict[str, Any]] = None,
    *,
    nranks: int = 4,
    modules: Sequence = (("shmem", {}),),
    **executor_kwargs,
) -> ProcsResult:
    """One-shot multiprocess SPMD run (the ``spmd_run`` of this backend)."""
    ex = ProcessExecutor(nranks, **executor_kwargs)
    try:
        return ex.run(factory, args, kwargs, modules=modules)
    finally:
        ex.shutdown()
