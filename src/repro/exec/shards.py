"""Sharded parallel DES: one flat sub-simulator per shard, synchronized by
conservative time windows (ROADMAP item 4's "one sub-simulator per rank with
conservative time windows", generalized to N shards).

``SimExecutor(engine="flat", shards=N)`` partitions an SPMD run's ranks
across N OS processes. Each shard runs its own :class:`FlatEventQueue` +
``TaskSlab`` over its slice of the cluster (a contiguous, *node-aligned*
rank range — see :class:`ShardPlan`), and the shards advance in lockstep
windows:

1. each shard drains every task and event with virtual time strictly below
   the current horizon ``H``, parking cross-shard sends (priced on the send
   side) in per-destination-shard outboxes;
2. at the barrier, each shard reports ``(next local activation, done?,
   outboxes)`` to the coordinator (the parent process) over a socketpair
   speaking :mod:`repro.net.procfabric` framing;
3. the coordinator routes the outboxes, computes ``N_min`` — the minimum
   over every shard's next activation and every in-flight message's arrival
   time — and replies with the next horizon ``H' = N_min + lookahead`` plus
   each shard's inbox, which the shard injects in a deterministic
   ``(arrival, src, seq)`` total order.

**Safety.** ``lookahead`` (:meth:`NetworkModel.lookahead`) is the minimum
wire time between distinct nodes: two NIC serializations plus the wire
latency (plus the topology's minimum extra hop latency). Every action
executed during a round happens at virtual time ``t >= N_min`` (nothing
earlier exists anywhere), so any message it sends arrives no earlier than
``N_min + inj_overhead + latency`` and is *delivered* no earlier than
``N_min + lookahead = H'``. Deferring cross-shard injection to the barrier
therefore never delivers a message into its own past; and because every
enqueue happens from an action below ``H``, every queued task's release
time is below ``H`` too — the bounded step loop needs no release guard.

**Determinism.** Within a shard the engine is the unmodified flat engine.
Across shards, inboxes are injected in ``(arrival, src, seq)`` order —
identical on every replay — and the receiver-side cost recurrences (NIC
availability, pairwise FIFO) run in that order. Per-rank *results* are
therefore deterministic and equal to the single-shard run's (gated by the
sharded<->flat differential); per-rank virtual *times* can differ from the
single-shard schedule, because receiver-NIC contention is resolved against
shard-local send interleavings (the same caveat the real-multiprocess procs
backend documents). ``shards=1`` never reaches this module at all.
"""

from __future__ import annotations

import bisect
import dataclasses
import heapq
import math
import socket
import sys
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.sim import SimExecutor
from repro.net.procfabric import recv_frame, send_frame
from repro.net.shardfabric import ShardFabric
from repro.runtime.worker import find_task
from repro.util.errors import (
    ConfigError,
    DeadlockError,
    PlaceFailure,
    RuntimeStateError,
)
from repro.util.stats import RuntimeStats


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Node-aligned partition of ``nranks`` ranks into ``nshards`` slices.

    Shards own whole nodes: cross-shard traffic is then always inter-node,
    so the cost model's lookahead bound applies to every message a shard
    cannot deliver itself (same-node and self sends never cross a shard).
    """

    nranks: int
    nshards: int
    ranks_per_node: int
    #: Per-shard contiguous rank range ``[lo, hi)``.
    bounds: Tuple[Tuple[int, int], ...]

    @classmethod
    def build(cls, nranks: int, nshards: int,
              ranks_per_node: int = 1) -> "ShardPlan":
        if nshards < 1:
            raise ConfigError(f"shards must be >= 1, got {nshards}")
        nnodes = (nranks + ranks_per_node - 1) // ranks_per_node
        if nshards > nnodes:
            raise ConfigError(
                f"cannot split {nnodes} node(s) across {nshards} shards; "
                "shards partition whole nodes (use fewer shards or more "
                "nodes)")
        q, r = divmod(nnodes, nshards)
        bounds = []
        node = 0
        for k in range(nshards):
            take = q + (1 if k < r else 0)
            lo = node * ranks_per_node
            node += take
            hi = min(node * ranks_per_node, nranks)
            bounds.append((lo, hi))
        return cls(nranks, nshards, ranks_per_node, tuple(bounds))

    def shard_of(self, rank: int) -> int:
        if not (0 <= rank < self.nranks):
            raise ConfigError(
                f"rank {rank} out of range [0, {self.nranks})")
        starts = [lo for lo, _ in self.bounds]
        return bisect.bisect_right(starts, rank) - 1


class _ShardSimExecutor(SimExecutor):
    """Flat engine bounded by a horizon, with a window hook at quiescence.

    ``_step`` first drains work strictly below ``_horizon``; when the slice
    is dry it invokes ``_window_hook`` (the barrier exchange). The hook
    returns True after advancing the horizon (keep stepping) or False when
    the run is finished or globally stalled. Because the exchange happens
    *inside* ``_step``, help-until-ready blocking (``block_until``) crosses
    window boundaries without any change."""

    def __init__(self, *, trace: bool = False, task_overhead: float = 0.0):
        super().__init__(trace=trace, task_overhead=task_overhead,
                         selection="heap", engine="flat")
        self._horizon = 0.0
        self._window_hook: Optional[Callable[[], bool]] = None

    def next_activation(self) -> float:
        """Earliest virtual time this shard could act at, or +inf.

        Probes the ready heap (normalizing lazily-deleted and stale-clock
        entries, exactly as ``_step`` would) and the event queue. May be
        conservatively low — a maybe-ready worker can turn out to have no
        task — which costs at most an extra window, never correctness."""
        ready, heap = self._maybe_ready, self._ready_heap
        t = math.inf
        while heap:
            clock, _rank, _wid, _seq, worker = heap[0]
            if worker not in ready:
                heapq.heappop(heap)
                continue
            if clock != worker.clock:
                heapq.heapreplace(
                    heap, (worker.clock, worker.rank, worker.wid,
                           next(self._wake_seq), worker))
                continue
            t = clock
            break
        when = self._events.peek_when()
        if when is not None and when < t:
            t = when
        return t

    def _step_bounded(self) -> bool:
        """One task or event batch strictly below the horizon; False when
        the sub-horizon slice is drained."""
        horizon = self._horizon
        ready, heap = self._maybe_ready, self._ready_heap
        while ready:
            clock, _rank, _wid, _seq, worker = heap[0]
            if worker not in ready:
                heapq.heappop(heap)
                continue
            if clock != worker.clock:
                heapq.heapreplace(
                    heap, (worker.clock, worker.rank, worker.wid,
                           next(self._wake_seq), worker))
                continue
            if clock >= horizon:
                break
            task = find_task(worker)
            if task is None:
                ready.discard(worker)
                heapq.heappop(heap)
                continue
            self._run_task(worker, task)
            return True
        when = self._events.peek_when()
        if when is not None and when < horizon:
            self._advance_events()
            return True
        return False

    def _step(self) -> bool:
        while True:
            if self._step_bounded():
                return True
            hook = self._window_hook
            if hook is None or not hook():
                return False


@dataclasses.dataclass
class ShardedSpmdResult:
    """Outcome of a sharded SPMD run (the cross-process analogue of
    :class:`repro.distrib.spmd.SpmdResult`)."""

    results: List[Any]
    makespan: float
    nshards: int
    plan: ShardPlan
    #: Merged ``"module.op"`` counters from every rank, plus the sharding
    #: layer's own: ``shards.windows``, ``shards.cross_shard_msgs``,
    #: ``shards.cross_shard_bytes``.
    counters: Dict[str, int]
    #: Per-shard telemetry: windows, cross_shard_msgs, cross_shard_bytes,
    #: idle_wall_s (wall time blocked at window barriers), events_processed.
    shard_counters: List[Dict[str, Any]]
    windows: int

    @property
    def nranks(self) -> int:
        return len(self.results)

    def merged_stats(self) -> RuntimeStats:
        out = RuntimeStats()
        for key, n in self.counters.items():
            module, _, op = key.partition(".")
            out.count(module, op, n)
        return out


# ----------------------------------------------------------------------
# shard worker (child process)
# ----------------------------------------------------------------------

def _shard_child_main(main, config, module_factories, plan, shard_id,
                      conn, close_socks) -> None:
    for sock in close_socks:  # parent-side ends inherited across fork
        try:
            sock.close()
        except OSError:
            pass
    try:
        _run_shard(main, config, module_factories, plan, shard_id, conn)
    except BaseException as exc:  # noqa: BLE001 - ship diagnosis to parent
        try:
            send_frame(conn, ("crash", shard_id, type(exc).__name__,
                              str(exc), traceback.format_exc()))
        except OSError:
            pass
        sys.exit(1)
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _run_shard(main, config, module_factories, plan, shard_id, conn) -> None:
    from repro.distrib.spmd import RankContext, _bind_main
    from repro.platform.hwloc import discover
    from repro.runtime.runtime import HiperRuntime

    ex = _ShardSimExecutor(trace=config.trace,
                           task_overhead=config.task_overhead)
    fabric = ShardFabric(ex, config.nranks, config.network, plan=plan,
                         shard_id=shard_id,
                         ranks_per_node=config.ranks_per_node,
                         topology=config.topology)
    lo, hi = plan.bounds[shard_id]
    shared: dict = {}
    contexts = []
    for rank in range(lo, hi):
        model = discover(config.machine, num_workers=config.workers_per_rank,
                         detail=config.detail)
        model.name = f"{model.name}-r{rank}"
        rt = HiperRuntime(model, ex, paths=config.path_policy, rank=rank,
                          nranks=config.nranks, seed=config.seed)
        contexts.append(RankContext(rank, config.nranks, rt, fabric, config,
                                    shared=shared))
    for ctx in contexts:
        mods = [factory(ctx) for factory in module_factories]
        ctx.runtime.start(mods)

    futures = [
        ex.submit_root(ctx.runtime, _bind_main(main, ctx),
                       name=f"rank{ctx.rank}-main")
        for ctx in contexts
    ]

    state = {"finished": False}
    windows = 0
    idle_wall = 0.0

    def _exchange() -> bool:
        nonlocal windows, idle_wall
        if state["finished"]:
            return False
        outboxes = fabric.take_outboxes()
        t_next = ex.next_activation()
        done = all(f.satisfied for f in futures)
        t0 = time.perf_counter()
        send_frame(conn, ("win", t_next, done, outboxes))
        reply = recv_frame(conn)
        idle_wall += time.perf_counter() - t0
        if reply is None:
            raise RuntimeStateError(
                f"shard {shard_id}: coordinator closed the link mid-window")
        if reply[0] == "adv":
            _, horizon, inbox = reply
            ex._horizon = horizon
            windows += 1
            if inbox:
                fabric.inject_remote(inbox)
            return True
        state["finished"] = True  # ("fin",) or ("dead",)
        return False

    ex._window_hook = _exchange
    ex._ensure_recursion_headroom()
    ex._stepping = True
    try:
        while not state["finished"]:
            if not ex._step():
                break
    finally:
        ex._stepping = False

    statuses: List[tuple] = []
    errored = False
    for ctx, fut in zip(contexts, futures):
        if not fut.satisfied:
            statuses.append(("error", ctx.rank, "DeadlockError",
                             f"rank {ctx.rank} stalled after a peer failure",
                             None))
            errored = True
            continue
        try:
            statuses.append(("ok", ctx.rank, fut.value()))
        except BaseException as exc:  # noqa: BLE001 - surface after loop
            statuses.append(("error", ctx.rank, type(exc).__name__, str(exc),
                             traceback.format_exc()))
            errored = True
    makespan = ex.makespan()
    merged = RuntimeStats()
    for ctx in contexts:
        try:
            ctx.runtime.shutdown()
        except Exception:  # noqa: BLE001 - see spmd_run: don't mask root cause
            if not errored:
                raise
        merged.merge(ctx.runtime.stats)
    shard_counters = {
        "shard": shard_id,
        "windows": windows,
        "cross_shard_msgs": fabric.cross_shard_msgs,
        "cross_shard_bytes": fabric.cross_shard_bytes,
        "idle_wall_s": idle_wall,
        "events_processed": ex.events_processed,
    }
    send_frame(conn, ("result", statuses, makespan,
                      merged.to_dict()["counters"], shard_counters))
    ex.shutdown()


# ----------------------------------------------------------------------
# coordinator (parent process)
# ----------------------------------------------------------------------

def _reap(handles) -> List[int]:
    """Terminate-then-kill every live shard; return pids still alive."""
    for h in handles:
        h.terminate()
    for h in handles:
        h.join(2.0)
    stragglers = [h for h in handles if h.poll() is None]
    for h in stragglers:
        h.kill()
    for h in stragglers:
        h.join(2.0)
    return [h.pid for h in handles if h.poll() is None]


def _recv(sock: socket.socket, deadline: float, handle, shard_id: int):
    """One frame from a shard, bounded by the run's wall deadline."""
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        raise RuntimeStateError(
            f"sharded run timed out waiting for shard {shard_id}")
    sock.settimeout(remaining)
    try:
        frame = recv_frame(sock)
    except socket.timeout:
        raise RuntimeStateError(
            f"sharded run timed out waiting for shard {shard_id}") from None
    except ConnectionError:
        frame = None
    if frame is None:
        handle.join(2.0)
        code = handle.poll()
        raise PlaceFailure(
            f"shard {shard_id} died mid-window (exit code {code})",
            place=f"shard-{shard_id}")
    if frame[0] == "crash":
        _, _, ename, emsg, tb = frame
        detail = f"\n--- shard traceback ---\n{tb}" if tb else ""
        raise RuntimeStateError(
            f"shard {shard_id} crashed outside rank code: "
            f"{ename}: {emsg}{detail}")
    return frame


def sharded_spmd_run(
    main,
    config=None,
    *,
    module_factories: Sequence[Callable] = (),
    executor: SimExecutor,
    fault_injector=None,
    timeout: float = 300.0,
) -> ShardedSpmdResult:
    """Run ``main(ctx)`` on every rank across ``executor.shards`` OS-process
    shards; the conservative-window counterpart of
    :func:`repro.distrib.spmd.spmd_run` (which dispatches here when its
    executor was built with ``shards > 1``)."""
    from repro.distrib.spmd import ClusterConfig
    from repro.launch.local import fork_worker

    config = config or ClusterConfig()
    if fault_injector is not None:
        raise ConfigError(
            "fault injection requires shards=1: fault verdicts are "
            "per-message sender state the window protocol does not carry")
    nshards = executor.shards
    plan = ShardPlan.build(config.nranks, nshards, config.ranks_per_node)
    lookahead = config.network.lookahead(config.topology)

    pairs = [socket.socketpair() for _ in range(nshards)]
    parent_socks = [p for p, _ in pairs]
    handles = []
    try:
        for k in range(nshards):
            child_sock = pairs[k][1]
            # The fork inherits every pair; the child must close all ends
            # but its own, or a dead sibling's EOF never reaches the parent
            # (the socket stays open through the surviving children's
            # inherited copies).
            close_socks = tuple(
                s for pair in pairs for s in pair if s is not child_sock
            )
            handles.append(fork_worker(
                _shard_child_main,
                (main, config, tuple(module_factories), plan, k,
                 child_sock, close_socks),
                name=f"repro-shard-{k}", rank=k,
            ))
        for _, child_sock in pairs:
            child_sock.close()

        deadline = time.monotonic() + timeout
        horizon = 0.0
        windows = 0
        stalled = False
        while True:
            reports = [
                _recv(parent_socks[k], deadline, handles[k], k)
                for k in range(nshards)
            ]
            n_min = math.inf
            all_done = True
            total_msgs = 0
            route: Dict[int, List[tuple]] = {k: [] for k in range(nshards)}
            for _, t_next, done, outboxes in reports:
                if t_next < n_min:
                    n_min = t_next
                all_done = all_done and done
                for dshard, msgs in outboxes.items():
                    route[dshard].extend(msgs)
                    total_msgs += len(msgs)
                    for m in msgs:
                        if m[0] < n_min:
                            n_min = m[0]
            if all_done and total_msgs == 0:
                for sock in parent_socks:
                    send_frame(sock, ("fin",))
                break
            if n_min == math.inf:
                # Nothing can ever happen again anywhere: every shard is out
                # of work below +inf and no message is in flight.
                stalled = True
                for sock in parent_socks:
                    send_frame(sock, ("dead",))
                break
            horizon = max(horizon, n_min + lookahead)
            windows += 1
            for k, sock in enumerate(parent_socks):
                send_frame(sock, ("adv", horizon, route[k]))

        results: List[Any] = [None] * config.nranks
        errors: List[Tuple[int, str, str]] = []
        counters: Dict[str, int] = {}
        shard_counters: List[Dict[str, Any]] = []
        makespan = 0.0
        for k in range(nshards):
            frame = _recv(parent_socks[k], deadline, handles[k], k)
            _, statuses, shard_makespan, shard_stats, telemetry = frame
            makespan = max(makespan, shard_makespan)
            for key, n in shard_stats.items():
                counters[key] = counters.get(key, 0) + n
            telemetry["horizon_final"] = horizon
            shard_counters.append(telemetry)
            for status in statuses:
                if status[0] == "ok":
                    results[status[1]] = status[2]
                else:
                    _, rank, ename, emsg, _tb = status
                    errors.append((rank, ename, emsg))
        for h in handles:
            h.join(10.0)
        orphans = [h.pid for h in handles if h.poll() is None]
        if orphans:
            _reap(handles)
            raise RuntimeStateError(
                f"shard process(es) {orphans} still alive after results")
    except BaseException:
        _reap(handles)
        raise
    finally:
        for sock in parent_socks:
            try:
                sock.close()
            except OSError:
                pass

    cross_msgs = sum(t["cross_shard_msgs"] for t in shard_counters)
    cross_bytes = sum(t["cross_shard_bytes"] for t in shard_counters)
    counters["shards.windows"] = windows
    counters["shards.cross_shard_msgs"] = cross_msgs
    counters["shards.cross_shard_bytes"] = cross_bytes
    if errors:
        errors.sort(key=lambda e: e[1] == "DeadlockError")
        rank, ename, emsg = errors[0]
        first: Exception = (
            DeadlockError(emsg) if ename == "DeadlockError"
            else RuntimeStateError(f"{ename}: {emsg}"))
        raise ConfigError(
            f"{len(errors)} rank(s) failed; first failure on rank {rank}: "
            f"{ename}: {emsg}"
        ) from first
    if stalled:
        raise DeadlockError(
            "sharded engine quiesced before completion: every shard ran out "
            "of work with no messages in flight")
    return ShardedSpmdResult(results, makespan, nshards, plan, counters,
                             shard_counters, windows)
