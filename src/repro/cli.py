"""Command-line driver: reproduce any paper figure without pytest.

Usage (after ``pip install -e .``)::

    python -m repro list                  # what can be reproduced
    python -m repro fig5                  # regenerate Fig. 5's table
    python -m repro fig7 --nodes 1 2 4    # custom sweep points
    python -m repro validate              # run every app's correctness check
    python -m repro run --backend procs   # digest workloads on real processes
    python -m repro platform titan        # print a machine's platform JSON

Each figure command builds the same sweep as its ``benchmarks/bench_*.py``
counterpart and prints the virtual-time table; ``validate`` runs the
small-scale correctness harness for all five applications (serial-oracle
comparisons, Graph500 validator, UTS exact counts).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

import numpy as np


def cmd_list(_args) -> int:
    print(__doc__)
    print("figures: fig4 (HPGMG-FV), fig5 (ISx), fig6 (GEO), fig7 (UTS), "
          "g500 (Graph500)")
    return 0


def _sweep_fig(fig: str, nodes: List[int]) -> None:
    from repro.bench import Series, cluster_for, sweep
    from repro.distrib import spmd_run

    if fig == "fig4":
        from repro.apps.hpgmg import HpgmgConfig, hpgmg_main
        from repro.mpi import mpi_factory
        from repro.upcxx import upcxx_factory

        cfg = HpgmgConfig(box_dim=8, boxes_xy=2, boxes_z_per_rank=2, cycles=4)

        def make(variant):
            def run(n):
                return spmd_run(
                    hpgmg_main(variant, cfg),
                    cluster_for("titan", n, layout="hybrid"),
                    module_factories=[mpi_factory(), upcxx_factory()])
            return run

        cells = cfg.nz_local * cfg.nx * cfg.ny
        sw = sweep(
            "Fig 4 — HPGMG-FV weak scaling (MDOF/s, higher is better)",
            [Series("reference", make("reference")),
             Series("hiper", make("hiper"))],
            nodes,
            metric=lambda r: cells * r.nranks * cfg.cycles / r.makespan / 1e6,
            unit="MDOF/s",
        )
    elif fig == "fig5":
        from repro.apps.isx import IsxConfig, isx_main
        from repro.shmem import shmem_factory

        keys, bs, cores = 1 << 11, 1 << 7, 16

        def flat(n):
            return spmd_run(
                isx_main("flat", IsxConfig(keys_per_pe=keys, byte_scale=bs)),
                cluster_for("titan", n, layout="flat"),
                module_factories=[shmem_factory(direct=True)])

        def hybrid(variant):
            def run(n):
                return spmd_run(
                    isx_main(variant, IsxConfig(keys_per_pe=keys * cores,
                                                byte_scale=bs)),
                    cluster_for("titan", n, layout="hybrid"),
                    module_factories=[shmem_factory()])
            return run

        sw = sweep(
            "Fig 5 — ISx weak scaling (ms)",
            [Series("flat", flat), Series("hybrid", hybrid("hybrid")),
             Series("hiper", hybrid("hiper"))],
            nodes,
        )
    elif fig == "fig6":
        from repro.apps.geo import GeoConfig, geo_main
        from repro.cuda import cuda_factory
        from repro.mpi import mpi_factory

        cfg = GeoConfig(nx=48, ny=48, nz=48, timesteps=4)

        def make(variant):
            def run(n):
                return spmd_run(
                    geo_main(variant, cfg),
                    cluster_for("titan", n, layout="hybrid"),
                    module_factories=[mpi_factory(), cuda_factory()])
            return run

        sw = sweep(
            "Fig 6 — GEO weak scaling (ms)",
            [Series(v, make(v)) for v in ("mpi_omp", "mpi_cuda", "hiper")],
            nodes,
        )
    elif fig == "fig7":
        from repro.apps.uts import UtsConfig, sequential_count, uts_main
        from repro.shmem import shmem_factory

        cfg = UtsConfig(root_children=3000, mean_children=0.97, seed=1,
                        node_cost=2e-6)
        oracle = sequential_count(cfg)

        def make(variant):
            def run(n):
                res = spmd_run(
                    uts_main(variant, cfg),
                    cluster_for("titan", n, layout="hybrid"),
                    module_factories=[shmem_factory()])
                assert sum(res.results) == oracle
                return res
            return run

        sw = sweep(
            f"Fig 7 — UTS strong scaling (ms, tree={oracle} nodes)",
            [Series(v, make(v)) for v in ("shmem_omp", "omp_tasks", "hiper")],
            nodes,
        )
    elif fig == "g500":
        from repro.apps.graph500 import Graph500Config, graph500_main
        from repro.mpi import mpi_factory
        from repro.shmem import shmem_factory

        cfg = Graph500Config(scale=12)

        def make(variant):
            def run(n):
                return spmd_run(
                    graph500_main(variant, cfg),
                    cluster_for("edison", n, layout="hybrid", workers_cap=8),
                    module_factories=[mpi_factory(), shmem_factory()])
            return run

        sw = sweep(
            f"Graph500 strong scaling (ms, scale={cfg.scale})",
            [Series("mpi", make("mpi")), Series("hiper", make("hiper"))],
            nodes,
        )
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(fig)
    print(sw.table())


def cmd_figure(args) -> int:
    t0 = time.perf_counter()
    _sweep_fig(args.figure, list(args.nodes))
    print(f"(simulated in {time.perf_counter() - t0:.1f}s wall)")
    return 0


def cmd_validate(_args) -> int:
    """Small-scale correctness pass over all five applications."""
    from repro.bench import cluster_for
    from repro.cuda import cuda_factory
    from repro.distrib import ClusterConfig, spmd_run
    from repro.mpi import mpi_factory
    from repro.platform import machine
    from repro.shmem import shmem_factory
    from repro.upcxx import upcxx_factory

    failures = 0

    def check(name, fn):
        nonlocal failures
        t0 = time.perf_counter()
        try:
            fn()
            print(f"  {name:<12s} OK   ({time.perf_counter() - t0:.1f}s)")
        except Exception as exc:  # noqa: BLE001 - report and continue
            failures += 1
            print(f"  {name:<12s} FAIL {type(exc).__name__}: {exc}")

    cluster = ClusterConfig(nodes=4, ranks_per_node=1, workers_per_rank=4,
                            machine=machine("titan"))

    def geo():
        from repro.apps.geo import GeoConfig, check_result, geo_main
        cfg = GeoConfig(nx=10, ny=10, nz=8, timesteps=4)
        for v in ("mpi_omp", "mpi_cuda", "hiper"):
            res = spmd_run(geo_main(v, cfg), cluster,
                           module_factories=[mpi_factory(), cuda_factory()])
            check_result(cfg, res.results)

    def isx():
        from repro.apps.isx import IsxConfig, isx_main, validate_isx
        cfg = IsxConfig(keys_per_pe=1500)
        res = spmd_run(isx_main("hiper", cfg), cluster,
                       module_factories=[shmem_factory()])
        validate_isx(cfg, res.nranks, res.results)

    def uts():
        from repro.apps.uts import UtsConfig, sequential_count, uts_main
        cfg = UtsConfig(root_children=200, mean_children=0.9)
        oracle = sequential_count(cfg)
        for v in ("hiper", "shmem_omp", "omp_tasks"):
            res = spmd_run(uts_main(v, cfg), cluster,
                           module_factories=[shmem_factory()])
            assert sum(res.results) == oracle, v

    def g500():
        from repro.apps.graph500 import (Graph500Config, block_bounds,
                                         build_csr, graph500_main,
                                         kronecker_edges, pick_root,
                                         validate_bfs)
        cfg = Graph500Config(scale=8)
        edges = kronecker_edges(cfg)
        for v in ("mpi", "hiper"):
            res = spmd_run(graph500_main(v, cfg), cluster,
                           module_factories=[mpi_factory(), shmem_factory()])
            parent = np.full(cfg.nvertices, -1, dtype=np.int64)
            for r, blk in enumerate(res.results):
                lo, hi = block_bounds(cfg.nvertices, res.nranks, r)
                parent[lo:hi] = blk
            rows, _ = build_csr(edges, cfg.nvertices)
            assert validate_bfs(cfg, edges, pick_root(cfg, rows), parent) > 0

    def hpgmg():
        from repro.apps.hpgmg import HpgmgConfig, hpgmg_main
        cfg = HpgmgConfig(box_dim=8, boxes_xy=1, boxes_z_per_rank=1, cycles=6)
        for v in ("reference", "hiper"):
            res = spmd_run(hpgmg_main(v, cfg), cluster,
                           module_factories=[mpi_factory(), upcxx_factory()])
            hist = res.results[0][0]
            assert hist[-1] < hist[0] * 1e-3, v

    print("validating all applications against their oracles:")
    check("GEO", geo)
    check("ISx", isx)
    check("UTS", uts)
    check("Graph500", g500)
    check("HPGMG-FV", hpgmg)
    return 1 if failures else 0


def _profile_target(fig: str, scale: float):
    """One representative (HiPER-variant) run per figure for profiling."""
    from repro.apps import presets
    from repro.bench import cluster_for

    if fig == "fig4":
        from repro.apps.hpgmg import hpgmg_main
        from repro.mpi import mpi_factory
        from repro.upcxx import upcxx_factory

        cfg = presets.hpgmg_paper(scale)
        cfg.cycles = 4
        return (hpgmg_main("hiper", cfg),
                cluster_for("titan", 2, layout="hybrid"),
                [mpi_factory(), upcxx_factory()])
    if fig == "fig5":
        from repro.apps.isx import isx_main
        from repro.shmem import shmem_factory

        return (isx_main("hiper", presets.isx_weak_scaling(scale)),
                cluster_for("titan", 2, layout="hybrid"),
                [shmem_factory()])
    if fig == "fig6":
        from repro.apps.geo import geo_main
        from repro.cuda import cuda_factory
        from repro.mpi import mpi_factory

        return (geo_main("hiper", presets.geo_weak_scaling(scale)),
                cluster_for("titan", 2, layout="hybrid"),
                [mpi_factory(), cuda_factory()])
    if fig == "fig7":
        from repro.apps.uts import uts_main
        from repro.shmem import shmem_factory

        return (uts_main("hiper", presets.uts_t1xxl(scale)),
                cluster_for("titan", 2, layout="hybrid"),
                [shmem_factory()])
    if fig == "g500":
        from repro.apps.graph500 import graph500_main
        from repro.mpi import mpi_factory
        from repro.shmem import shmem_factory

        return (graph500_main("hiper", presets.graph500_reference(10)),
                cluster_for("edison", 2, layout="hybrid", workers_cap=8),
                [mpi_factory(), shmem_factory()])
    raise ValueError(fig)  # pragma: no cover - argparse restricts choices


def cmd_profile(args) -> int:
    """Run one figure's HiPER variant under full instrumentation and write
    ``metrics.json`` + ``trace.json`` (Perfetto-loadable) to ``--out``."""
    from repro.tools import profile_spmd

    main_fn, cluster, factories = _profile_target(args.figure, args.scale)
    t0 = time.perf_counter()
    report = profile_spmd(main_fn, cluster, module_factories=factories,
                          out_dir=args.out, engine=args.engine,
                          shards=args.shards)
    m = report.metrics
    print(f"profiled {args.figure} on {m['nranks']} ranks: "
          f"makespan {m['makespan'] * 1e3:.3f} ms (virtual), "
          f"utilization {m['utilization']:.1%}, "
          f"{m['trace_events']} trace events "
          f"({time.perf_counter() - t0:.1f}s wall)")
    sim = m["sim"]
    print(f"  {'engine':>10s}: {sim['engine']} — "
          f"{sim['events_processed']} events, "
          f"{sim['events_per_sec'] / 1e3:.0f}k events/s")
    if "shards" in m:
        sh = m["shards"]
        print(f"  {'shards':>10s}: {sh['nshards']} procs, "
              f"{sh['windows']} windows, "
              f"{sh['cross_shard_msgs']} cross-shard msgs "
              f"({sh['cross_shard_bytes']} bytes)")
        for t in sh["per_shard"]:
            print(f"  {'shard ' + str(t['shard']):>10s}: "
                  f"{t['events_processed']} events, "
                  f"barrier idle {t['idle_wall_s'] * 1e3:.0f} ms wall")
    for ch, rec in sorted(m["comm_volume"].items()):
        print(f"  {ch:>10s}: {int(rec['messages'])} msgs, "
              f"{int(rec['bytes'])} bytes")
    print(f"wrote {report.metrics_path} and {report.trace_path}")
    return 0


def cmd_chaos(args) -> int:
    """Run one figure's HiPER variant under a seeded fault plan and report
    the fault/retry/recovery telemetry; optionally write the fault log,
    metrics, and Chrome trace to ``--out``. Same seed + same plan => the
    identical fault sequence, so chaos runs are replayable."""
    import json
    import os

    from repro.distrib import spmd_run
    from repro.exec.sim import SimExecutor
    from repro.resilience import FaultInjector, FaultPlan
    from repro.tools import TraceRecorder

    plan = FaultPlan.load(args.plan, seed=args.seed)
    injector = FaultInjector(plan)
    main_fn, cluster, factories = _profile_target(args.figure, args.scale)
    ex = SimExecutor()
    tracer = TraceRecorder()
    ex.attach_tracer(tracer)
    t0 = time.perf_counter()
    res = spmd_run(main_fn, cluster, module_factories=factories,
                   executor=ex, fault_injector=injector)

    merged = res.merged_stats()
    retries = sum(v for (_m, op), v in merged.counters.items()
                  if op == "retries")
    counts = injector.counts()
    print(f"chaos {args.figure} [{args.plan}, seed={plan.seed}] on "
          f"{res.nranks} ranks: makespan {res.makespan * 1e3:.3f} ms "
          f"(virtual), {len(injector.events)} faults injected, "
          f"{retries} retries ({time.perf_counter() - t0:.1f}s wall)")
    for kind in sorted(counts):
        print(f"  {kind:>18s}: {counts[kind]}")
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        injector.save_log(os.path.join(args.out, "fault_log.json"))
        tracer.save_chrome_trace(os.path.join(args.out, "trace.json"))
        metrics = {
            "figure": args.figure, "plan": args.plan, "seed": plan.seed,
            "nranks": res.nranks, "makespan": res.makespan,
            "faults": counts, "retries": retries,
            "results_ok": all(r is not None for r in res.results),
        }
        mpath = os.path.join(args.out, "metrics.json")
        with open(mpath, "w", encoding="utf-8") as fh:
            json.dump(metrics, fh, indent=1)
        print(f"wrote {args.out}/fault_log.json, metrics.json, trace.json")
    return 0


def cmd_verify(args) -> int:
    """Concurrency correctness harness (``repro.verify``): seeded schedule
    exploration with race detection, a planted-race self-check, and the
    sim↔threaded differential. Exit code is nonzero iff anything failed.
    Failing interleavings are written as replayable JSON artifacts when
    ``--out`` is given; any reported seed reproduces bit-for-bit via
    ``repro verify --strategy <s> --seeds 1 --first-seed <seed>``."""
    import os

    from repro.tools.schedule import artifact_from_outcome, save_schedule
    from repro.verify import (WORKLOADS, differential,
                              isx_coalescing_differential,
                              isx_engine_differential,
                              isx_sharded_differential, replay_schedule,
                              run_once)
    from repro.verify.strategies import STRATEGIES

    failures = 0
    strategies = sorted(STRATEGIES) if args.strategy == "all" else [args.strategy]

    def dump(outcome, tag):
        if not args.out:
            return
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"failing-schedule-{tag}.json")
        save_schedule(artifact_from_outcome(
            outcome, workers=args.workers, planted=args.planted), path)
        print(f"    wrote {path}")

    if args.replay:
        from repro.tools.schedule import load_schedule

        art = load_schedule(args.replay)
        print(f"replaying {args.replay} (strategy={art.strategy} "
              f"seed={art.seed}, {len(art.schedule)} steps)")
        out = replay_schedule(art.schedule, workers=art.workers,
                              planted=art.planted)
        print(out.describe())
        if out.digest != art.digest:
            print(f"  digest drift: {out.digest[:16]} != {art.digest[:16]} "
                  "(code changed since the artifact was recorded)")
        return 0 if out.ok == (not art.races and not art.violations) else 1

    t0 = time.perf_counter()
    # 1. self-check: the planted race in the known-buggy fixture MUST be
    #    rediscovered (detector ground truth).
    if not args.skip_selfcheck:
        found = None
        for seed in range(args.selfcheck_seeds):
            out = run_once("random", seed, workers=args.workers, planted=True)
            if out.races:
                found = out
                break
        if found is None:
            failures += 1
            print(f"  self-check   FAIL planted race not found in "
                  f"{args.selfcheck_seeds} seeds")
        else:
            again = run_once("random", found.seed, workers=args.workers,
                             planted=True)
            bit = "bit-for-bit" if again.digest == found.digest else \
                "DIGEST MISMATCH"
            print(f"  self-check   OK   planted race found at seed "
                  f"{found.seed}, replay {bit}")
            if again.digest != found.digest:
                failures += 1

    # 2. schedule exploration on the production core.
    for strat in strategies:
        bad = None
        for seed in range(args.first_seed, args.first_seed + args.seeds):
            out = run_once(strat, seed, workers=args.workers,
                           planted=args.planted)
            if not out.ok:
                bad = out
                break
        if bad is None:
            print(f"  hunt:{strat:<7s} OK   {args.seeds} seeds clean")
        else:
            failures += 1
            print(f"  hunt:{strat:<7s} FAIL seed {bad.seed} "
                  f"(digest {bad.digest[:16]}):")
            print("    " + bad.describe().replace("\n", "\n    "))
            dump(bad, strat)

    # 3. differential: same workload, different engines, same answer.
    if not args.skip_differential:
        for wl in sorted(WORKLOADS):
            rep = differential(wl, engines=tuple(args.engines),
                               workers=args.workers)
            mark = "OK  " if rep.ok else "FAIL"
            print(f"  diff:{wl:<9s}{mark} "
                  f"{'/'.join(r.engine for r in rep.runs)}")
            if not rep.ok:
                failures += 1
                print("    " + rep.describe().replace("\n", "\n    "))

        # 3b. comm-path differential: ISx over the SPMD fabric with message
        #     coalescing on vs. off must sort to identical outputs.
        rep = isx_coalescing_differential()
        mark = "OK  " if rep.ok else "FAIL"
        print(f"  diff:{'isx-coal':<9s}{mark} "
              f"{'/'.join(r.engine for r in rep.runs)}")
        if not rep.ok:
            failures += 1
            print("    " + rep.describe().replace("\n", "\n    "))

        # 3c. engine differential: the same SPMD ISx run under the objects
        #     and flat event engines must have bit-identical makespans and
        #     per-rank digests (the flat engine's correctness gate).
        rep = isx_engine_differential()
        mark = "OK  " if rep.ok else "FAIL"
        print(f"  diff:{'isx-eng':<9s}{mark} "
              f"{'/'.join(r.engine for r in rep.runs)}")
        if not rep.ok:
            failures += 1
            print("    " + rep.describe().replace("\n", "\n    "))

        # 3d. sharded differential: the same SPMD ISx run single-shard vs.
        #     across conservative-window OS-process shards must produce
        #     identical per-rank digests (the sharded engine's gate).
        rep = isx_sharded_differential()
        mark = "OK  " if rep.ok else "FAIL"
        print(f"  diff:{'isx-shard':<9s}{mark} "
              f"{'/'.join(r.engine for r in rep.runs)}")
        if not rep.ok:
            failures += 1
            print("    " + rep.describe().replace("\n", "\n    "))

    print(f"({failures} failure(s), {time.perf_counter() - t0:.1f}s wall)")
    return 1 if failures else 0


def cmd_run(args) -> int:
    """Run the digest workloads on one execution backend.

    ``--backend sim|threads`` runs the single-runtime task-parallel form
    inside this process; ``--backend procs`` runs the SPMD twin across real
    OS processes — one per rank, SHMEM heap on POSIX shared memory, puts
    and collectives over a Unix-socket fabric. The three backends' digests
    agree by construction, so this doubles as a cross-backend spot check.
    ``--engine`` selects the sim backend's DES engine (flat — the
    slab/calendar engine — is the default; ``--engine objects`` selects
    the original per-record engine).
    """
    from repro.util.errors import ConfigError
    from repro.verify import WORKLOADS, run_on_engine
    from repro.verify.spmd_workloads import (run_procs_workload,
                                             run_sharded_workload)

    if args.shards < 1:
        raise ConfigError(f"--shards must be >= 1, got {args.shards}")
    if args.shards != 1 and args.backend != "sim":
        raise ConfigError(
            f"--shards applies to the sim backend only, not "
            f"--backend {args.backend} (the procs backend is already one "
            "process per rank)")
    if args.shards != 1 and args.engine != "flat":
        raise ConfigError(
            f"--shards requires --engine flat, got --engine {args.engine}")
    if args.backend == "procs":
        # Fail before running anything so a typo'd launcher exits cleanly
        # instead of FAILing every app with the same traceback text.
        from repro.launch import get_launcher
        get_launcher(args.launcher)

    # --engine picks the sim DES engine (flat is the default); the threads
    # and procs backends have no DES engine and ignore it.
    engine = "flat-sim" if (args.backend == "sim" and
                            args.engine == "flat") else args.backend
    apps = sorted(WORKLOADS) if args.app == "all" else [args.app]
    failures = 0
    for app in apps:
        t0 = time.perf_counter()
        try:
            if args.backend == "procs":
                digest, res = run_procs_workload(
                    app, nranks=args.ranks, launcher=args.launcher,
                    workers_per_rank=args.workers, timeout=args.timeout)
                extra = f"{res.nranks} ranks via {args.launcher}"
            elif args.shards > 1:
                digest, res = run_sharded_workload(
                    app, nranks=args.ranks, shards=args.shards)
                extra = (f"{res.nranks} ranks across {args.shards} shards, "
                         f"{res.windows} windows")
            else:
                run = run_on_engine(WORKLOADS[app](), engine,
                                    workers=args.workers)
                digest = run.result
                extra = (f"{args.workers} workers in-process"
                         + (f", {args.engine} engine"
                            if args.backend == "sim" else ""))
            print(f"  {app:<9s} OK   {digest}  "
                  f"[{args.backend}: {extra}, "
                  f"{time.perf_counter() - t0:.2f}s wall]")
        except Exception as exc:  # noqa: BLE001 - report and continue
            failures += 1
            print(f"  {app:<9s} FAIL {type(exc).__name__}: {exc}")
    return 1 if failures else 0


def cmd_procs_worker(args) -> int:
    """(internal) SPMD child entry point for out-of-process launchers.

    ``SubprocessLauncher`` — and real resource-manager launchers modelled on
    it — start each rank as ``python -m repro procs-worker --job <pickle>
    --rank <n>``. This unpickles the :class:`~repro.exec.procs.ProcsJob`
    and runs the standard child main; the exit code is the rank's status.
    """
    import pickle

    from repro.exec.procs import procs_child_main

    with open(args.job, "rb") as fh:
        job = pickle.load(fh)
    return procs_child_main(job, args.rank)


def cmd_platform(args) -> int:
    from repro.platform import discover, machine

    model = discover(machine(args.machine), detail=args.detail)
    print(model.to_json())
    return 0


def cmd_bench_record(args) -> int:
    """Run one suite's micro-benchmarks and append the results (ops/sec per
    bench, commit hash, date) to the suite's committed perf ledger."""
    from repro.bench.record import SUITES, format_entry, load_ledger, record

    t0 = time.perf_counter()
    entry = record(out=args.out, label=args.label, fast=args.fast,
                   keyword=args.keyword, suite=args.suite)
    ledger = load_ledger(args.out) if args.out else None
    baseline = ledger[0] if ledger and len(ledger) > 1 else None
    print(format_entry(entry, baseline))
    print(f"({len(entry['benchmarks'])} benchmarks in "
          f"{time.perf_counter() - t0:.1f}s wall; appended to "
          f"{args.out or SUITES[args.suite]['ledger']})")
    return 0


def cmd_serve(args) -> int:
    """Run the long-lived job gateway (``repro.service``) as a daemon.

    Holds warm executor pools and serves the JSON job API over a
    Unix-domain socket (default) or TCP. SIGINT/SIGTERM triggers a
    graceful drain: intake stops, accepted jobs finish, then the process
    exits. A second signal hard-stops.
    """
    import signal

    from repro.resilience import Backoff, RetryPolicy
    from repro.service import JobGateway, ServiceConfig, ServiceServer

    cfg = ServiceConfig(
        backends=tuple(args.backends), pool_size=args.pool_size,
        workers=args.workers, engine=args.engine, warm=not args.cold,
        max_queue_per_tenant=args.queue_cap,
        cache_capacity=args.cache_capacity,
        retry=RetryPolicy(max_attempts=args.retries,
                          backoff=Backoff(base=1e-3, max_delay=2e-2)))
    gateway = JobGateway(cfg)
    if args.host is not None:
        server = ServiceServer(gateway, host=args.host, port=args.port)
    else:
        server = ServiceServer(gateway, uds=args.uds)
    server.start()
    print(f"repro-service listening on {server.address} "
          f"(backends={list(cfg.backends)}, pool={cfg.pool_size}/backend, "
          f"{'warm' if cfg.warm else 'cold'} {cfg.engine} pools)")

    signals = {"n": 0}

    def on_signal(_sig, _frm):
        signals["n"] += 1
        if signals["n"] > 1:
            raise KeyboardInterrupt

    signal.signal(signal.SIGINT, on_signal)
    signal.signal(signal.SIGTERM, on_signal)
    try:
        # Exit on SIGINT/SIGTERM *or* when a client POSTs /drain — the
        # latter is the portable remote-shutdown path.
        while not signals["n"] and not gateway.draining:
            time.sleep(0.2)
        print("draining: intake stopped, finishing accepted jobs "
              "(signal again to hard-stop)")
        gateway.drain(timeout=args.drain_timeout)
    except KeyboardInterrupt:
        print("hard stop")
    finally:
        server.stop()
    done = gateway.stats.counter("service", "jobs_completed")
    print(f"repro-service stopped ({int(done)} jobs completed)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="HiPER reproduction driver")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show what can be reproduced"
                   ).set_defaults(fn=cmd_list)

    for fig in ("fig4", "fig5", "fig6", "fig7", "g500"):
        fp = sub.add_parser(fig, help=f"regenerate {fig}")
        fp.add_argument("--nodes", type=int, nargs="+",
                        default=[1, 2, 4, 8])
        fp.set_defaults(fn=cmd_figure, figure=fig)

    sub.add_parser("validate", help="run every app's correctness check"
                   ).set_defaults(fn=cmd_validate)
    # Alias: "run-all" reads naturally in CI scripts; exit code is nonzero
    # iff any application fails its oracle.
    sub.add_parser("run-all", help="alias for validate"
                   ).set_defaults(fn=cmd_validate)

    prof = sub.add_parser(
        "profile", help="run one figure instrumented; emit metrics + trace")
    prof.add_argument("figure",
                      choices=["fig4", "fig5", "fig6", "fig7", "g500"])
    prof.add_argument("--out", default="profile-out",
                      help="output directory for metrics.json / trace.json")
    prof.add_argument("--scale", type=float, default=1.0,
                      help="preset workload scale (1.0 = benchmark size)")
    prof.add_argument("--engine", choices=["objects", "flat"],
                      default="flat",
                      help="DES event engine for the instrumented run")
    prof.add_argument("--shards", type=int, default=1,
                      help="OS-process shards for the flat engine (1 = "
                           "single-process; >1 runs the conservative-window "
                           "sharded engine and reports window telemetry)")
    prof.set_defaults(fn=cmd_profile)

    br = sub.add_parser(
        "bench-record",
        help="run runtime micro-benchmarks; append ops/sec to the perf ledger")
    from repro.bench.record import SUITES as _suites
    br.add_argument("--suite", default="scheduler",
                    choices=sorted(_suites),
                    help="benchmark suite / ledger to record")
    br.add_argument("--out", default=None,
                    help="ledger path (default: the suite's ledger at the "
                         "repo root)")
    br.add_argument("--label", default="",
                    help="entry label (e.g. 'post-overhaul')")
    br.add_argument("--fast", action="store_true",
                    help="run only the CI perf-smoke subset")
    br.add_argument("-k", dest="keyword", default=None,
                    help="pytest -k expression selecting benchmarks")
    br.set_defaults(fn=cmd_bench_record)

    ch = sub.add_parser(
        "chaos", help="run one figure under a seeded fault plan")
    ch.add_argument("figure",
                    choices=["fig4", "fig5", "fig6", "fig7", "g500"])
    ch.add_argument("--plan", default="mixed",
                    help="preset (drop/delay/corrupt/mixed) or JSON spec file")
    ch.add_argument("--seed", type=int, default=0,
                    help="fault-plan seed (same seed => same fault sequence)")
    ch.add_argument("--scale", type=float, default=0.25,
                    help="preset workload scale (1.0 = benchmark size)")
    ch.add_argument("--out", default=None,
                    help="directory for fault_log.json / metrics.json / "
                         "trace.json")
    ch.set_defaults(fn=cmd_chaos)

    vf = sub.add_parser(
        "verify",
        help="concurrency harness: schedule exploration + race detection + "
             "sim/threaded differential")
    vf.add_argument("--strategy", default="all",
                    choices=["random", "pct", "pbound", "all"],
                    help="exploration strategy (default: all three)")
    vf.add_argument("--seeds", type=int, default=25,
                    help="seeds to sweep per strategy")
    vf.add_argument("--first-seed", type=int, default=0,
                    help="first seed of the sweep (reproduce a report with "
                         "--seeds 1 --first-seed <seed>)")
    vf.add_argument("--workers", type=int, default=4)
    vf.add_argument("--planted", action="store_true",
                    help="hunt on the known-buggy fixture (expected to FAIL)")
    vf.add_argument("--engines", nargs="+", default=["sim", "threads"],
                    choices=["sim", "flat-sim", "threads", "interleave",
                             "procs", "sharded"],
                    help="engines for the differential check (flat-sim = "
                         "slab/calendar event engine, procs = multiprocess "
                         "SPMD backend, sharded = conservative-window "
                         "multi-process DES)")
    vf.add_argument("--skip-differential", action="store_true")
    vf.add_argument("--skip-selfcheck", action="store_true",
                    help="skip the planted-race detector self-check")
    vf.add_argument("--selfcheck-seeds", type=int, default=10)
    vf.add_argument("--out", default=None,
                    help="directory for failing-schedule JSON artifacts")
    vf.add_argument("--replay", default=None, metavar="ARTIFACT",
                    help="replay a saved failing-schedule artifact instead")
    vf.set_defaults(fn=cmd_verify)

    rn = sub.add_parser(
        "run",
        help="run the digest workloads on one backend (sim/threads/procs)")
    rn.add_argument("--backend", default="procs",
                    choices=["sim", "threads", "procs"],
                    help="execution backend (default: procs — one OS "
                         "process per rank)")
    rn.add_argument("--app", default="all",
                    choices=["isx", "uts", "graph500", "all"])
    rn.add_argument("--ranks", type=int, default=4,
                    help="SPMD ranks (procs backend and sharded sim)")
    rn.add_argument("--workers", type=int, default=2,
                    help="workers per rank (procs) / pool size (sim, "
                         "threads)")
    rn.add_argument("--launcher", default="local",
                    help="process launcher for the procs backend "
                         "(local, subprocess, flux, pbs)")
    rn.add_argument("--engine", default="flat",
                    choices=["objects", "flat"],
                    help="DES event engine for the sim backend "
                         "(flat is the default; objects = the original "
                         "per-record engine)")
    rn.add_argument("--shards", type=int, default=1,
                    help="OS-process shards for the sim backend's flat "
                         "engine (>1 runs the SPMD twin on the "
                         "conservative-window sharded engine)")
    rn.add_argument("--timeout", type=float, default=300.0,
                    help="end-to-end timeout per workload (procs), seconds")
    rn.set_defaults(fn=cmd_run)

    sv = sub.add_parser(
        "serve",
        help="run the long-lived job gateway with warm executor pools")
    sv.add_argument("--uds", default=None,
                    help="Unix-domain socket path (default: "
                         "./repro-service.sock)")
    sv.add_argument("--host", default=None,
                    help="listen on TCP host:port instead of a UDS")
    sv.add_argument("--port", type=int, default=0,
                    help="TCP port (0 = ephemeral; with --host only)")
    sv.add_argument("--backends", nargs="+", default=["sim"],
                    choices=["sim", "threads", "procs"],
                    help="backends to run pool slots for")
    sv.add_argument("--pool-size", type=int, default=2,
                    help="warm entries (= worker threads) per backend")
    sv.add_argument("--workers", type=int, default=4,
                    help="runtime workers per warm entry")
    sv.add_argument("--engine", default="flat",
                    choices=["objects", "flat"],
                    help="DES engine warm sim entries are built with")
    sv.add_argument("--cold", action="store_true",
                    help="disable warm pools (construct/tear down a runtime "
                         "per job)")
    sv.add_argument("--queue-cap", type=int, default=256,
                    help="max queued jobs per tenant before 429 rejection")
    sv.add_argument("--cache-capacity", type=int, default=1024,
                    help="result-cache entries (LRU)")
    sv.add_argument("--retries", type=int, default=3,
                    help="max attempts per job (failures retry per the "
                         "resilience policy)")
    sv.add_argument("--drain-timeout", type=float, default=120.0,
                    help="seconds to wait for in-flight jobs on shutdown")
    sv.set_defaults(fn=cmd_serve)

    # Internal: child entry point used by out-of-process launchers. No
    # help= on purpose — it's not part of the user-facing surface.
    pw = sub.add_parser("procs-worker")
    pw.add_argument("--job", required=True,
                    help="path to the pickled ProcsJob")
    pw.add_argument("--rank", type=int, required=True)
    pw.set_defaults(fn=cmd_procs_worker)

    pp = sub.add_parser("platform", help="print a machine's platform JSON")
    pp.add_argument("machine", choices=["edison", "titan", "workstation"])
    pp.add_argument("--detail", default="numa",
                    choices=["flat", "numa", "full"])
    pp.set_defaults(fn=cmd_platform)
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.util.errors import ConfigError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ConfigError as exc:
        # Bad names (figure, plan, launcher, backend...) are user errors:
        # print the message — which lists the valid choices — and exit 2,
        # matching argparse's own exit code for bad arguments.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
