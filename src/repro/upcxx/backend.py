"""UPC++-style one-sided backend: global pointers, rput/rget, and RPCs.

Differences from the SHMEM backend that justify a separate engine:

- ``rput`` completes at *remote* completion (apply + ack round trip), the
  UPC++ operation-completion default, not at injection;
- ``rpc`` ships a function to the target rank, where it runs as a real HiPER
  task on the target's runtime (unified scheduling: incoming RPCs compete
  with the target's own tasks, which is exactly the paper's point about
  composability);
- global pointers carry ``(rank, obj_id, offset)`` and may address any
  registered shared object, not only symmetric allocations.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.net.coalesce import CoalescePolicy
from repro.net.mux import FabricMux
from repro.runtime.context import current_context
from repro.runtime.future import Future, Promise
from repro.util.bufpool import BufferPool, release_if_pooled
from repro.util.errors import UpcxxError

_CHANNEL = "upcxx"
_CTRL = 40


class GlobalPtr:
    """A global pointer: names ``count`` elements of a shared object on a rank."""

    __slots__ = ("rank", "obj_id", "offset")

    def __init__(self, rank: int, obj_id: int, offset: int = 0):
        self.rank = rank
        self.obj_id = obj_id
        self.offset = offset

    def __add__(self, delta: int) -> "GlobalPtr":
        return GlobalPtr(self.rank, self.obj_id, self.offset + delta)

    def __repr__(self) -> str:
        return f"GlobalPtr(rank={self.rank}, obj={self.obj_id}, off={self.offset})"


class UpcxxBackend:
    """Per-rank engine; peers visible through the run's shared registry."""

    def __init__(
        self,
        mux: FabricMux,
        rank: int,
        peers: Dict[int, "UpcxxBackend"],
        *,
        spawn_rpc: Callable[[Callable[[], Any]], Future],
    ):
        self.mux = mux
        self.rank = rank
        self.nranks = mux.nranks
        self._peers = peers
        peers[rank] = self
        #: How to run an incoming RPC body on this rank's runtime; returns
        #: the task's completion future. Wired by the module at init.
        self._spawn_rpc = spawn_rpc
        self._objects: Dict[int, np.ndarray] = {}
        self._next_obj = 0
        self._pending: Dict[int, Promise] = {}
        self._req_seq = itertools.count()
        self.rputs = 0
        self.rgets = 0
        self.rpcs = 0
        #: Recycles rput-snapshot buffers (timing-neutral; wall-clock only).
        self.pool = BufferPool(stats=mux.stats, module=_CHANNEL)
        mux.register_channel(_CHANNEL, self._on_delivery)

    def enable_retries(self, policy) -> None:
        """Retransmit dropped/corrupted UPC++ messages per ``policy`` (a
        :class:`repro.resilience.RetryPolicy`); rput/rget/rpc futures then
        complete on the retried delivery instead of hanging."""
        self.mux.set_retry_policy(_CHANNEL, policy)

    def enable_coalescing(self, policy: Optional[CoalescePolicy] = None) -> None:
        """Batch small rputs/rgets/RPCs per destination into coalesced
        envelopes (see :mod:`repro.net.coalesce`). Opt-in: virtual-time
        schedules change."""
        self.mux.enable_coalescing(_CHANNEL, policy)

    # ------------------------------------------------------------------
    # shared objects
    # ------------------------------------------------------------------
    def register_shared(self, arr: np.ndarray) -> GlobalPtr:
        """Register a local array as globally addressable; collective calls
        in the same order yield matching obj_ids across ranks (shared-array
        construction)."""
        obj_id = self._next_obj
        self._next_obj += 1
        self._objects[obj_id] = arr
        return GlobalPtr(self.rank, obj_id, 0)

    def local(self, gptr: GlobalPtr) -> np.ndarray:
        if gptr.rank != self.rank:
            raise UpcxxError(
                f"gptr targets rank {gptr.rank}; local() called on rank {self.rank}"
            )
        return self._resolve(gptr.obj_id)

    def _resolve(self, obj_id: int) -> np.ndarray:
        try:
            return self._objects[obj_id]
        except KeyError:
            raise UpcxxError(
                f"rank {self.rank}: no shared object {obj_id} "
                "(construction order diverged across ranks?)"
            ) from None

    # ------------------------------------------------------------------
    # one-sided ops
    # ------------------------------------------------------------------
    def rput(self, data: Any, gptr: GlobalPtr) -> Future:
        """Remote put; future satisfied at *remote* completion (UPC++
        operation completion)."""
        data = np.asarray(data)
        self.rputs += 1
        done = self._track()
        self._charge_cpu()
        self.mux.transmit(
            gptr.rank, _CHANNEL,
            ("rput", gptr.obj_id, gptr.offset, self.pool.take_copy(data),
             self.rank, done[0]),
            int(data.nbytes) + _CTRL,
        )
        return done[1]

    def rget(self, gptr: GlobalPtr, count: int) -> Future:
        """Remote get of ``count`` elements; future carries the array."""
        if count < 0:
            raise UpcxxError(f"rget count must be non-negative, got {count}")
        self.rgets += 1
        done = self._track()
        self._charge_cpu()
        self.mux.transmit(
            gptr.rank, _CHANNEL,
            ("rget", gptr.obj_id, gptr.offset, count, self.rank, done[0]),
            _CTRL,
        )
        return done[1]

    def rpc(self, target: int, fn: Callable[..., Any], *args,
            nbytes: int = 256) -> Future:
        """Run ``fn(*args)`` as a task on ``target``'s runtime; future carries
        its return value (exceptions propagate back)."""
        if not (0 <= target < self.nranks):
            raise UpcxxError(f"rpc target {target} out of range")
        self.rpcs += 1
        done = self._track()
        self._charge_cpu()
        self.mux.transmit(
            target, _CHANNEL, ("rpc", fn, args, self.rank, done[0]), nbytes
        )
        return done[1]

    def _track(self) -> Tuple[int, Future]:
        req_id = next(self._req_seq)
        p = Promise(name=f"upcxx-req{req_id}")
        self._pending[req_id] = p
        return req_id, p.get_future()

    # ------------------------------------------------------------------
    def _on_delivery(self, src: int, payload: Tuple, time: float) -> None:
        kind = payload[0]
        if kind == "rput":
            _, obj_id, offset, data, origin, req_id = payload
            arr = self._resolve(obj_id).reshape(-1)
            if offset + data.size > arr.size:
                self._respond_exc(origin, req_id, UpcxxError(
                    f"rput [{offset},{offset + data.size}) out of bounds "
                    f"for object {obj_id} (size {arr.size})"
                ))
                return
            arr[offset : offset + data.size] = data.reshape(-1)
            release_if_pooled(data)  # applied; recycle the snapshot storage
            self._respond(origin, req_id, None, _CTRL)
        elif kind == "rget":
            _, obj_id, offset, count, origin, req_id = payload
            arr = self._resolve(obj_id).reshape(-1)
            if offset + count > arr.size:
                self._respond_exc(origin, req_id, UpcxxError(
                    f"rget [{offset},{offset + count}) out of bounds "
                    f"for object {obj_id} (size {arr.size})"
                ))
                return
            data = arr[offset : offset + count].copy()
            self._respond(origin, req_id, data, int(data.nbytes) + _CTRL)
        elif kind == "rpc":
            _, fn, args, origin, req_id = payload
            fut = self._spawn_rpc(lambda: fn(*args))
            fut.on_ready(lambda f: self._rpc_finished(f, origin, req_id))
        elif kind == "resp":
            _, req_id, is_exc, value = payload
            promise = self._pending.pop(req_id)
            if is_exc:
                promise.put_exception(value)
            else:
                promise.put(value)
        else:  # pragma: no cover - protocol corruption
            raise UpcxxError(f"unknown upcxx wire message kind {kind!r}")

    def _rpc_finished(self, fut: Future, origin: int, req_id: int) -> None:
        try:
            value = fut.value()
        except BaseException as exc:  # noqa: BLE001
            self._respond_exc(origin, req_id, exc)
            return
        self._respond(origin, req_id, value,
                      int(value.nbytes) + _CTRL if isinstance(value, np.ndarray)
                      else _CTRL)

    def _respond(self, origin: int, req_id: int, value: Any, nbytes: int) -> None:
        self.mux.transmit(origin, _CHANNEL, ("resp", req_id, False, value), nbytes)

    def _respond_exc(self, origin: int, req_id: int, exc: BaseException) -> None:
        self.mux.transmit(origin, _CHANNEL, ("resp", req_id, True, exc), _CTRL)

    def _charge_cpu(self) -> None:
        ctx = current_context()
        if ctx is not None and ctx.worker is not None:
            ctx.executor.charge(self.mux.fabric.cpu_send_overhead())

    def __repr__(self) -> str:
        return (
            f"UpcxxBackend(rank={self.rank}/{self.nranks}, rputs={self.rputs}, "
            f"rgets={self.rgets}, rpcs={self.rpcs})"
        )
