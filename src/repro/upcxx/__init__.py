"""The HiPER UPC++ module: global pointers, rput/rget futures, RPCs."""

from repro.upcxx.backend import GlobalPtr, UpcxxBackend
from repro.upcxx.module import SharedArray, UpcxxModule, upcxx_factory

__all__ = ["GlobalPtr", "UpcxxBackend", "SharedArray", "UpcxxModule", "upcxx_factory"]
