"""The HiPER UPC++ module (paper §II-C; HPGMG-FV uses it together with MPI).

Unlike MPI and OpenSHMEM, UPC++ is futures-native, so the module's mapping is
direct: ``rput``/``rget``/``rpc`` return HiPER futures, and incoming RPCs are
scheduled as ordinary tasks on the target rank's runtime — one unified
scheduler for local tasks, remote RPCs, and everything else.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.modules.base import HiperModule
from repro.mpi import collectives as coll
from repro.mpi.backend import MpiBackend
from repro.net.coalesce import CoalescePolicy
from repro.platform.place import PlaceType
from repro.runtime.future import Future
from repro.runtime.runtime import HiperRuntime
from repro.upcxx.backend import GlobalPtr, UpcxxBackend
from repro.util.errors import ModuleError


class UpcxxModule(HiperModule):
    """Pluggable UPC++ module."""

    name = "upcxx"
    capabilities = frozenset({"communication", "one-sided", "rpc"})

    def __init__(self, ctx, *, coalesce: Optional[CoalescePolicy] = None):
        super().__init__()
        self.ctx = ctx
        self.rank = ctx.rank
        self.nranks = ctx.nranks
        #: Coalesce small rputs/rgets/RPCs per destination (opt-in; a
        #: CoalescePolicy, or True for the defaults).
        self.coalesce = CoalescePolicy() if coalesce is True else coalesce
        self.backend: Optional[UpcxxBackend] = None
        self._ctl: Optional[MpiBackend] = None
        self.runtime: Optional[HiperRuntime] = None

    # ------------------------------------------------------------------
    def initialize(self, runtime: HiperRuntime) -> None:
        self.require_place_type(runtime, PlaceType.INTERCONNECT)
        self.runtime = runtime
        peers = self.ctx.shared.setdefault("upcxx-backends", {})
        self.backend = UpcxxBackend(
            self.ctx.mux, self.rank, peers, spawn_rpc=self._spawn_rpc
        )
        if self.coalesce is not None:
            self.backend.enable_coalescing(self.coalesce)
        self._ctl = MpiBackend(self.ctx.mux, self.rank, channel="upcxx-ctl")
        for api_name, fn in [
            ("upcxx_shared_array", self.shared_array),
            ("upcxx_rput", self.rput), ("upcxx_rget", self.rget),
            ("upcxx_rpc", self.rpc), ("upcxx_barrier", self.barrier),
        ]:
            self.export(runtime, api_name, fn)
        self._initialized = True

    def _spawn_rpc(self, body: Callable[[], Any]) -> Future:
        """Incoming RPC bodies become tasks on this rank's runtime, competing
        in the same deques as local work (unified scheduling)."""
        rt = self.runtime
        assert rt is not None
        fut = rt.spawn(
            body, module=self.name, name="upcxx-rpc",
            scope=rt._poll_scope(), return_future=True,
        )
        rt.stats.count(self.name, "rpc_in")
        assert fut is not None
        return fut

    # ------------------------------------------------------------------
    # shared objects and one-sided ops
    # ------------------------------------------------------------------
    def shared_array(self, shape, dtype=np.float64) -> "SharedArray":
        """Collective: every rank contributes one local block of a globally
        addressable array; returns this rank's handle."""
        b = self._backend()
        local = np.zeros(shape, dtype=dtype)
        gptr = b.register_shared(local)
        self.runtime.stats.count(self.name, "shared_array")
        return SharedArray(self, gptr.obj_id, local)

    def rput(self, data: Any, gptr: GlobalPtr) -> Future:
        self.runtime.stats.count(self.name, "rput")
        return self._backend().rput(data, gptr)

    def rget(self, gptr: GlobalPtr, count: int) -> Future:
        self.runtime.stats.count(self.name, "rget")
        return self._backend().rget(gptr, count)

    def rpc(self, target: int, fn: Callable[..., Any], *args) -> Future:
        self.runtime.stats.count(self.name, "rpc")
        return self._backend().rpc(target, fn, *args)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _coll_task(self, gen_factory: Callable[[], Any], what: str) -> Future:
        rt = self.runtime
        assert rt is not None
        fut = rt.spawn(
            gen_factory, place=rt.interconnect, module=self.name,
            name=f"upcxx-{what}", return_future=True,
        )
        rt.stats.count(self.name, what)
        assert fut is not None
        return fut

    def barrier_async(self) -> Future:
        c = self._ctl_backend()
        tag = c.next_collective_tag()
        return self._coll_task(lambda: coll.barrier(c, tag), "barrier")

    def barrier(self) -> None:
        self.barrier_async().wait()

    def allreduce_async(self, value: Any, op: Callable[[Any, Any], Any]) -> Future:
        c = self._ctl_backend()
        tag = c.next_collective_tag()
        return self._coll_task(lambda: coll.allreduce(c, value, op, tag), "allreduce")

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        return self.allreduce_async(value, op).wait()

    def broadcast_async(self, value: Any, root: int = 0) -> Future:
        c = self._ctl_backend()
        tag = c.next_collective_tag()
        return self._coll_task(lambda: coll.bcast(c, value, root, tag), "broadcast")

    def broadcast(self, value: Any, root: int = 0) -> Any:
        return self.broadcast_async(value, root).wait()

    # ------------------------------------------------------------------
    def _backend(self) -> UpcxxBackend:
        if self.backend is None:
            raise ModuleError("UPC++ module used before initialization")
        return self.backend

    def _ctl_backend(self) -> MpiBackend:
        if self._ctl is None:
            raise ModuleError("UPC++ module used before initialization")
        return self._ctl


class SharedArray:
    """This rank's block of a distributed shared array, plus global pointers
    to any rank's block."""

    __slots__ = ("_module", "obj_id", "local")

    def __init__(self, module: UpcxxModule, obj_id: int, local: np.ndarray):
        self._module = module
        self.obj_id = obj_id
        self.local = local

    def gptr(self, rank: int, offset: int = 0) -> GlobalPtr:
        return GlobalPtr(rank, self.obj_id, offset)

    def __repr__(self) -> str:
        return f"SharedArray(obj={self.obj_id}, local_shape={self.local.shape})"


def upcxx_factory(**kwargs) -> Callable[[Any], UpcxxModule]:
    """Module factory for :func:`repro.distrib.spmd_run`."""
    return lambda ctx: UpcxxModule(ctx, **kwargs)
