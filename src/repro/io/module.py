"""The checkpoint module — the paper's first named future-work extension
(§V: "a HiPER module for checkpointing of application state would enable
overlapping of checkpoint I/O with useful application work").

Built with nothing but the public module framework, proving the paper's
extensibility claim: it registers a place requirement (NVM or disk), a
polling service for asynchronous completions, copy handlers so ``async_copy``
can target storage places, and user-facing APIs:

- ``checkpoint_async(key, arrays) -> Future`` — snapshot application arrays
  at call time and write them out while application tasks keep running;
- ``restore_async(key) -> Future`` of the arrays;
- ``checkpoint_every(interval, provider)`` — a self-re-arming periodic
  checkpoint driven by the runtime's timer facility.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.io.storage import SimStore, StorageOp
from repro.modules.base import HiperModule
from repro.platform.place import Place, PlaceType
from repro.runtime.future import Future, Promise, when_all
from repro.runtime.polling import PollingService
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import ModuleError


class CheckpointModule(HiperModule):
    """Asynchronous checkpoint/restore onto NVM or disk places."""

    name = "checkpoint"
    capabilities = frozenset({"storage", "resilience"})

    def __init__(self, ctx=None, *, prefer: str = "nvm",
                 poll_interval: float = 1e-5):
        super().__init__()
        self.ctx = ctx
        self.prefer = prefer
        self._poll_interval = poll_interval
        self.store: Optional[SimStore] = None
        self.place: Optional[Place] = None
        self.polling: Optional[PollingService] = None
        self.runtime: Optional[HiperRuntime] = None
        self._manifest: Dict[str, List[Tuple[str, str, tuple]]] = {}
        self._periodic_stop: List[bool] = []

    # ------------------------------------------------------------------
    def initialize(self, runtime: HiperRuntime) -> None:
        order = ([PlaceType.NVM, PlaceType.DISK] if self.prefer == "nvm"
                 else [PlaceType.DISK, PlaceType.NVM])
        for kind in order:
            if runtime.model.has_type(kind):
                self.place = runtime.model.first_of_type(kind)
                break
        if self.place is None:
            raise ModuleError(
                "checkpoint module requires an NVM or disk place in the "
                f"platform model {runtime.model.name!r}"
            )
        self.runtime = runtime
        self.store = SimStore.from_place(runtime.executor, self.place,
                                         on_complete=self._on_progress)
        self.polling = PollingService(
            runtime, self.place, module=self.name,
            interval=self._poll_interval, name="ckpt-poll",
        )
        # async_copy to/from the storage place goes through this module
        # (same special-purpose registration the CUDA module uses).
        runtime.register_copy_handler(
            PlaceType.SYSTEM_MEM, self.place.kind, self._handle_copy_in
        )
        self.export(runtime, "checkpoint_async", self.checkpoint_async)
        self.export(runtime, "restore_async", self.restore_async)
        self._initialized = True

    def finalize(self, runtime: HiperRuntime) -> None:
        self._periodic_stop[:] = [True] * len(self._periodic_stop)
        if self.polling is not None and self.polling.outstanding:
            raise ModuleError(
                f"checkpoint module finalized with {self.polling.outstanding} "
                "incomplete I/O operations"
            )

    def _on_progress(self) -> None:
        if self.polling is not None:
            self.polling.kick()

    # ------------------------------------------------------------------
    def _op_future(self, op: StorageOp, what: str) -> Future:
        rt = self.runtime
        assert rt is not None and self.polling is not None
        promise = Promise(name=f"ckpt-{what}")
        self.polling.watch(
            lambda: (True, op.value) if op.test() else (False, None), promise
        )
        rt.stats.count(self.name, what)
        return promise.get_future()

    # ------------------------------------------------------------------
    def checkpoint_async(self, key: str,
                         arrays: Dict[str, np.ndarray]) -> Future:
        """Write a named set of arrays; future satisfied when all are
        durable. Arrays are snapshotted at call time, so the application may
        keep mutating them — the paper's overlap-with-useful-work property."""
        store = self._store()
        if not arrays:
            raise ModuleError("checkpoint_async needs at least one array")
        futs = []
        manifest = []
        for name, arr in arrays.items():
            okey = f"{key}/{name}"
            manifest.append((name, str(arr.dtype), arr.shape))
            futs.append(self._op_future(store.write(okey, arr), "write"))
        self._manifest[key] = manifest
        out = Promise(name=f"ckpt-{key}")
        when_all(futs).on_ready(lambda f: _forward(f, out, value=key))
        return out.get_future()

    def restore_async(self, key: str) -> Future:
        """Future of ``{name: array}`` for a previously written checkpoint."""
        store = self._store()
        manifest = self._manifest.get(key)
        if manifest is None:
            raise ModuleError(f"no checkpoint {key!r} on this rank")
        futs = []
        names = []
        for name, dtype, shape in manifest:
            names.append(name)
            futs.append(self._op_future(
                store.read(f"{key}/{name}", dtype, shape), "read"))
        out = Promise(name=f"restore-{key}")

        def _collect(f: Future) -> None:
            try:
                values = f.value()
            except BaseException as exc:  # noqa: BLE001
                out.put_exception(exc)
                return
            out.put(dict(zip(names, values)))

        when_all(futs).on_ready(_collect)
        return out.get_future()

    def checkpoints(self) -> List[str]:
        return sorted(self._manifest)

    def checkpoint_every(
        self,
        interval: float,
        provider: Callable[[int], Optional[Dict[str, np.ndarray]]],
        *,
        key_prefix: str = "auto",
    ) -> Callable[[], None]:
        """Periodic checkpointing: every ``interval`` virtual seconds, call
        ``provider(epoch)``; a dict return is written as
        ``{key_prefix}-{epoch}``, ``None`` skips the epoch. Returns a stop
        callable. I/O overlaps application work throughout."""
        rt = self.runtime
        assert rt is not None
        slot = len(self._periodic_stop)
        self._periodic_stop.append(False)

        def _tick(epoch: int) -> None:
            if self._periodic_stop[slot] or rt.is_shutdown:
                return
            arrays = provider(epoch)
            if arrays:
                self.checkpoint_async(f"{key_prefix}-{epoch}", arrays)
            rt.executor.call_later(interval, lambda: _tick(epoch + 1))

        rt.executor.call_later(interval, lambda: _tick(0))
        rt.stats.count(self.name, "periodic_armed")

        def stop() -> None:
            self._periodic_stop[slot] = True

        return stop

    # ------------------------------------------------------------------
    def _handle_copy_in(self, rt, dst_buf, dst_place, src_buf, src_place,
                        nbytes: int) -> Future:
        """async_copy(host -> storage place): dst_buf is the object key."""
        if not isinstance(dst_buf, str):
            raise ModuleError(
                "async_copy to a storage place takes the object key string "
                "as the destination buffer"
            )
        store = self._store()
        flat = np.ascontiguousarray(src_buf).reshape(-1)
        view = flat.view(np.uint8)[:nbytes]
        return self._op_future(store.write(dst_buf, view), "copy_in")

    def _store(self) -> SimStore:
        if self.store is None:
            raise ModuleError("checkpoint module used before initialization")
        return self.store


def _forward(src: Future, dst: Promise, value: Any = None) -> None:
    try:
        src.value()
        dst.put(value)
    except BaseException as exc:  # noqa: BLE001
        dst.put_exception(exc)


def checkpoint_factory(**kwargs) -> Callable[[Any], CheckpointModule]:
    """Module factory for :func:`repro.distrib.spmd_run`."""
    return lambda ctx: CheckpointModule(ctx, **kwargs)
