"""Storage substrate and the checkpoint module (paper §V future work)."""

from repro.io.module import CheckpointModule, checkpoint_factory
from repro.io.storage import SimStore, StorageError, StorageOp

__all__ = [
    "CheckpointModule",
    "checkpoint_factory",
    "SimStore",
    "StorageError",
    "StorageOp",
]
