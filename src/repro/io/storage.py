"""Simulated storage devices: NVM and parallel-filesystem models.

The paper's platform model (§I-A) includes node-local flash/NVM and a shared
filesystem, and §V names a checkpointing module as the first expected
third-party extension. This substrate provides the devices those modules
schedule onto: byte-addressable stores with bandwidth/latency cost models,
whose writes complete as events (the same request-plus-polling completion
flow as the CUDA and MPI modules).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.util.errors import ConfigError, HiperError


class StorageError(HiperError):
    """Bad handle, out-of-space, or write-after-free on a simulated store."""


class StorageOp:
    """Completion handle for one storage operation (read or write)."""

    __slots__ = ("kind", "done", "completion_time", "value")

    def __init__(self, kind: str):
        self.kind = kind
        self.done = False
        self.completion_time = 0.0
        self.value: Any = None

    def test(self) -> bool:
        return self.done


class SimStore:
    """One storage device: an object store with a serialized write channel.

    ``write``/``read`` costs follow ``latency + nbytes / bandwidth``; the
    device services one transfer at a time (availability-time resource, like
    the GPU DMA engines). Contents are real bytes — checkpoints restore
    bit-exactly.
    """

    def __init__(
        self,
        executor,
        name: str = "nvm",
        *,
        capacity_bytes: int = 16 * 2**30,
        bandwidth: float = 2e9,
        latency: float = 2e-5,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        if capacity_bytes <= 0 or bandwidth <= 0 or latency < 0:
            raise ConfigError("invalid storage device parameters")
        self.executor = executor
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.on_complete = on_complete
        self.used_bytes = 0
        self._objects: Dict[str, bytes] = {}
        self._avail = 0.0
        self._op_seq = itertools.count()
        self.writes = 0
        self.reads = 0
        #: Optional fault-injection hook (``repro.resilience``): called as
        #: ``hook(op_kind, key, nbytes)`` before a write takes effect; a
        #: truthy return fails the write with StorageError. None in
        #: production.
        self.fault_hook: Optional[Callable[[str, str, int], bool]] = None
        self.write_faults = 0

    # ------------------------------------------------------------------
    def _schedule(self, nbytes: int, op: StorageOp,
                  apply_fn: Callable[[], Any]) -> StorageOp:
        now = self.executor.now()
        start = max(now, self._avail)
        finish = start + self.latency + nbytes / self.bandwidth
        self._avail = finish

        def _complete() -> None:
            op.value = apply_fn()
            op.done = True
            op.completion_time = finish
            if self.on_complete is not None:
                self.on_complete()

        self.executor.call_later(max(0.0, finish - now), _complete)
        return op

    def write(self, key: str, data: np.ndarray) -> StorageOp:
        """Durably store a snapshot of ``data`` under ``key`` (overwrites)."""
        if not isinstance(data, np.ndarray):
            raise StorageError(f"storage writes take numpy arrays, got {type(data)!r}")
        blob = data.tobytes()  # snapshot at issue time
        old = len(self._objects.get(key, b""))
        new_used = self.used_bytes - old + len(blob)
        if new_used > self.capacity_bytes:
            raise StorageError(
                f"device {self.name!r} full: {new_used} > {self.capacity_bytes}"
            )
        hook = self.fault_hook
        if hook is not None and hook("write", key, len(blob)):
            # Fail at issue, before any state mutates: the previous object
            # under ``key`` (if any) stays intact, like a failed O_TMPFILE
            # rename. Callers retry or fall back to the prior checkpoint.
            self.write_faults += 1
            raise StorageError(
                f"injected write failure on device {self.name!r} "
                f"key {key!r} ({len(blob)} bytes)"
            )
        self.writes += 1
        # Contents become visible at issue (page-cache semantics; the
        # snapshot is already taken); the op's completion marks durability.
        self._objects[key] = blob
        self.used_bytes = new_used
        return self._schedule(len(blob), StorageOp("write"),
                              lambda: len(blob))

    def read(self, key: str, dtype, shape) -> StorageOp:
        """Fetch the object back as an array of the given dtype/shape."""
        if key not in self._objects:
            raise StorageError(f"no object {key!r} on device {self.name!r}")
        blob = self._objects[key]
        self.reads += 1

        def _apply() -> np.ndarray:
            arr = np.frombuffer(blob, dtype=dtype).copy()
            return arr.reshape(shape)

        return self._schedule(len(blob), StorageOp("read"), _apply)

    def delete(self, key: str) -> None:
        blob = self._objects.pop(key, None)
        if blob is None:
            raise StorageError(f"no object {key!r} on device {self.name!r}")
        self.used_bytes -= len(blob)

    def exists(self, key: str) -> bool:
        return key in self._objects

    def keys(self):
        return sorted(self._objects)

    @classmethod
    def from_place(cls, executor, place, on_complete=None) -> "SimStore":
        p = place.properties
        kind_defaults = {
            "nvm": (6e9, 5e-6),
            "disk": (1.2e9, 1e-4),
        }
        bw, lat = kind_defaults.get(place.kind.value, (2e9, 2e-5))
        return cls(
            executor, name=place.name,
            capacity_bytes=int(p.get("capacity_bytes", 16 * 2**30)),
            bandwidth=float(p.get("bandwidth_bytes_per_s", bw)),
            latency=float(p.get("latency_s", lat)),
            on_complete=on_complete,
        )

    def __repr__(self) -> str:
        return (
            f"SimStore({self.name!r}, used={self.used_bytes}/"
            f"{self.capacity_bytes}, objects={len(self._objects)})"
        )
