"""Seeded schedule-exploration strategies for the interleaving executor.

A strategy decides, at every scheduling point, which maybe-ready logical
worker takes the next step. Everything a strategy does is driven by one seed,
so an entire interleaving is reproducible from ``(strategy name, seed)`` —
the property the race-hunt harness relies on to replay failures bit-for-bit.

Three families ship, mirroring the systematic-concurrency-testing literature:

- ``random`` — uniform random walk over the enabled workers; the baseline
  sweep strategy (most schedule-sensitive bugs fall to a few hundred seeds).
- ``pct`` — PCT-style priority scheduling: workers get random priorities,
  the highest-priority enabled worker always runs, and ``depth`` seeded
  change points demote the running worker mid-run. Finds bugs that need a
  specific *small* number of ordering inversions with provable probability.
- ``pbound`` — preemption-bounded exploration: the current worker keeps
  running until it has nothing to do, with at most ``bound`` seeded
  preemptions injected; models the "few context switches" heuristic.

``replay`` is the fourth, internal strategy: it follows a recorded schedule
exactly and fails loudly on divergence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigError, HiperError

#: A schedule entry: (rank, wid, task name, per-run task sequence number).
ScheduleEntry = Tuple[int, int, str, int]


class VerificationError(HiperError):
    """A verification-harness failure (divergent replay, failed check)."""


class Strategy:
    """Base class: picks the next worker among the enabled candidates.

    ``candidates`` is always non-empty and sorted by ``(rank, wid)``, so a
    strategy's choices depend only on its own seeded state — never on set
    iteration order.
    """

    name = "abstract"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def choose(self, candidates: Sequence) -> object:
        raise NotImplementedError

    def on_no_work(self, worker) -> None:
        """The chosen worker's search round came up empty (it leaves the
        enabled set). Strategies tracking a 'current' worker override this."""

    def describe(self) -> str:
        return f"{self.name}(seed={self.seed})"


class RandomWalkStrategy(Strategy):
    """Uniform random choice at every scheduling point."""

    name = "random"

    def choose(self, candidates: Sequence) -> object:
        if len(candidates) == 1:
            return candidates[0]
        return candidates[int(self._rng.integers(len(candidates)))]


class PCTStrategy(Strategy):
    """Probabilistic concurrency testing, adapted to workers.

    Workers draw distinct random priorities on first sight; the scheduler
    always runs the highest-priority enabled worker. ``depth - 1`` change
    points (scheduling-step indices over ``horizon``) each demote the then-
    running worker below every other priority, forcing an ordering inversion.
    """

    name = "pct"

    def __init__(self, seed: int = 0, depth: int = 3, horizon: int = 512):
        super().__init__(seed)
        if depth < 1:
            raise ConfigError(f"pct depth must be >= 1, got {depth}")
        self.depth = depth
        self.horizon = horizon
        self._prio = {}
        self._floor = 0.0  # demoted workers stack below this
        self._step = 0
        npoints = depth - 1
        if npoints:
            self._change_steps = set(
                int(s) for s in self._rng.choice(
                    max(horizon, npoints), size=npoints, replace=False)
            )
        else:
            self._change_steps = set()

    def _priority(self, worker) -> float:
        key = (worker.rank, worker.wid)
        if key not in self._prio:
            self._prio[key] = float(self._rng.random()) + 1.0
        return self._prio[key]

    def choose(self, candidates: Sequence) -> object:
        top = max(candidates, key=lambda w: (self._priority(w), -w.rank, -w.wid))
        if self._step in self._change_steps:
            # Demote the would-run worker below everyone seen so far.
            self._floor -= 1.0
            self._prio[(top.rank, top.wid)] = self._floor
            top = max(candidates,
                      key=lambda w: (self._priority(w), -w.rank, -w.wid))
        self._step += 1
        return top


class PreemptionBoundedStrategy(Strategy):
    """Run the current worker to exhaustion, with at most ``bound`` seeded
    preemptions (probability ``p_preempt`` per scheduling point)."""

    name = "pbound"

    def __init__(self, seed: int = 0, bound: int = 2, p_preempt: float = 0.05):
        super().__init__(seed)
        if bound < 0:
            raise ConfigError(f"pbound bound must be >= 0, got {bound}")
        self.bound = bound
        self.p_preempt = p_preempt
        self._current: Optional[object] = None
        self._preemptions = 0

    def choose(self, candidates: Sequence) -> object:
        cur = self._current
        if cur is not None and any(c is cur for c in candidates):
            if (self._preemptions < self.bound and len(candidates) > 1
                    and self._rng.random() < self.p_preempt):
                self._preemptions += 1
                others = [c for c in candidates if c is not cur]
                cur = others[int(self._rng.integers(len(others)))]
        else:
            cur = candidates[int(self._rng.integers(len(candidates)))]
        self._current = cur
        return cur

    def on_no_work(self, worker) -> None:
        if self._current is worker:
            self._current = None


class ReplayStrategy(Strategy):
    """Follow a recorded schedule's ``(rank, wid)`` choices exactly."""

    name = "replay"

    def __init__(self, schedule: Sequence[ScheduleEntry]):
        super().__init__(0)
        self._schedule: List[ScheduleEntry] = list(schedule)
        self._pos = 0

    def choose(self, candidates: Sequence) -> object:
        if self._pos >= len(self._schedule):
            raise VerificationError(
                f"replay ran past the recorded schedule "
                f"({len(self._schedule)} entries)"
            )
        rank, wid = self._schedule[self._pos][0], self._schedule[self._pos][1]
        self._pos += 1
        for c in candidates:
            if c.rank == rank and c.wid == wid:
                return c
        raise VerificationError(
            f"replay diverged at step {self._pos - 1}: recorded worker "
            f"r{rank}w{wid} is not enabled "
            f"(enabled: {[(c.rank, c.wid) for c in candidates]})"
        )


STRATEGIES = {
    "random": RandomWalkStrategy,
    "pct": PCTStrategy,
    "pbound": PreemptionBoundedStrategy,
}


def make_strategy(name: str, seed: int = 0, **kwargs) -> Strategy:
    """Build a strategy by CLI name (``random``/``pct``/``pbound``)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    return cls(seed=seed, **kwargs)
