"""Hybrid lockset + happens-before race detector.

A :class:`RaceDetector` is a :class:`~repro.runtime.instrument.Probe` that
watches the policy core's shared-state accesses (deque slot contents,
occupancy mask/counter updates, finish-scope pending counts) and reports
pairs of accesses that could race on a real multiprocessor:

- **Locksets** (Eraser-style): each access records the set of tracked locks
  its logical thread held. Two accesses to the same location from different
  threads, at least one a write, with *disjoint* locksets are a candidate
  race.
- **Happens-before** (vector clocks): candidates are discarded when a true
  synchronization edge orders them. Crucially, *lock acquire/release do NOT
  create happens-before edges here* — under the cooperative interleaving
  executor every instruction is serialized, so lock-induced HB would order
  everything and hide every real race. Only genuine payload-carrying sync
  operations do: promise satisfaction (release) to future observation
  (acquire), which is how the runtime publishes results across threads.

This is the hybrid design of O'Callahan & Choi: locksets supply coverage
(one witnessed schedule implies races in many), happens-before supplies
precision (message-passing idioms aren't flagged).

The detector also tracks :class:`~repro.runtime.finish.FinishScope`
lifetimes for the leak invariant, and keeps a *benign-read whitelist*: the
policy core deliberately reads ``PlaceDeques.mask``/``ready`` without a lock
(bounded-stale by design, see ``docs/concurrency.md``); those reads are
counted but never reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.runtime.context import current_context
from repro.runtime.instrument import Location, Probe

#: (kind, field) pairs whose lock-free *reads* are documented benign.
DEFAULT_BENIGN_READS = frozenset({
    ("place", "mask"),
    ("place", "ready"),
})

#: Thread id for probe events fired outside any task (engine/timer context).
ENGINE_TID = "@engine"


@dataclass(frozen=True)
class Access:
    """One recorded access to a shared location."""

    tid: Any
    vc: Dict[Any, int]
    locks: FrozenSet[int]
    is_write: bool
    step: int

    def __str__(self) -> str:
        kind = "write" if self.is_write else "read"
        held = ("{" + ", ".join(f"#{l}" for l in sorted(self.locks)) + "}"
                if self.locks else "{}")
        return f"{kind} by {self.tid} at step {self.step}, locks {held}"


@dataclass
class RaceReport:
    """Two unordered, lockset-disjoint accesses to one location."""

    loc: Location
    first: Access
    second: Access

    def describe(self) -> str:
        kind, obj, fld = self.loc
        return (
            f"race on {kind} {obj!r} field {fld!r}:\n"
            f"    {self.first}\n"
            f"    {self.second}\n"
            f"    (no common lock, no happens-before edge)"
        )


def _current_tid() -> Any:
    ctx = current_context()
    if ctx is not None and ctx.worker is not None:
        return ("w", ctx.worker.rank, ctx.worker.wid)
    return ENGINE_TID


class RaceDetector(Probe):
    """Hybrid lockset/happens-before detector over instrument hook events.

    One detector observes one run; install it with
    :func:`repro.runtime.instrument.probed`. Reports accumulate in
    :attr:`races` (deduplicated per location/thread-pair/access-kind so a
    racy loop doesn't bury the output).
    """

    def __init__(self, benign_reads: Optional[Set[Tuple[str, str]]] = None):
        self.benign_reads = (DEFAULT_BENIGN_READS if benign_reads is None
                             else frozenset(benign_reads))
        self.races: List[RaceReport] = []
        self.benign_suppressed = 0
        self.accesses_seen = 0
        self._step = 0
        # per logical thread
        self._vc: Dict[Any, Dict[Any, int]] = {}
        self._held: Dict[Any, Set[int]] = {}
        # per sync key: joined clock of all releases so far
        self._sync_vc: Dict[Any, Dict[Any, int]] = {}
        # per location: last write / last read per thread
        self._last_write: Dict[Location, Dict[Any, Access]] = {}
        self._last_read: Dict[Location, Dict[Any, Access]] = {}
        self._reported: Set[Tuple] = set()
        # scope leak tracking
        self._open_scopes: Dict[int, Any] = {}
        self.scopes_created = 0
        # CPython reuses id() of freed objects, so "scope" locations keyed by
        # raw id would conflate a dead scope with a new one at the same
        # address (distinct locks -> false disjoint-lockset race). Translate
        # raw ids to a per-creation generation id via on_scope_created.
        self._scope_gen: Dict[int, int] = {}

    # -- thread-state helpers -------------------------------------------
    def _clock(self, tid: Any) -> Dict[Any, int]:
        vc = self._vc.get(tid)
        if vc is None:
            vc = {tid: 0}
            self._vc[tid] = vc
        return vc

    @staticmethod
    def _happens_before(earlier: Access, later_vc: Dict[Any, int]) -> bool:
        """True iff ``earlier`` is ordered before the thread state with
        clock ``later_vc`` by the recorded synchronization edges."""
        return earlier.vc.get(earlier.tid, 0) <= later_vc.get(earlier.tid, -1)

    # -- Probe: locks (locksets ONLY, never happens-before) -------------
    def on_lock_acquire(self, lock) -> None:
        self._held.setdefault(_current_tid(), set()).add(lock.lid)

    def on_lock_release(self, lock) -> None:
        held = self._held.get(_current_tid())
        if held is not None:
            held.discard(lock.lid)

    # -- Probe: true synchronization (happens-before edges) -------------
    def on_sync_release(self, key: Any) -> None:
        tid = _current_tid()
        vc = self._clock(tid)
        vc[tid] = vc.get(tid, 0) + 1
        joined = self._sync_vc.setdefault(key, {})
        for t, c in vc.items():
            if c > joined.get(t, -1):
                joined[t] = c

    def on_sync_acquire(self, key: Any) -> None:
        src = self._sync_vc.get(key)
        if not src:
            return
        vc = self._clock(_current_tid())
        for t, c in src.items():
            if c > vc.get(t, -1):
                vc[t] = c

    # -- Probe: shared-state accesses ------------------------------------
    def on_access(self, loc: Location, is_write: bool,
                  benign: bool = False) -> None:
        self.accesses_seen += 1
        if not is_write and (loc[0], loc[2]) in self.benign_reads:
            self.benign_suppressed += 1
            return
        if loc[0] == "scope":
            loc = ("scope", self._scope_gen.get(loc[1], loc[1]), loc[2])
        tid = _current_tid()
        self._step += 1
        acc = Access(
            tid=tid,
            vc=dict(self._clock(tid)),
            locks=frozenset(self._held.get(tid) or ()),
            is_write=is_write,
            step=self._step,
        )
        # A write races with prior reads AND writes; a read only with writes.
        self._check(loc, acc, self._last_write.get(loc))
        if is_write:
            self._check(loc, acc, self._last_read.get(loc))
            self._last_write.setdefault(loc, {})[tid] = acc
        else:
            self._last_read.setdefault(loc, {})[tid] = acc

    def _check(self, loc: Location, acc: Access,
               prior: Optional[Dict[Any, Access]]) -> None:
        if not prior:
            return
        for tid, old in prior.items():
            if tid == acc.tid:
                continue
            if acc.locks & old.locks:
                continue  # a common lock serializes them
            if self._happens_before(old, acc.vc):
                continue  # a sync edge orders them
            key = (loc, *sorted((str(old.tid), str(acc.tid))),
                   old.is_write, acc.is_write)
            if key in self._reported:
                continue
            self._reported.add(key)
            self.races.append(RaceReport(loc=loc, first=old, second=acc))

    # -- Probe: finish-scope lifetimes -----------------------------------
    def on_scope_created(self, scope: Any) -> None:
        self.scopes_created += 1
        self._scope_gen[id(scope)] = self.scopes_created
        self._open_scopes[id(scope)] = scope

    def on_scope_closed(self, scope: Any) -> None:
        self._open_scopes.pop(id(scope), None)

    def leaked_scopes(self) -> List[Any]:
        """Scopes created but never closed, excluding the per-rank daemon
        scopes that live for the runtime's whole lifetime by design."""
        return [
            s for s in self._open_scopes.values()
            if not (getattr(s, "name", "") or "").startswith("daemon-")
        ]

    # -- reporting --------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"accesses observed: {self.accesses_seen} "
            f"(benign reads suppressed: {self.benign_suppressed})",
            f"races detected: {len(self.races)}",
        ]
        lines.extend("  " + r.describe() for r in self.races)
        leaks = self.leaked_scopes()
        if leaks:
            lines.append(f"leaked finish scopes: "
                         f"{[getattr(s, 'name', '?') for s in leaks]}")
        return "\n".join(lines)
