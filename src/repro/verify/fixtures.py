"""Known-buggy fixtures the harness must catch (detector ground truth).

:class:`RacyWorkerDeque` reproduces a classic occupancy-index bug: it updates
its place's shared ``mask``/``ready`` index while holding only its *own slot
lock*, skipping the place's ``index_lock``. Two workers touching different
slots of the same place then mutate the shared mask under disjoint locksets —
a textbook write/write race (lost bit-set/clear ⇒ phantom or invisible work).
The production :class:`~repro.runtime.deques.WorkerDeque` nests
``index_lock`` inside the slot lock precisely to prevent this.

The fixture still reports its accesses to the installed probe honestly (the
bug is the missing lock, not missing instrumentation), so the race detector
sees locksets ``{slot_A}`` vs ``{slot_B}`` on ``("place", name, "mask")`` and
must flag them. ``python -m repro verify --planted`` and the harness tests use
this as the rediscovery check: a detector change that stops catching it is a
regression.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.runtime import instrument
from repro.runtime.deques import WorkerDeque

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import HiperRuntime
    from repro.runtime.task import Task


class RacyWorkerDeque(WorkerDeque):
    """Deliberately buggy slot: occupancy-index updates skip ``index_lock``."""

    __slots__ = ()

    def push(self, task: "Task") -> bool:
        with self._lock:
            items = self._items
            newly = not items
            items.append(task)
            pd = self._place
            p = instrument.PROBE
            if p is not None:
                p.on_access(self._loc("items"), True)
            if pd is not None:
                # BUG (planted): mask/ready mutated under the slot lock only.
                if p is not None:
                    p.on_access(self._loc("mask"), True)
                    p.on_access(self._loc("ready"), True)
                pd.mask |= self._bit
                pd.ready += 1
            return newly

    def pop(self) -> Optional["Task"]:
        with self._lock:
            items = self._items
            if not items:
                return None
            task = items.pop()
            pd = self._place
            p = instrument.PROBE
            if p is not None:
                p.on_access(self._loc("items"), True)
            if pd is not None:
                if p is not None:
                    p.on_access(self._loc("mask"), True)
                    p.on_access(self._loc("ready"), True)
                pd.ready -= 1
                if not items:
                    pd.mask &= ~self._bit
            return task

    def steal(self) -> Optional["Task"]:
        with self._lock:
            items = self._items
            if not items:
                return None
            task = items.popleft()
            pd = self._place
            p = instrument.PROBE
            if p is not None:
                p.on_access(self._loc("items"), True)
            if pd is not None:
                if p is not None:
                    p.on_access(self._loc("mask"), True)
                    p.on_access(self._loc("ready"), True)
                pd.ready -= 1
                if not items:
                    pd.mask &= ~self._bit
            return task


def install_racy_slots(runtime: "HiperRuntime") -> int:
    """Swap every deque slot of ``runtime`` for a :class:`RacyWorkerDeque`.

    Must run before any work is enqueued (slots are assumed empty). Returns
    the number of slots replaced.
    """
    replaced = 0
    for pd in runtime.deques._by_place_id.values():
        for i, slot in enumerate(pd.slots):
            racy = RacyWorkerDeque.__new__(RacyWorkerDeque)
            racy._lock = slot._lock
            racy._items = slot._items
            racy._place = slot._place
            racy._bit = slot._bit
            pd.slots[i] = racy
            replaced += 1
    return replaced
