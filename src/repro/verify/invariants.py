"""Quiesce-time conservation invariants (the differential checker's oracle).

After a runtime has quiesced (its root work completed and its engine drained)
three conservation laws must hold regardless of engine or schedule:

1. **Task conservation** — every task spawned was eventually executed to
   completion, failed through the normal failure path, or explicitly killed
   by the resilience layer: ``spawned == completed + failed + killed``.
2. **Empty deques** — no ready task is still sitting in any slot
   (``deques.total_ready() == 0``); leftover work means the engine declared
   quiescence too early or the occupancy index lost an update.
3. **No leaked finish scopes** — every non-daemon scope opened during the run
   was closed (checked via the race detector's scope ledger when one is
   installed; the per-rank ``daemon-r{rank}`` scope lives forever by design).

Violations are collected, not raised, so a differential run can report *all*
broken laws for a schedule at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import HiperRuntime
    from repro.verify.racedetect import RaceDetector


@dataclass
class InvariantReport:
    """Outcome of the quiesce-invariant check for one runtime."""

    spawned: int = 0
    completed: int = 0
    failed: int = 0
    killed: int = 0
    ready_left: int = 0
    leaked_scopes: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        head = (
            f"spawned={self.spawned} completed={self.completed} "
            f"failed={self.failed} killed={self.killed} "
            f"ready_left={self.ready_left}"
        )
        if self.ok:
            return f"invariants OK ({head})"
        return "invariant violations ({}):\n  - {}".format(
            head, "\n  - ".join(self.violations)
        )


def check_quiesce(runtime: "HiperRuntime",
                  detector: Optional["RaceDetector"] = None) -> InvariantReport:
    """Check the conservation laws on a quiesced ``runtime``."""
    counters = runtime.stats.counters
    rep = InvariantReport()
    rep.spawned = sum(
        n for (mod, op), n in counters.items() if op == "tasks_spawned"
    )
    rep.completed = counters.get(("core", "tasks_completed"), 0)
    rep.failed = counters.get(("core", "tasks_failed"), 0)
    rep.killed = counters.get(("resilience", "tasks_killed"), 0)
    rep.ready_left = runtime.deques.total_ready()

    accounted = rep.completed + rep.failed + rep.killed
    if rep.spawned != accounted:
        rep.violations.append(
            f"task conservation broken: spawned={rep.spawned} but "
            f"completed+failed+killed={accounted}"
        )
    if rep.ready_left != 0:
        rep.violations.append(
            f"deques not empty at quiesce: {rep.ready_left} ready task(s) "
            f"left ({runtime.deques.snapshot()})"
        )
    if detector is not None:
        leaks = detector.leaked_scopes()
        if leaks:
            rep.leaked_scopes = [
                getattr(s, "name", "?") or "?" for s in leaks
            ]
            rep.violations.append(
                f"leaked finish scopes: {rep.leaked_scopes}"
            )
    return rep
