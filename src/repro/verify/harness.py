"""Race-hunt driver: explore seeds, detect, replay bit-for-bit.

:func:`run_once` runs one workload under the
:class:`~repro.verify.interleave.InterleaveExecutor` with a seeded strategy
and a :class:`~repro.verify.racedetect.RaceDetector` installed, then checks
the quiesce invariants. :func:`hunt` sweeps seeds and stops at the first
failing one; :func:`replay` re-runs a seed and proves the interleaving is
reproduced bit-for-bit (schedule digests must match).

The default workload is a *spawn storm*: nested finish scopes fanning tasks
out across workers, with futures carrying values back — enough cross-worker
push/steal and promise traffic to exercise every instrumented path, small
enough that a several-hundred-seed sweep finishes in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.platform.hwloc import discover, machine
from repro.runtime.api import async_, async_future, finish
from repro.runtime.instrument import probed
from repro.runtime.runtime import HiperRuntime
from repro.verify.interleave import InterleaveExecutor
from repro.verify.invariants import InvariantReport, check_quiesce
from repro.verify.racedetect import RaceDetector, RaceReport
from repro.verify.strategies import (
    ReplayStrategy,
    ScheduleEntry,
    VerificationError,
    make_strategy,
)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def spawn_storm(fanout: int = 4, depth: int = 3) -> Callable[[], int]:
    """A nested fan-out workload: each level opens a finish scope and spawns
    ``fanout`` children, leaves return values through futures. Returns the
    root body; its result is the total leaf count (a determinism oracle)."""

    def leaf() -> int:
        return 1

    def node(level: int) -> int:
        if level == 0:
            return 1
        counts: List[int] = []
        futs: List[Any] = []

        def body() -> None:
            for i in range(fanout):
                if level == 1:
                    # Leaves return through futures (promise/observe sync
                    # edges exercise the detector's happens-before path).
                    futs.append(async_future(leaf, name=f"leaf-{i}"))
                else:
                    async_(lambda lv=level: counts.append(node(lv - 1)),
                           name=f"node-l{level}-{i}")

        finish(body, name=f"storm-l{level}")
        # All children joined: futures are satisfied, counts fully appended.
        return sum(counts) + sum(f.value() for f in futs)

    def root() -> int:
        return node(depth)

    root.__name__ = f"spawn_storm_f{fanout}d{depth}"
    return root


def expected_storm_total(fanout: int = 4, depth: int = 3) -> int:
    total = 1
    for _ in range(depth):
        total *= fanout
    return total


# ----------------------------------------------------------------------
# outcomes
# ----------------------------------------------------------------------
@dataclass
class HuntOutcome:
    """Everything one verification run produced."""

    strategy: str
    seed: int
    result: Any
    digest: str
    schedule: List[ScheduleEntry]
    races: List[RaceReport]
    invariants: InvariantReport
    benign_suppressed: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.races and self.invariants.ok and self.error is None

    def describe(self) -> str:
        status = "OK" if self.ok else "FAIL"
        lines = [
            f"[{status}] strategy={self.strategy} seed={self.seed} "
            f"steps={len(self.schedule)} digest={self.digest[:16]}"
        ]
        if self.error:
            lines.append(f"  error: {self.error}")
        for r in self.races:
            lines.append("  " + r.describe().replace("\n", "\n  "))
        if not self.invariants.ok:
            lines.append("  " + self.invariants.describe())
        return "\n".join(lines)


@dataclass
class HuntResult:
    """A seed sweep's aggregate."""

    outcomes: List[HuntOutcome] = field(default_factory=list)

    @property
    def first_failure(self) -> Optional[HuntOutcome]:
        for o in self.outcomes:
            if not o.ok:
                return o
        return None

    @property
    def ok(self) -> bool:
        return self.first_failure is None


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def _run_with_executor(
    executor: InterleaveExecutor,
    workload: Callable[[], Any],
    *,
    workers: int,
    planted: bool,
    strategy_name: str,
    seed: int,
) -> HuntOutcome:
    model = discover(machine("workstation"), num_workers=workers,
                     with_interconnect=False)
    rt = HiperRuntime(model, executor).start()
    if planted:
        from repro.verify.fixtures import install_racy_slots

        install_racy_slots(rt)
    detector = RaceDetector()
    result: Any = None
    error: Optional[str] = None
    try:
        with probed(detector):
            try:
                result = rt.run(workload, name=getattr(
                    workload, "__name__", "verify-root"))
            except VerificationError:
                raise
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                error = f"{type(exc).__name__}: {exc}"
            invariants = check_quiesce(rt, detector)
    finally:
        rt.shutdown()
        executor.shutdown()
    return HuntOutcome(
        strategy=strategy_name,
        seed=seed,
        result=result,
        digest=executor.schedule_digest(),
        schedule=list(executor.schedule),
        races=list(detector.races),
        invariants=invariants,
        benign_suppressed=detector.benign_suppressed,
        error=error,
    )


def run_once(
    strategy: str = "random",
    seed: int = 0,
    *,
    workers: int = 4,
    planted: bool = False,
    workload: Optional[Callable[[], Any]] = None,
    **strategy_kwargs: Any,
) -> HuntOutcome:
    """One seeded exploration run; see :class:`HuntOutcome`."""
    ex = InterleaveExecutor(make_strategy(strategy, seed, **strategy_kwargs))
    return _run_with_executor(
        ex, workload or spawn_storm(), workers=workers, planted=planted,
        strategy_name=strategy, seed=seed,
    )


def hunt(
    strategy: str = "random",
    seeds: int = 20,
    *,
    workers: int = 4,
    planted: bool = False,
    workload_factory: Optional[Callable[[], Callable[[], Any]]] = None,
    stop_on_failure: bool = True,
    **strategy_kwargs: Any,
) -> HuntResult:
    """Sweep seeds ``0..seeds-1``; by default stop at the first failure
    (its seed is the bit-for-bit repro handle)."""
    res = HuntResult()
    for seed in range(seeds):
        wl = workload_factory() if workload_factory else spawn_storm()
        out = run_once(strategy, seed, workers=workers, planted=planted,
                       workload=wl, **strategy_kwargs)
        res.outcomes.append(out)
        if stop_on_failure and not out.ok:
            break
    return res


def replay(
    outcome: HuntOutcome,
    *,
    workers: int = 4,
    planted: bool = False,
    workload: Optional[Callable[[], Any]] = None,
) -> HuntOutcome:
    """Re-run an outcome two ways and prove reproducibility.

    First re-runs from the *seed* (same strategy construction) and checks the
    schedule digest matches bit-for-bit; raises
    :class:`~repro.verify.strategies.VerificationError` if not. The recorded
    schedule itself is also usable via :class:`ReplayStrategy` for triage
    under a debugger.
    """
    again = run_once(
        outcome.strategy, outcome.seed, workers=workers, planted=planted,
        workload=workload or spawn_storm(),
    )
    if again.digest != outcome.digest:
        raise VerificationError(
            f"seed {outcome.seed} did not reproduce: digest "
            f"{outcome.digest[:16]} vs {again.digest[:16]} — the workload or "
            "strategy is drawing entropy outside the seeded rng"
        )
    return again


def replay_schedule(
    schedule: List[ScheduleEntry],
    *,
    workers: int = 4,
    planted: bool = False,
    workload: Optional[Callable[[], Any]] = None,
) -> HuntOutcome:
    """Drive a run that follows ``schedule`` exactly (divergence raises)."""
    ex = InterleaveExecutor(ReplayStrategy(schedule))
    return _run_with_executor(
        ex, workload or spawn_storm(), workers=workers, planted=planted,
        strategy_name="replay", seed=-1,
    )
