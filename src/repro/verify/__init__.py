"""Concurrency correctness harness (``python -m repro verify``).

Three instruments over the shared scheduling policy core:

- :mod:`repro.verify.interleave` — a schedule-exploring cooperative executor
  with pluggable seeded strategies (:mod:`repro.verify.strategies`); any
  failing interleaving replays bit-for-bit from its seed.
- :mod:`repro.verify.racedetect` — a hybrid lockset + happens-before race
  detector fed by the :mod:`repro.runtime.instrument` hooks, with ground
  truth in :mod:`repro.verify.fixtures` (a deliberately planted race the
  harness must always rediscover).
- :mod:`repro.verify.differential` — sim ↔ threaded ↔ interleave runs of
  ISx/UTS/Graph500 workloads asserting result equality plus the quiesce
  conservation invariants (:mod:`repro.verify.invariants`).
- :mod:`repro.verify.spmd_workloads` — the same workloads as SPMD programs
  over the SHMEM module, digest-compatible with the single-runtime
  versions, so the multiprocess backend (``--engines ... procs``) joins the
  differential.
"""

from repro.verify.differential import (
    DifferentialReport,
    WORKLOADS,
    differential,
    isx_coalescing_differential,
    isx_engine_differential,
    isx_sharded_differential,
    run_on_engine,
    taskgraph_differential,
)
from repro.verify.spmd_workloads import (
    SPMD_WORKLOADS,
    run_procs_workload,
    run_sharded_workload,
)
from repro.verify.harness import (
    HuntOutcome,
    HuntResult,
    hunt,
    replay,
    replay_schedule,
    run_once,
    spawn_storm,
)
from repro.verify.interleave import InterleaveExecutor
from repro.verify.invariants import InvariantReport, check_quiesce
from repro.verify.racedetect import RaceDetector, RaceReport
from repro.verify.strategies import (
    STRATEGIES,
    PCTStrategy,
    PreemptionBoundedStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    Strategy,
    VerificationError,
    make_strategy,
)

__all__ = [
    "DifferentialReport",
    "WORKLOADS",
    "differential",
    "isx_coalescing_differential",
    "isx_engine_differential",
    "isx_sharded_differential",
    "run_on_engine",
    "taskgraph_differential",
    "SPMD_WORKLOADS",
    "run_procs_workload",
    "run_sharded_workload",
    "HuntOutcome",
    "HuntResult",
    "hunt",
    "replay",
    "replay_schedule",
    "run_once",
    "spawn_storm",
    "InterleaveExecutor",
    "InvariantReport",
    "check_quiesce",
    "RaceDetector",
    "RaceReport",
    "STRATEGIES",
    "PCTStrategy",
    "PreemptionBoundedStrategy",
    "RandomWalkStrategy",
    "ReplayStrategy",
    "Strategy",
    "VerificationError",
    "make_strategy",
]
