"""SPMD digest workloads: the differential's apps over a *real* fabric.

The single-runtime workloads in :mod:`repro.verify.differential` express
ISx/UTS/Graph500 as finish/async fan-outs inside one runtime. These are the
same computations written as SPMD ``main(ctx)`` programs over the SHMEM
module — one-sided puts, fetch-add cursors, collectives — so the whole
protocol stack is in the checked loop. Each workload is constructed so its
digest is *identical* to the single-runtime version's digest:

- **ISx** — the global key array is strided across ranks, exchanged into
  range buckets by fetch-add + put, sorted locally; concatenating the rank
  buckets in rank order *is* ``np.sort`` of the global array, which is what
  the single-runtime workload hashes.
- **UTS** — the root's child subtrees are strided across ranks, each
  counted locally, summed with an allreduce; the total is the sequential
  node count the single-runtime workload reports.
- **Graph500** — the graph is replicated (Kronecker generation is
  deterministic), frontier chunks are strided across ranks, candidate edges
  allgathered per level and merged *in chunk order* on every rank — the
  same first-claim-wins order the single-runtime merge uses, so the parent
  arrays (and their hashes) agree bit-for-bit.

Because the multiprocess backend's digests can be compared against the
simulator's and the thread pool's, a divergence isolates a bug in the procs
mechanism (fabric framing, shared-memory heap, completion acks) — the
workload math is pinned by the other two engines.

Factories are module-level and addressable by dotted path
(``repro.verify.spmd_workloads:isx_spmd_factory``) so every launcher —
including pickling ones — can reach them.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.graph500.common import (
    Graph500Config,
    build_csr,
    kronecker_edges,
    pick_root,
    validate_bfs,
)
from repro.apps.isx.common import IsxConfig, generate_keys, local_sort
from repro.apps.uts.common import UtsConfig, children, root_node

__all__ = [
    "SPMD_WORKLOADS",
    "isx_spmd_factory",
    "isx_exchange_factory",
    "uts_spmd_factory",
    "graph500_spmd_factory",
    "isx_combine",
    "uts_combine",
    "graph500_combine",
    "run_procs_workload",
    "run_sharded_workload",
]


# ----------------------------------------------------------------------
# ISx: key exchange via fetch-add cursor + one-sided puts
# ----------------------------------------------------------------------
def isx_spmd_factory(**cfg_kwargs) -> Callable:
    """SPMD bucket sort; combine with :func:`isx_combine`."""
    cfg_kwargs.setdefault("keys_per_pe", 1 << 11)
    cfg = IsxConfig(**cfg_kwargs)

    def main(ctx):
        sh = ctx.shmem
        me, n = ctx.rank, ctx.nranks
        keys = generate_keys(cfg, 0, 1)   # the single-runtime global array
        mine = keys[me::n]                # this rank's stride of it
        width = (cfg.max_key + n - 1) // n
        recv = sh.malloc((int(keys.size),), dtype=np.int64, fill=0)
        cursor = sh.malloc((1,), dtype=np.int64, fill=0)
        yield sh.barrier_all_async()
        for dest in range(n):
            lo, hi = dest * width, (dest + 1) * width
            sel = mine[(mine >= lo) & (mine < hi)]
            if sel.size == 0:
                continue
            idx = yield sh.atomic_fetch_add_async(cursor, int(sel.size), dest)
            yield sh.put_async(recv, np.ascontiguousarray(sel), dest, int(idx))
        yield sh.quiet_async()
        yield sh.barrier_all_async()
        cnt = int((yield sh.get_async(cursor, me))[0])
        bucket = np.asarray((yield sh.get_async(recv, me, 0, cnt)))
        out = local_sort(bucket)
        yield sh.barrier_all_async()
        return np.asarray(out)

    main.__name__ = "isx_spmd_main"
    return main


def isx_combine(results: List[Any]) -> Tuple:
    out = np.concatenate([np.asarray(r, dtype=np.int64) for r in results])
    return ("isx", int(out.size), hashlib.sha256(out.tobytes()).hexdigest())


def isx_exchange_factory(**cfg_kwargs) -> Callable:
    """Weak-scaling ISx for the procs *benchmark* (not the differential).

    Unlike :func:`isx_spmd_factory` — which replicates the global key array
    on every rank so its digest matches the single-runtime workload — this
    is the paper's actual Fig. 5 shape: each PE generates its *own*
    ``keys_per_pe`` keys (per-rank streams), single-pass bucket-routes them
    by value, and sorts what it receives. Per-rank compute is O(keys_per_pe)
    regardless of rank count, so aggregate throughput (keys/s) measures the
    backend's real parallel scaling. Returns ``(count, sha16)`` per rank —
    deliberately small, so result pickling stays off the measured path.
    """
    cfg_kwargs.setdefault("keys_per_pe", 1 << 20)
    cfg = IsxConfig(**cfg_kwargs)

    def main(ctx):
        sh = ctx.shmem
        me, n = ctx.rank, ctx.nranks
        mine = generate_keys(cfg, me, n)
        width = (cfg.max_key + n - 1) // n
        window = int(cfg.keys_per_pe * cfg.slack) + 64
        recv = sh.malloc((window,), dtype=np.int64, fill=0)
        cursor = sh.malloc((1,), dtype=np.int64, fill=0)
        dest = mine // width
        order = np.argsort(dest, kind="stable")
        routed = mine[order]
        bounds = np.searchsorted(dest[order], np.arange(n + 1))
        yield sh.barrier_all_async()
        for d in range(n):
            sel = routed[bounds[d]:bounds[d + 1]]
            if sel.size == 0:
                continue
            idx = yield sh.atomic_fetch_add_async(cursor, int(sel.size), d)
            yield sh.put_async(recv, np.ascontiguousarray(sel), d, int(idx))
        yield sh.quiet_async()
        yield sh.barrier_all_async()
        cnt = int((yield sh.get_async(cursor, me, 0, 1))[0])
        out = local_sort(np.asarray(recv.arr[:cnt]))
        yield sh.barrier_all_async()
        return (int(out.size),
                hashlib.sha256(out.tobytes()).hexdigest()[:16])

    main.__name__ = "isx_exchange_main"
    return main


# ----------------------------------------------------------------------
# UTS: strided subtree counts + allreduce
# ----------------------------------------------------------------------
def _subtree_count(cfg: UtsConfig, node) -> int:
    stack = [node]
    count = 0
    while stack:
        count += 1
        stack.extend(children(cfg, stack.pop()))
    return count


def uts_spmd_factory(**cfg_kwargs) -> Callable:
    """SPMD tree count; combine with :func:`uts_combine`."""
    cfg_kwargs.setdefault("root_children", 40)
    cfg_kwargs.setdefault("mean_children", 0.8)
    cfg_kwargs.setdefault("node_cost", 0.0)
    cfg = UtsConfig(**cfg_kwargs)

    def main(ctx):
        sh = ctx.shmem
        me, n = ctx.rank, ctx.nranks
        local = 1 if me == 0 else 0       # rank 0 accounts for the root
        for kid in children(cfg, root_node(cfg))[me::n]:
            local += _subtree_count(cfg, kid)
        total = yield sh.reduce_async(local, lambda a, b: a + b)
        yield sh.barrier_all_async()
        return (int(local), int(total))

    main.__name__ = "uts_spmd_main"
    return main


def uts_combine(results: List[Any]) -> Tuple:
    locals_, totals = zip(*results)
    if len(set(totals)) != 1:
        raise AssertionError(f"UTS allreduce disagreed across ranks: {totals}")
    if sum(locals_) != totals[0]:
        raise AssertionError(
            f"UTS local counts sum to {sum(locals_)}, allreduce says "
            f"{totals[0]}")
    return ("uts", int(totals[0]))


# ----------------------------------------------------------------------
# Graph500: replicated BFS, strided chunk expansion, allgather merge
# ----------------------------------------------------------------------
def graph500_spmd_factory(chunk: int = 128, **cfg_kwargs) -> Callable:
    """SPMD level-synchronous BFS; combine with :func:`graph500_combine`.

    ``chunk`` must match the single-runtime workload's chunking — chunk
    boundaries define the deterministic merge order both versions share.
    """
    cfg_kwargs.setdefault("scale", 8)
    cfg = Graph500Config(**cfg_kwargs)

    def main(ctx):
        sh = ctx.shmem
        me, n = ctx.rank, ctx.nranks
        edges = kronecker_edges(cfg)
        nv = cfg.nvertices
        row_starts, cols = build_csr(edges, nv)
        src = pick_root(cfg, row_starts)
        parent = np.full(nv, -1, dtype=np.int64)
        parent[src] = src
        frontier = np.array([src], dtype=np.int64)
        while frontier.size:
            chunks: List[Tuple[int, List[Tuple[int, int]]]] = []
            for ci, i in enumerate(range(0, frontier.size, chunk)):
                if ci % n != me:
                    continue
                pairs: List[Tuple[int, int]] = []
                for v in frontier[i:i + chunk]:
                    v = int(v)
                    for u in cols[row_starts[v]:row_starts[v + 1]]:
                        u = int(u)
                        if parent[u] < 0:
                            pairs.append((u, v))
                chunks.append((ci, pairs))
            gathered = yield sh.fcollect_async(chunks)
            # Same merge the single-runtime workload does: chunk order,
            # first claim wins — every rank applies the identical sequence,
            # so the replicated parent arrays never diverge.
            nxt: List[int] = []
            for ci, pairs in sorted(
                    (c for per_rank in gathered for c in per_rank)):
                for u, v in pairs:
                    if parent[u] < 0:
                        parent[u] = v
                        nxt.append(u)
            frontier = np.array(nxt, dtype=np.int64)
        reached = validate_bfs(cfg, edges, src, parent)
        yield sh.barrier_all_async()
        return ("graph500", int(reached),
                hashlib.sha256(parent.tobytes()).hexdigest())

    main.__name__ = "graph500_spmd_main"
    return main


def graph500_combine(results: List[Any]) -> Tuple:
    first = tuple(results[0])
    for rank, r in enumerate(results[1:], start=1):
        if tuple(r) != first:
            raise AssertionError(
                f"Graph500 replicated BFS diverged on rank {rank}: "
                f"{tuple(r)} != {first}")
    return first


#: name -> (dotted factory path, combiner). The dotted path — not the
#: callable — is what goes into the job so pickling launchers work.
SPMD_WORKLOADS: Dict[str, Tuple[str, Callable[[List[Any]], Tuple]]] = {
    "isx": ("repro.verify.spmd_workloads:isx_spmd_factory", isx_combine),
    "uts": ("repro.verify.spmd_workloads:uts_spmd_factory", uts_combine),
    "graph500": ("repro.verify.spmd_workloads:graph500_spmd_factory",
                 graph500_combine),
}


def run_procs_workload(
    name: str,
    *,
    nranks: int = 4,
    launcher: str = "local",
    workers_per_rank: int = 1,
    timeout: float = 300.0,
    block_timeout: float = 60.0,
    seed: int = 0,
    cfg_kwargs: Optional[Dict[str, Any]] = None,
):
    """Run one named workload on the multiprocess backend.

    Returns ``(digest, ProcsResult)`` where ``digest`` is comparable with
    the single-runtime differential workloads' return values.
    """
    from repro.exec.procs import procs_run
    from repro.verify.strategies import VerificationError

    try:
        factory_path, combine = SPMD_WORKLOADS[name]
    except KeyError:
        raise VerificationError(
            f"unknown SPMD workload {name!r}; "
            f"choose from {sorted(SPMD_WORKLOADS)}") from None
    res = procs_run(
        factory_path, kwargs=dict(cfg_kwargs or {}), nranks=nranks,
        launcher=launcher, workers_per_rank=workers_per_rank,
        timeout=timeout, block_timeout=block_timeout, seed=seed,
    )
    return combine(res.results), res


def run_sharded_workload(
    name: str,
    *,
    nranks: int = 4,
    shards: int = 2,
    seed: int = 0,
    cfg_kwargs: Optional[Dict[str, Any]] = None,
):
    """Run one named workload on the sharded DES engine
    (``SimExecutor(engine="flat", shards=N)``).

    Returns ``(digest, ShardedSpmdResult)``; the digest is comparable with
    the single-runtime differential workloads' and the flat engine's.
    Ranks map one per node — shard partitions are node-aligned, so this
    keeps any shard count up to ``nranks`` valid.
    """
    import importlib

    from repro.distrib.spmd import ClusterConfig, spmd_run
    from repro.exec.sim import SimExecutor
    from repro.shmem import shmem_factory
    from repro.verify.strategies import VerificationError

    try:
        factory_path, combine = SPMD_WORKLOADS[name]
    except KeyError:
        raise VerificationError(
            f"unknown SPMD workload {name!r}; "
            f"choose from {sorted(SPMD_WORKLOADS)}") from None
    mod_name, _, fn_name = factory_path.partition(":")
    factory = getattr(importlib.import_module(mod_name), fn_name)
    cfg = ClusterConfig(nodes=nranks, ranks_per_node=1, seed=seed)
    res = spmd_run(
        factory(**dict(cfg_kwargs or {})), cfg,
        module_factories=[shmem_factory(direct=True)],
        executor=SimExecutor(engine="flat", shards=shards),
    )
    return combine(res.results), res
