"""Sim ↔ threaded ↔ interleave differential checker.

Runs the same task-parallel workload on different engines and asserts that
(1) the *results* are identical — each workload returns a deterministic,
schedule-independent value (a digest of its output) — and (2) the quiesce
invariants (:mod:`repro.verify.invariants`) hold on every engine. Any
divergence means an engine bug: the policy core is shared, so only the
mechanism (threading, time, wakeups) can differ.

The workloads reuse the benchmark apps' kernels (``repro.apps``) in
single-runtime task-parallel form — SPMD drivers are simulator-only, so the
differential versions express the same computations as finish/async fan-outs
that every engine can run:

- **ISx** — bucket sort: partition keys by range, sort buckets in parallel
  tasks, concatenate; digest must equal the digest of ``np.sort`` on the
  whole array.
- **UTS** — unbounded tree search: one task per tree node under a single
  finish scope; the count must equal :func:`sequential_count`.
- **Graph500** — level-synchronous BFS: frontier chunks expand in parallel
  tasks, candidate edges merge *sequentially between levels* in chunk order,
  making the parent array schedule-independent; validated with
  :func:`validate_bfs` and digested.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.graph500.common import (
    Graph500Config,
    build_csr,
    kronecker_edges,
    pick_root,
    validate_bfs,
)
from repro.apps.isx.common import IsxConfig, generate_keys, local_sort
from repro.apps.uts.common import UtsConfig, children, root_node, sequential_count
from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor
from repro.platform.hwloc import discover, machine
from repro.runtime.api import async_, async_future, finish
from repro.runtime.runtime import HiperRuntime
from repro.verify.invariants import InvariantReport, check_quiesce
from repro.verify.strategies import VerificationError, make_strategy


# ----------------------------------------------------------------------
# workloads (each returns a root body whose value is a digestable tuple)
# ----------------------------------------------------------------------
def isx_workload(cfg: Optional[IsxConfig] = None,
                 nbuckets: int = 8) -> Callable[[], Tuple]:
    """Parallel bucket sort over one PE's ISx key array."""
    cfg = cfg or IsxConfig(keys_per_pe=1 << 11)

    def root() -> Tuple:
        keys = generate_keys(cfg, 0, 1)
        width = (cfg.max_key + nbuckets - 1) // nbuckets
        futs: List[Any] = []

        def body() -> None:
            for b in range(nbuckets):
                lo, hi = b * width, (b + 1) * width
                sel = keys[(keys >= lo) & (keys < hi)]
                futs.append(async_future(
                    lambda s=sel: local_sort(s), name=f"isx-bucket-{b}"))

        finish(body, name="isx-sort")
        out = np.concatenate([f.value() for f in futs])
        if not np.array_equal(out, np.sort(keys)):
            raise AssertionError("bucketed sort diverged from np.sort")
        return ("isx", int(out.size),
                hashlib.sha256(out.tobytes()).hexdigest())

    root.__name__ = "isx_bucket_sort"
    return root


def uts_workload(cfg: Optional[UtsConfig] = None) -> Callable[[], Tuple]:
    """One task per UTS tree node; count must match the sequential walk."""
    cfg = cfg or UtsConfig(root_children=40, mean_children=0.8, node_cost=0.0)
    want = sequential_count(cfg)

    def root() -> Tuple:
        total: List[int] = []  # list.append is GIL-atomic on every engine

        def visit(node) -> None:
            total.append(1)
            for ch in children(cfg, node):
                async_(lambda c=ch: visit(c), name="uts-node")

        finish(lambda: visit(root_node(cfg)), name="uts-walk")
        got = len(total)
        if got != want:
            raise AssertionError(
                f"UTS counted {got} nodes, sequential walk says {want}")
        return ("uts", got)

    root.__name__ = "uts_tree_count"
    return root


def graph500_workload(cfg: Optional[Graph500Config] = None,
                      chunk: int = 128) -> Callable[[], Tuple]:
    """Level-synchronous parallel BFS with deterministic inter-level merge."""
    cfg = cfg or Graph500Config(scale=8)

    def expand(row_starts, cols, parent, part) -> List[Tuple[int, int]]:
        # parent is only *read* during a level (writes happen in the
        # sequential merge), so this is schedule-independent.
        out: List[Tuple[int, int]] = []
        for v in part:
            v = int(v)
            for u in cols[row_starts[v]:row_starts[v + 1]]:
                u = int(u)
                if parent[u] < 0:
                    out.append((u, v))
        return out

    def root() -> Tuple:
        edges = kronecker_edges(cfg)
        n = cfg.nvertices
        row_starts, cols = build_csr(edges, n)
        src = pick_root(cfg, row_starts)
        parent = np.full(n, -1, dtype=np.int64)
        parent[src] = src
        frontier = np.array([src], dtype=np.int64)
        while frontier.size:
            futs: List[Any] = []

            def body() -> None:
                for i in range(0, frontier.size, chunk):
                    part = frontier[i:i + chunk]
                    futs.append(async_future(
                        lambda p=part: expand(row_starts, cols, parent, p),
                        name=f"bfs-chunk-{i // chunk}"))

            finish(body, name="bfs-level")
            # Sequential merge in chunk order: first claim of a vertex wins
            # deterministically, so the parent array is engine-independent.
            nxt: List[int] = []
            for f in futs:
                for u, v in f.value():
                    if parent[u] < 0:
                        parent[u] = v
                        nxt.append(u)
            frontier = np.array(nxt, dtype=np.int64)
        reached = validate_bfs(cfg, edges, src, parent)
        return ("graph500", int(reached),
                hashlib.sha256(parent.tobytes()).hexdigest())

    root.__name__ = "graph500_bfs"
    return root


def _isx_dag_factory() -> Callable[[], Tuple]:
    # Deferred import: repro.taskgraph sits above the runtime layer that
    # this module is imported alongside.
    from repro.taskgraph.workloads import isx_dag_workload

    return isx_dag_workload()


#: name -> zero-arg factory producing a fresh root body (CI-sized configs).
WORKLOADS: Dict[str, Callable[[], Callable[[], Tuple]]] = {
    "isx": isx_workload,
    "uts": uts_workload,
    "graph500": graph500_workload,
    "isx-dag": _isx_dag_factory,
}


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
def make_engine(name: str, *, seed: int = 0, strategy: str = "random",
                block_timeout: float = 60.0):
    if name == "sim":
        # Pinned to the objects engine: flat became the constructor default,
        # and this differential's whole point is comparing the two engines —
        # "sim" vs "flat-sim" must stay objects vs flat.
        return SimExecutor(engine="objects")
    if name == "flat-sim":
        # The simulated executor's slab/calendar event engine: must produce
        # bit-for-bit the schedules of the objects engine (this differential
        # is its gate; see docs/sim-internals.md).
        return SimExecutor(engine="flat")
    if name == "threads":
        return ThreadedExecutor(block_timeout=block_timeout)
    if name == "interleave":
        from repro.verify.interleave import InterleaveExecutor

        return InterleaveExecutor(make_strategy(strategy, seed))
    raise VerificationError(
        f"unknown engine {name!r}; choose from sim/flat-sim/threads/interleave")


@dataclass
class EngineRun:
    """One workload execution on one engine."""

    engine: str
    result: Any
    invariants: InvariantReport


def run_on_engine(workload: Callable[[], Any], engine: str, *,
                  workers: int = 4, seed: int = 0,
                  strategy: str = "random") -> EngineRun:
    ex = make_engine(engine, seed=seed, strategy=strategy)
    model = discover(machine("workstation"), num_workers=workers,
                     with_interconnect=False)
    rt = HiperRuntime(model, ex).start()
    try:
        result = rt.run(workload, name=getattr(workload, "__name__", "diff"))
        invariants = check_quiesce(rt)
    finally:
        rt.shutdown()
        ex.shutdown()
    return EngineRun(engine=engine, result=result, invariants=invariants)


# ----------------------------------------------------------------------
# the differential check
# ----------------------------------------------------------------------
@dataclass
class DifferentialReport:
    """Cross-engine comparison for one workload."""

    workload: str
    runs: List[EngineRun] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        status = "OK" if self.ok else "FAIL"
        lines = [f"[{status}] differential {self.workload}: "
                 f"{', '.join(r.engine for r in self.runs)}"]
        for r in self.runs:
            lines.append(f"  {r.engine}: result={r.result!r} "
                         f"{r.invariants.describe()}")
        lines.extend(f"  MISMATCH: {m}" for m in self.mismatches)
        return "\n".join(lines)


def isx_coalescing_differential(
    nodes: int = 2,
    *,
    platform: str = "titan",
    workers_cap: int = 4,
) -> DifferentialReport:
    """ISx bucket exchange with message coalescing ON vs. OFF must produce
    identical per-rank sorted outputs (and pass the ISx oracle both ways).

    Coalescing reshapes virtual-time schedules — batches inject at flush
    points instead of per message — but may never change *results*: batch
    unpacking preserves per-destination FIFO order and quiet/barrier flush
    the buffers, so the data that lands in each PE's window is the same set
    either way. This check pins that contract end-to-end on the real SPMD
    exchange path (fadds + puts + barriers over the fabric).
    """
    from repro.apps.isx import IsxConfig, isx_main, validate_isx
    from repro.apps.presets import comm_coalesce
    from repro.bench.harness import cluster_for
    from repro.distrib import spmd_run
    from repro.shmem import shmem_factory

    cfg = IsxConfig(keys_per_pe=1 << 10, byte_scale=1 << 7)
    rep = DifferentialReport(workload="isx-coalescing")
    for label, factory in (
        ("coalesce-off", shmem_factory()),
        ("coalesce-on", shmem_factory(coalesce=comm_coalesce())),
    ):
        cluster = cluster_for(platform, nodes, layout="hybrid",
                              workers_cap=workers_cap)
        res = spmd_run(isx_main("hiper", cfg), cluster,
                       module_factories=[factory])
        validate_isx(cfg, res.nranks, res.results)
        digest = tuple(
            hashlib.sha256(np.asarray(r).tobytes()).hexdigest()
            for r in res.results
        )
        rep.runs.append(EngineRun(
            engine=label, result=("isx-coalescing", res.nranks, digest),
            invariants=InvariantReport(),
        ))
    baseline = rep.runs[0]
    for run in rep.runs[1:]:
        if run.result != baseline.result:
            rep.mismatches.append(
                f"{run.engine} result digests != {baseline.engine} "
                "(coalescing changed the sorted outputs)")
    return rep


def isx_engine_differential(
    nodes: int = 4,
    *,
    platform: str = "titan",
    variant: str = "flat",
) -> DifferentialReport:
    """The flat DES engine's gate: the same SPMD ISx run under
    ``engine="objects"`` and ``engine="flat"`` must produce bit-identical
    makespans and per-rank output digests.

    This exercises the full production event path — fetch-add reservation
    waves, puts, barriers, coalesced deliveries, help-until-ready nesting —
    so an event ordered differently anywhere in the flat engine's calendar
    queue shows up as a digest or makespan mismatch. At 4 Titan nodes the
    flat layout is 64 PEs, big enough for multi-thousand-event cohorts while
    staying CI-sized.
    """
    from repro.apps.isx import IsxConfig, isx_main, validate_isx
    from repro.bench.harness import cluster_for
    from repro.distrib import spmd_run
    from repro.shmem import shmem_factory

    cfg = IsxConfig(keys_per_pe=1 << 10, byte_scale=1 << 7)
    rep = DifferentialReport(workload="isx-engine")
    for engine in ("objects", "flat"):
        res = spmd_run(
            isx_main(variant, cfg),
            cluster_for(platform, nodes, layout="flat"),
            module_factories=[shmem_factory(direct=True)],
            executor=SimExecutor(engine=engine),
        )
        validate_isx(cfg, res.nranks, res.results)
        digest = tuple(
            hashlib.sha256(np.asarray(r).tobytes()).hexdigest()
            for r in res.results
        )
        rep.runs.append(EngineRun(
            engine=engine,
            result=("isx-engine", res.nranks, repr(res.makespan), digest),
            invariants=InvariantReport(),
        ))
    baseline = rep.runs[0]
    for run in rep.runs[1:]:
        if run.result != baseline.result:
            rep.mismatches.append(
                f"{run.engine} result != {baseline.engine} "
                "(flat engine diverged from the objects engine)")
    return rep


def isx_sharded_differential(
    nodes: int = 4,
    *,
    shards: int = 2,
    platform: str = "titan",
    variant: str = "flat",
) -> DifferentialReport:
    """The sharded DES engine's gate: the same SPMD ISx run single-shard and
    with ``shards=N`` sub-simulator processes must produce identical per-rank
    output digests.

    Unlike :func:`isx_engine_differential`, makespans are *not* compared:
    receiver-NIC contention is resolved against shard-local send
    interleavings, so cross-shard virtual times legitimately differ from the
    global single-engine schedule (the same caveat the procs backend
    documents). Results — the data every rank computes — must not.
    """
    from repro.apps.isx import IsxConfig, isx_main, validate_isx
    from repro.bench.harness import cluster_for
    from repro.distrib import spmd_run
    from repro.shmem import shmem_factory

    cfg = IsxConfig(keys_per_pe=1 << 10, byte_scale=1 << 7)
    rep = DifferentialReport(workload="isx-sharded")
    for label, nshards in (("flat", 1), (f"sharded-{shards}", shards)):
        res = spmd_run(
            isx_main(variant, cfg),
            cluster_for(platform, nodes, layout="flat"),
            module_factories=[shmem_factory(direct=True)],
            executor=SimExecutor(engine="flat", shards=nshards),
        )
        validate_isx(cfg, res.nranks, res.results)
        digest = tuple(
            hashlib.sha256(np.asarray(r).tobytes()).hexdigest()
            for r in res.results
        )
        rep.runs.append(EngineRun(
            engine=label,
            result=("isx-sharded", res.nranks, digest),
            invariants=InvariantReport(),
        ))
    baseline = rep.runs[0]
    for run in rep.runs[1:]:
        if run.result != baseline.result:
            rep.mismatches.append(
                f"{run.engine} result != {baseline.engine} "
                "(sharded engine diverged from the single-shard flat engine)")
    return rep


def taskgraph_differential(
    engines: Sequence[str] = ("sim", "threads"),
    *,
    workers: int = 4,
) -> DifferentialReport:
    """DAG-vs-futures gate: the ISx sort with graph-inferred dependencies
    (:func:`repro.taskgraph.workloads.isx_dag_workload`) must produce the
    digest tuple of the hand-wired-futures version (:func:`isx_workload`)
    on every engine.

    Same kernels, same data, only the dependency wiring differs — so any
    divergence is a task-graph edge-inference bug (a missed WAR edge, a
    version chain that let a reader see a half-written bucket), not a
    kernel bug.
    """
    from repro.taskgraph.workloads import isx_dag_workload

    rep = DifferentialReport(workload="isx-dag-vs-futures")
    for engine in engines:
        rep.runs.append(run_on_engine(isx_workload(), engine,
                                      workers=workers))
        rep.runs[-1].engine = f"futures@{engine}"
        rep.runs.append(run_on_engine(isx_dag_workload(), engine,
                                      workers=workers))
        rep.runs[-1].engine = f"dag@{engine}"
    baseline = rep.runs[0]
    for run in rep.runs[1:]:
        if run.result != baseline.result:
            rep.mismatches.append(
                f"{run.engine} result {run.result!r} != "
                f"{baseline.engine} result {baseline.result!r}")
    for run in rep.runs:
        if not run.invariants.ok:
            rep.mismatches.append(
                f"{run.engine}: {run.invariants.describe()}")
    return rep


def _run_on_procs(workload_name: str, *, workers: int, seed: int,
                  nranks: int = 4) -> EngineRun:
    """Run the SPMD twin of a workload on the multiprocess backend.

    The SPMD workloads (:mod:`repro.verify.spmd_workloads`) are constructed
    so their combined digest equals the single-runtime digest, which lets
    the procs backend participate in the same comparison. Quiesce invariants
    are checked per-child inside each rank's runtime, not here, so the
    report carries an empty (trivially-ok) invariant set — mirroring
    :func:`isx_coalescing_differential`.
    """
    from repro.verify.spmd_workloads import run_procs_workload

    digest, _res = run_procs_workload(
        workload_name, nranks=nranks, workers_per_rank=max(1, workers // 2),
        seed=seed)
    return EngineRun(engine="procs", result=digest,
                     invariants=InvariantReport())


def _run_on_sharded(workload_name: str, *, seed: int, nranks: int = 4,
                    shards: int = 2) -> EngineRun:
    """Run the SPMD twin of a workload on the sharded DES engine.

    Same digest-compatibility argument as :func:`_run_on_procs`: the SPMD
    twins are constructed so their combined digest equals the single-runtime
    digest, which puts the window protocol, the cross-shard fabric, and the
    shard shmem backend into the same comparison as every other engine.
    """
    from repro.verify.spmd_workloads import run_sharded_workload

    digest, _res = run_sharded_workload(
        workload_name, nranks=nranks, shards=shards, seed=seed)
    return EngineRun(engine="sharded", result=digest,
                     invariants=InvariantReport())


def differential(
    workload_name: str,
    engines: Sequence[str] = ("sim", "threads"),
    *,
    workers: int = 4,
    seed: int = 0,
    strategy: str = "random",
) -> DifferentialReport:
    """Run one named workload on each engine; compare results + invariants.

    A *fresh* root body is built per engine (factories close over config
    only, never over run state). The ``procs`` engine runs the workload's
    SPMD twin across real OS processes; its digest is constructed to match
    the single-runtime engines' digest bit-for-bit."""
    try:
        factory = WORKLOADS[workload_name]
    except KeyError:
        raise VerificationError(
            f"unknown workload {workload_name!r}; "
            f"choose from {sorted(WORKLOADS)}") from None
    rep = DifferentialReport(workload=workload_name)
    for engine in engines:
        if engine in ("procs", "sharded"):
            # These engines run the workload's SPMD twin; workloads without
            # one (isx-dag, which has its own taskgraph_differential gate)
            # are compared across the single-runtime engines only.
            from repro.verify.spmd_workloads import SPMD_WORKLOADS
            if workload_name not in SPMD_WORKLOADS:
                continue
            if engine == "procs":
                rep.runs.append(_run_on_procs(
                    workload_name, workers=workers, seed=seed))
            else:
                rep.runs.append(_run_on_sharded(workload_name, seed=seed))
            continue
        rep.runs.append(run_on_engine(
            factory(), engine, workers=workers, seed=seed, strategy=strategy))
    if not rep.runs:
        rep.mismatches.append(
            f"no engine in {tuple(engines)!r} can run workload "
            f"{workload_name!r} (no SPMD twin)")
        return rep
    baseline = rep.runs[0]
    for run in rep.runs[1:]:
        if run.result != baseline.result:
            rep.mismatches.append(
                f"{run.engine} result {run.result!r} != "
                f"{baseline.engine} result {baseline.result!r}")
    for run in rep.runs:
        if not run.invariants.ok:
            rep.mismatches.append(
                f"{run.engine}: {run.invariants.describe()}")
    return rep
