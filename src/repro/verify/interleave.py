"""Schedule-exploring cooperative executor (the verification engine).

:class:`InterleaveExecutor` drives the *same* policy core the production
engines share — deques, pop/steal search, finish scopes, futures — but hands
every scheduling decision to a pluggable seeded
:class:`~repro.verify.strategies.Strategy` instead of the simulator's
lowest-clock rule. One OS thread multiplexes the logical workers, so a run is
a deterministic function of ``(strategy, seed, workload)`` and any failing
interleaving replays bit-for-bit from its seed.

Two properties make it a verification engine rather than a third production
engine:

1. **Locked structures.** Its ``lock_class`` is
   :class:`~repro.runtime.instrument.TrackedLock`, so the runtime builds the
   *threaded* engine's locked deques and finish scopes (not the simulator's
   lock-free fast paths), and every pluggable lock acquire/release is
   reported to the installed probe — the race detector's lockset feed.

2. **Schedule recording.** Every dispatch appends ``(rank, wid, task name,
   per-run task seq)`` to :attr:`schedule`; :meth:`schedule_digest` hashes
   the list. Equal digests == identical interleavings, which is what the
   harness and CLI compare when replaying a reported seed.

The engine also reports the policy core's *documented* lock-free occupancy
reads (``PlaceDeques.mask`` tested by ``find_task``/``has_visible_work``
without a lock) to the probe as *benign* accesses, so the race detector's
whitelist is exercised rather than silently bypassed.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.exec.sim import SimExecutor
from repro.runtime import instrument
from repro.runtime.instrument import TrackedLock
from repro.runtime.worker import find_task
from repro.verify.strategies import ScheduleEntry, Strategy


class InterleaveExecutor(SimExecutor):
    """Virtual-time engine whose worker selection is strategy-controlled."""

    mode = "interleave"

    #: Tracked real locks: the runtime instantiates the locked (threaded
    #: discipline) deque slots and finish scopes, and lock events reach the
    #: installed probe.
    lock_class = TrackedLock

    def __init__(self, strategy: Strategy, *, task_overhead: float = 0.0,
                 trace: bool = False):
        # "scan" selection keeps _maybe_ready a plain set (no clock heap to
        # fight with): the strategy, not the clock order, picks the worker.
        super().__init__(trace=trace, task_overhead=task_overhead,
                         selection="scan")
        self.strategy = strategy
        #: The recorded interleaving, one entry per task segment dispatched.
        self.schedule: List[ScheduleEntry] = []
        self._dispatch_seq = 0

    # ------------------------------------------------------------------
    def _step(self) -> bool:
        ready = self._maybe_ready
        while ready:
            candidates = sorted(ready, key=lambda w: (w.rank, w.wid))
            worker = (candidates[0] if len(candidates) == 1
                      else self.strategy.choose(candidates))
            p = instrument.PROBE
            if p is not None:
                # Model the search round's documented lock-free occupancy
                # reads (worker.py reads pd.mask with no lock; see
                # docs/concurrency.md) so the detector sees — and must
                # whitelist — them.
                for pd, _slot in worker._pop_pairs:
                    p.on_access(("place", pd.place.name, "mask"), False,
                                benign=True)
                for pd in worker._steal_deques:
                    p.on_access(("place", pd.place.name, "mask"), False,
                                benign=True)
            task = find_task(worker)
            if task is None:
                ready.discard(worker)
                self.strategy.on_no_work(worker)
                continue
            self.schedule.append(
                (worker.rank, worker.wid, task.name or "task",
                 self._dispatch_seq))
            self._dispatch_seq += 1
            self._run_task(worker, task)
            return True
        if self._events:
            self._advance_events()
            return True
        return False

    # ------------------------------------------------------------------
    def schedule_digest(self) -> str:
        """SHA-256 over the recorded interleaving; equal digests mean the
        runs dispatched the same task segments on the same workers in the
        same order — the bit-for-bit replay check."""
        h = hashlib.sha256()
        for rank, wid, name, seq in self.schedule:
            h.update(f"{rank}:{wid}:{name}:{seq}\n".encode())
        return h.hexdigest()

    def schedule_summary(self, limit: int = 12) -> str:
        head = [
            f"  step {seq:>4d}: r{rank}w{wid} ran {name!r}"
            for rank, wid, name, seq in self.schedule[:limit]
        ]
        more = len(self.schedule) - limit
        if more > 0:
            head.append(f"  ... {more} more steps")
        return "\n".join(head)

    def __repr__(self) -> str:
        return (
            f"InterleaveExecutor({self.strategy.describe()}, "
            f"steps={len(self.schedule)})"
        )


def replay_executor(schedule: List[ScheduleEntry], **kwargs) -> InterleaveExecutor:
    """An executor that replays ``schedule`` exactly (for failure triage)."""
    from repro.verify.strategies import ReplayStrategy

    return InterleaveExecutor(ReplayStrategy(schedule), **kwargs)
