"""Deterministic random-number streams.

Every stochastic decision in the framework (steal-victim selection, workload
generation, simulated timing jitter) draws from a named substream derived
from a single root seed, so whole multi-rank simulations replay bit-for-bit.

The derivation uses ``numpy.random.SeedSequence.spawn``-style keying: a
substream is identified by a tuple of ints/strings hashed into entropy that
is mixed with the root seed.
"""

from __future__ import annotations

import zlib
from typing import Sequence, Union

import numpy as np

Key = Union[int, str]


def _key_entropy(key: Sequence[Key]) -> list:
    """Map a mixed int/str key tuple to a stable list of uint32 entropy words."""
    words = []
    for part in key:
        if isinstance(part, bool):  # bool is an int subclass; reject explicitly
            raise TypeError("bool is not a valid RNG key component")
        if isinstance(part, int):
            words.append(part & 0xFFFFFFFF)
            words.append((part >> 32) & 0xFFFFFFFF)
        elif isinstance(part, str):
            words.append(zlib.crc32(part.encode("utf-8")) & 0xFFFFFFFF)
        else:
            raise TypeError(f"RNG key components must be int or str, got {type(part)!r}")
    return words


class RngFactory:
    """Produces independent, reproducible :class:`numpy.random.Generator` streams.

    >>> f = RngFactory(42)
    >>> a = f.stream("steal", 0, 3)   # rank 0, worker 3 steal stream
    >>> b = f.stream("steal", 0, 3)
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, int) or root_seed < 0:
            raise ValueError("root_seed must be a non-negative integer")
        self.root_seed = root_seed

    def stream(self, *key: Key) -> np.random.Generator:
        """Return a fresh generator for the given substream key."""
        entropy = [self.root_seed & 0xFFFFFFFF, (self.root_seed >> 32) & 0xFFFFFFFF]
        entropy.extend(_key_entropy(key))
        return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))

    def spawn(self, *key: Key) -> "RngFactory":
        """Derive a child factory; its streams are independent of the parent's."""
        entropy = _key_entropy(key)
        mixed = self.root_seed
        for w in entropy:
            mixed = (mixed * 0x9E3779B97F4A7C15 + w) & 0xFFFFFFFFFFFFFFFF
        return RngFactory(mixed)


def splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer; used for cheap stateless hashing.

    UTS-style tree generation needs a per-node deterministic hash; this is the
    standard finalizer used by many work-stealing benchmarks.
    """
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)
