"""Pooled message buffers: stop allocating a fresh numpy array per message.

Every comm backend snapshots its payload at send time so callers may reuse
their buffers immediately (`MPI_Send` buffered semantics, `shmem_put` local
completion). In hot loops — ISx's bucket exchange fires thousands of puts —
that is one `ndarray` allocation + copy per message. A :class:`BufferPool`
recycles power-of-two-sized backing stores instead: ``take_copy`` returns a
:class:`PooledArray` view (right shape/dtype, pooled storage) and the
receiver calls ``release()`` once the bytes are applied, returning the
storage for the next send.

Ownership protocol:

- the **sender** takes the copy and ships the view as the payload;
- the **receiver** releases it after copying the contents out (SHMEM puts,
  UPC++ rputs, MPI receives into a user buffer);
- if the receiver *keeps* the array (an MPI receive with no posted buffer
  hands the payload to application code), it simply never releases — the
  storage is garbage-collected like an ordinary allocation;
- a dropped envelope whose retries are exhausted is likewise never released.

Releases are idempotent and the pool never reuses storage before release, so
late releases are safe and double releases are rejected. The pool does no
virtual-time accounting at all: enabling it cannot change a simulated
schedule, only the wall-clock cost of running it.

The pool is thread-safe: on the threaded and multiprocess backends the
receiver releases from a delivery thread while the sender acquires from a
worker thread, so the free lists are guarded by a lock and ownership handoff
in ``release()`` is a single atomic ``dict.pop``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np


class PooledArray(np.ndarray):
    """An ndarray view backed by pooled storage. Only the array returned by
    :meth:`BufferPool.take_copy` carries the pool reference; views derived
    from it (reshape, slices) — and unpickled copies on the wire — are plain
    arrays for release purposes."""

    def __array_finalize__(self, obj):
        if "_pool" not in self.__dict__:
            self._pool = None
            self._raw = None

    def release(self) -> None:
        """Return the backing storage to its pool (idempotent on views,
        rejected on double release of the owner).

        Exactly one caller wins when two threads race a release: ownership
        transfers via ``dict.pop``, atomic under the GIL."""
        d = self.__dict__
        pool = d.pop("_pool", None)
        if pool is None:
            d["_pool"] = None  # keep the attribute present for later calls
            return
        raw = d.get("_raw")
        d["_raw"] = None
        d["_pool"] = None
        pool._give_back(raw)


class BufferPool:
    """Size-classed (power-of-two) pool of message snapshot buffers."""

    def __init__(self, *, max_per_class: int = 64, stats=None,
                 module: str = "net"):
        if max_per_class < 1:
            raise ValueError(f"max_per_class must be >= 1, got {max_per_class}")
        self._free: Dict[int, List[np.ndarray]] = {}
        # Guards the free lists and counters: acquire (worker thread) and
        # release (delivery thread) race on real backends.
        self._lock = threading.Lock()
        self.max_per_class = max_per_class
        self.stats = stats
        self.module = module
        self.hits = 0
        self.misses = 0
        self.released = 0

    # ------------------------------------------------------------------
    def take_copy(self, data: np.ndarray) -> PooledArray:
        """Copy ``data`` into pooled storage; returns a view with ``data``'s
        shape and dtype. The caller owns it until ``release()``."""
        nbytes = int(data.nbytes)
        cls = 1 if nbytes == 0 else 1 << (nbytes - 1).bit_length()
        with self._lock:
            free = self._free.get(cls)
            raw = free.pop() if free else None
            if raw is not None:
                self.hits += 1
            else:
                self.misses += 1
        if raw is not None:
            if self.stats is not None:
                self.stats.count(self.module, "bufpool_hits")
        else:
            raw = np.empty(cls, dtype=np.uint8)
            if self.stats is not None:
                self.stats.count(self.module, "bufpool_misses")
        # One array object straight over the pooled storage (equivalent to
        # raw[:nbytes].view(dtype).reshape(shape) but without the three
        # intermediate ndarrays — this is the per-message hot path).
        view = PooledArray(data.shape, data.dtype, raw)
        view._pool = self
        view._raw = raw
        np.copyto(view, data)
        return view

    def _give_back(self, raw: np.ndarray) -> None:
        if self.stats is not None:
            self.stats.count(self.module, "bufpool_released")
        with self._lock:
            self.released += 1
            free = self._free.setdefault(raw.nbytes, [])
            if len(free) < self.max_per_class:
                free.append(raw)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        n = self.hits + self.misses
        return self.hits / n if n else 0.0

    @property
    def free_buffers(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._free.values())

    def __repr__(self) -> str:
        return (f"BufferPool(hits={self.hits}, misses={self.misses}, "
                f"free={self.free_buffers}, hit_rate={self.hit_rate:.2f})")


def release_if_pooled(data) -> None:
    """Release ``data`` back to its pool when it is an owning
    :class:`PooledArray`; no-op for anything else."""
    release = getattr(data, "release", None)
    if release is not None:
        release()
