"""Shared utilities: errors, deterministic RNG streams, statistics hooks."""

from repro.util.errors import (
    CommError,
    ConfigError,
    DeadlockError,
    GpuError,
    HiperError,
    ModuleError,
    MpiError,
    PlatformError,
    PromiseError,
    RuntimeStateError,
    ShmemError,
    UpcxxError,
)
from repro.util.rng import RngFactory, splitmix64
from repro.util.stats import RuntimeStats, StatsConfig, TimerRecord

__all__ = [
    "CommError",
    "ConfigError",
    "DeadlockError",
    "GpuError",
    "HiperError",
    "ModuleError",
    "MpiError",
    "PlatformError",
    "PromiseError",
    "RuntimeStateError",
    "ShmemError",
    "UpcxxError",
    "RngFactory",
    "splitmix64",
    "RuntimeStats",
    "StatsConfig",
    "TimerRecord",
]
