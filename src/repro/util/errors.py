"""Exception hierarchy for the pyhiper reproduction.

All library-raised exceptions derive from :class:`HiperError` so callers can
catch framework failures without masking programming errors (``TypeError``
etc. propagate unchanged).
"""

from __future__ import annotations

from typing import Iterable, Optional


class HiperError(Exception):
    """Base class for all errors raised by the pyhiper framework."""


class ConfigError(HiperError, ValueError):
    """An invalid runtime, platform, or module configuration was supplied.

    Also a :class:`ValueError`: bad argument *values* (negative delays, NaN
    timestamps, out-of-range ids) raise ConfigError, and callers written
    against the stdlib convention (``except ValueError``) must catch them.
    """


class PlatformError(HiperError):
    """The platform model graph is malformed or a lookup failed."""


class ModuleError(HiperError):
    """A pluggable module failed to initialize, finalize, or register."""


class CommError(HiperError):
    """A communication substrate (MPI/SHMEM/UPC++ backends) failed."""


class RuntimeStateError(HiperError):
    """An API was called from an illegal runtime state.

    Examples: spawning a task after shutdown, calling ``charge()`` outside a
    task, re-entering ``finish`` from a finalizer.
    """


class PromiseError(HiperError):
    """Promise/future misuse, e.g. double ``put`` on a single-assignment promise."""


class DeadlockError(HiperError):
    """The executor proved that no further progress is possible.

    Raised by the simulated executor when every worker is idle, the event
    queue is empty, and at least one task remains blocked on an unsatisfied
    future or an open finish scope.
    """

    def __init__(self, message: str, blocked: Optional[Iterable[str]] = None):
        self.blocked = list(blocked) if blocked is not None else []
        if self.blocked:
            message = f"{message}; blocked entities: {', '.join(self.blocked)}"
        super().__init__(message)


class FaultError(HiperError):
    """An injected fault fired (resilience testing).

    Raised inside a task body when a :class:`repro.resilience.FaultPlan`
    rule targets it; distinct from organic failures so retry policies can
    be scoped to injected faults in tests.
    """


class PlaceFailure(HiperError):
    """A task was lost because its place failed mid-run.

    Only partially-executed (coroutine) tasks receive this: never-started
    tasks are replayed on a surviving place instead (they are idempotent by
    construction — their body has not observed any state yet).
    """

    def __init__(self, message: str, place: Optional[str] = None):
        self.place = place
        super().__init__(message)


class TimeoutExpired(HiperError):
    """A ``with_timeout`` deadline elapsed before the wrapped future fired."""

    def __init__(self, message: str, timeout: float = 0.0):
        self.timeout = timeout
        super().__init__(message)


class GpuError(HiperError):
    """Simulated CUDA device misuse (bad handle, exhausted memory, ...)."""


class ShmemError(CommError):
    """OpenSHMEM-module specific failure (bad symmetric address, ...)."""


class MpiError(CommError):
    """MPI-module specific failure (type mismatch, truncation, ...)."""


class UpcxxError(CommError):
    """UPC++-module specific failure (bad global pointer, ...)."""
