"""Runtime statistics hooks (paper §V "Discussion": unified-scheduler tooling).

The HiPER paper notes that because the runtime schedules *all* work, it can
attribute time to modules and expose semantic performance information. This
module provides that instrumentation layer: counters, timers keyed by
(module, operation), and per-worker activity accounting.

Stats are cheap enough to stay always-on in simulation; the threaded executor
can disable them via :class:`StatsConfig`.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, Iterator, Optional, Tuple


@dataclasses.dataclass
class StatsConfig:
    enabled: bool = True
    track_per_worker: bool = True


@dataclasses.dataclass
class TimerRecord:
    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class RuntimeStats:
    """Aggregated counters/timers for one runtime instance (one rank).

    Keys are ``(module, operation)`` tuples; the core runtime uses module
    ``"core"``. Module implementations report through
    :meth:`count`/:meth:`time`, mirroring the hooks described in paper §V.
    """

    def __init__(self, config: Optional[StatsConfig] = None):
        self.config = config or StatsConfig()
        self.counters: Dict[Tuple[str, str], int] = defaultdict(int)
        self.timers: Dict[Tuple[str, str], TimerRecord] = defaultdict(TimerRecord)
        self.worker_busy: Dict[int, float] = defaultdict(float)
        self.worker_idle: Dict[int, float] = defaultdict(float)

    # -- recording -----------------------------------------------------
    def count(self, module: str, op: str, n: int = 1) -> None:
        if self.config.enabled:
            self.counters[(module, op)] += n

    def time(self, module: str, op: str, elapsed: float) -> None:
        if self.config.enabled:
            self.timers[(module, op)].add(elapsed)

    def worker_activity(self, worker_id: int, busy: float = 0.0, idle: float = 0.0) -> None:
        if self.config.enabled and self.config.track_per_worker:
            if busy:
                self.worker_busy[worker_id] += busy
            if idle:
                self.worker_idle[worker_id] += idle

    # -- reading -------------------------------------------------------
    def counter(self, module: str, op: str) -> int:
        return self.counters.get((module, op), 0)

    def timer(self, module: str, op: str) -> TimerRecord:
        return self.timers.get((module, op), TimerRecord())

    def module_time(self, module: str) -> float:
        """Total time attributed to one module across all its operations."""
        return sum(rec.total for (mod, _), rec in self.timers.items() if mod == module)

    def modules(self) -> Iterator[str]:
        seen = set()
        for mod, _ in list(self.counters) + list(self.timers):
            if mod not in seen:
                seen.add(mod)
                yield mod

    def merge(self, other: "RuntimeStats") -> None:
        """Fold another rank's stats into this one (for cluster-wide reports)."""
        for k, v in other.counters.items():
            self.counters[k] += v
        for k, rec in other.timers.items():
            mine = self.timers[k]
            mine.count += rec.count
            mine.total += rec.total
            mine.max = max(mine.max, rec.max)
        for k, v in other.worker_busy.items():
            self.worker_busy[k] += v
        for k, v in other.worker_idle.items():
            self.worker_idle[k] += v

    def report(self) -> str:
        """Human-readable module/operation breakdown."""
        lines = ["module/operation breakdown:"]
        for (mod, op), rec in sorted(self.timers.items()):
            lines.append(
                f"  {mod:>10s}.{op:<24s} n={rec.count:<8d} total={rec.total:.6f}s mean={rec.mean:.3e}s"
            )
        for (mod, op), n in sorted(self.counters.items()):
            lines.append(f"  {mod:>10s}.{op:<24s} count={n}")
        return "\n".join(lines)
