"""Runtime statistics hooks (paper §V "Discussion": unified-scheduler tooling).

The HiPER paper notes that because the runtime schedules *all* work, it can
attribute time to modules and expose semantic performance information. This
module provides that instrumentation layer — the metrics registry of the
unified observability stack:

- counters and timers keyed by ``(module, operation)``,
- gauges (last-written values, e.g. heap occupancy),
- log2-bucketed histograms (message sizes, sweep batch sizes),
- named time series filled by :class:`TelemetrySampler`, which ticks on
  virtual time under the simulated executor and on wall time under the
  threaded one (both expose ``call_later``),
- per-worker activity accounting.

Stats are cheap enough to stay always-on in simulation; the threaded executor
can disable them via :class:`StatsConfig`. Everything a rank records is
exportable machine-readably via :meth:`RuntimeStats.to_dict` and mergeable
across ranks via :meth:`RuntimeStats.merge` (cluster-wide reports,
``metrics.json``).
"""

from __future__ import annotations

import dataclasses
import time
from collections import defaultdict
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclasses.dataclass
class StatsConfig:
    enabled: bool = True
    track_per_worker: bool = True


class Histogram:
    """Log2-bucketed histogram of non-negative values (cheap, fixed size).

    Bucket ``i`` counts values in ``[2**(i-1), 2**i)`` (bucket 0 counts
    zeros); good enough for message sizes and queue depths where order of
    magnitude is what matters.
    """

    __slots__ = ("counts", "total", "n", "max")

    def __init__(self):
        self.counts: Dict[int, int] = defaultdict(int)
        self.total = 0.0
        self.n = 0
        self.max = 0.0

    def add(self, value: float) -> None:
        if value < 0:
            value = 0.0
        bucket = 0 if value < 1 else int(value).bit_length()
        self.counts[bucket] += 1
        self.total += value
        self.n += 1
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def merge(self, other: "Histogram") -> None:
        for b, c in other.counts.items():
            self.counts[b] += c
        self.total += other.total
        self.n += other.n
        self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "mean": self.mean,
            "max": self.max,
            "buckets": {str(b): c for b, c in sorted(self.counts.items())},
        }


@dataclasses.dataclass
class TimerRecord:
    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class RuntimeStats:
    """Aggregated counters/timers for one runtime instance (one rank).

    Keys are ``(module, operation)`` tuples; the core runtime uses module
    ``"core"``. Module implementations report through
    :meth:`count`/:meth:`time`, mirroring the hooks described in paper §V.
    """

    def __init__(self, config: Optional[StatsConfig] = None):
        self.config = config or StatsConfig()
        self.counters: Dict[Tuple[str, str], int] = defaultdict(int)
        self.timers: Dict[Tuple[str, str], TimerRecord] = defaultdict(TimerRecord)
        self.gauges: Dict[Tuple[str, str], float] = {}
        self.histograms: Dict[Tuple[str, str], Histogram] = defaultdict(Histogram)
        #: Named time series: name -> list of (timestamp, value) samples.
        self.series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self.worker_busy: Dict[int, float] = defaultdict(float)
        self.worker_idle: Dict[int, float] = defaultdict(float)

    # -- recording -----------------------------------------------------
    def count(self, module: str, op: str, n: int = 1) -> None:
        if self.config.enabled:
            self.counters[(module, op)] += n

    def time(self, module: str, op: str, elapsed: float) -> None:
        if self.config.enabled:
            self.timers[(module, op)].add(elapsed)

    def gauge(self, module: str, name: str, value: float) -> None:
        if self.config.enabled:
            self.gauges[(module, name)] = value

    def observe(self, module: str, name: str, value: float) -> None:
        """Add one observation to the ``(module, name)`` histogram."""
        if self.config.enabled:
            self.histograms[(module, name)].add(value)

    def sample(self, name: str, t: float, value: float) -> None:
        """Append one time-series sample (used by :class:`TelemetrySampler`)."""
        if self.config.enabled:
            self.series[name].append((t, value))

    def worker_activity(self, worker_id: int, busy: float = 0.0, idle: float = 0.0) -> None:
        if self.config.enabled and self.config.track_per_worker:
            if busy:
                self.worker_busy[worker_id] += busy
            if idle:
                self.worker_idle[worker_id] += idle

    # -- reading -------------------------------------------------------
    def counter(self, module: str, op: str) -> int:
        return self.counters.get((module, op), 0)

    def timer(self, module: str, op: str) -> TimerRecord:
        return self.timers.get((module, op), TimerRecord())

    def module_time(self, module: str) -> float:
        """Total time attributed to one module across all its operations."""
        return sum(rec.total for (mod, _), rec in self.timers.items() if mod == module)

    def modules(self) -> Iterator[str]:
        seen = set()
        for mod, _ in list(self.counters) + list(self.timers):
            if mod not in seen:
                seen.add(mod)
                yield mod

    def gauge_value(self, module: str, name: str, default: float = 0.0) -> float:
        return self.gauges.get((module, name), default)

    def histogram(self, module: str, name: str) -> Histogram:
        return self.histograms.get((module, name), Histogram())

    def merge(self, other: "RuntimeStats") -> None:
        """Fold another rank's stats into this one (for cluster-wide reports).

        Counters, timers, histograms, and worker activity are additive;
        gauges keep the maximum across ranks; time series are concatenated
        and kept time-sorted (samples from all ranks on one axis).
        """
        for k, v in other.counters.items():
            self.counters[k] += v
        for k, rec in other.timers.items():
            mine = self.timers[k]
            mine.count += rec.count
            mine.total += rec.total
            mine.max = max(mine.max, rec.max)
        for k, v in other.gauges.items():
            self.gauges[k] = max(self.gauges.get(k, v), v)
        for k, h in other.histograms.items():
            self.histograms[k].merge(h)
        for name, points in other.series.items():
            mine_pts = self.series[name]
            mine_pts.extend(points)
            mine_pts.sort(key=lambda p: p[0])
        for k, v in other.worker_busy.items():
            self.worker_busy[k] += v
        for k, v in other.worker_idle.items():
            self.worker_idle[k] += v

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable export (consumed by ``repro profile`` and the
        bench harness)."""
        return {
            "counters": {
                f"{mod}.{op}": n for (mod, op), n in sorted(self.counters.items())
            },
            "timers": {
                f"{mod}.{op}": {
                    "count": rec.count, "total": rec.total,
                    "mean": rec.mean, "max": rec.max,
                }
                for (mod, op), rec in sorted(self.timers.items())
            },
            "gauges": {
                f"{mod}.{name}": v for (mod, name), v in sorted(self.gauges.items())
            },
            "histograms": {
                f"{mod}.{name}": h.to_dict()
                for (mod, name), h in sorted(self.histograms.items())
            },
            "series": {
                name: [[t, v] for t, v in pts]
                for name, pts in sorted(self.series.items())
            },
            "worker_busy": {str(w): v for w, v in sorted(self.worker_busy.items())},
            "worker_idle": {str(w): v for w, v in sorted(self.worker_idle.items())},
        }

    def report(self) -> str:
        """Human-readable module/operation breakdown."""
        lines = ["module/operation breakdown:"]
        for (mod, op), rec in sorted(self.timers.items()):
            lines.append(
                f"  {mod:>10s}.{op:<24s} n={rec.count:<8d} total={rec.total:.6f}s mean={rec.mean:.3e}s"
            )
        for (mod, op), n in sorted(self.counters.items()):
            lines.append(f"  {mod:>10s}.{op:<24s} count={n}")
        for (mod, name), v in sorted(self.gauges.items()):
            lines.append(f"  {mod:>10s}.{name:<24s} gauge={v}")
        return "\n".join(lines)


class TelemetrySampler:
    """Periodic scheduler-telemetry sampling for one runtime (one rank).

    Each tick records, into the rank's :class:`RuntimeStats` time series (and
    optionally as Chrome-trace counter tracks via an attached tracer):

    - ``ready_tasks``   — total ready tasks across the rank's deques,
    - ``event_queue``   — pending engine events/timers on the executor,
    - ``pop_rate`` / ``steal_rate`` — deque pops/steals per second since the
      previous tick,
    - ``idle_fraction`` — mean per-worker idle fraction (virtual clocks under
      the simulated executor; charged busy/idle accounting otherwise),
    - ``events_per_sec`` — engine events dispatched per *wall-clock* second
      since the previous tick (the DES engine's real throughput — the number
      the flat engine exists to raise; 0 on executors without an
      ``events_processed`` counter and on the baseline first tick).

    The two DES-engine observables are also published as gauges under the
    ``sim`` module — ``sim.events_per_sec`` (last tick's rate; cross-rank
    merge keeps the max) and ``sim.event_queue_depth`` — so they show up in
    ``RuntimeStats.report()`` / ``metrics.json`` gauge sections without
    walking the series.

    Ticks ride the executor's ``call_later`` facility, so sampling is on
    virtual time under :class:`~repro.exec.sim.SimExecutor` and on wall time
    under :class:`~repro.exec.threaded.ThreadedExecutor`. ``max_samples``
    bounds the tick chain so a stalled run still quiesces (the simulated
    engine's deadlock proof requires the event queue to drain).
    """

    def __init__(self, runtime, *, period: float = 1e-4,
                 max_samples: int = 4096, tracer=None):
        if period <= 0:
            raise ValueError(f"sampler period must be positive, got {period}")
        self.runtime = runtime
        self.period = float(period)
        self.max_samples = int(max_samples)
        self.tracer = tracer
        self.samples_taken = 0
        self._stopped = False
        self._last_pops = 0
        self._last_steals = 0
        self._last_events = 0
        self._last_wall: Optional[float] = None

    def start(self) -> None:
        """Take one sample immediately, then tick every ``period``.

        The immediate sample guarantees every series exists even for runs
        shorter than one period (the simulated engine also prefers ready
        tasks over timer events, so short pure-compute runs may complete
        before the first deferred tick fires)."""
        self._stopped = False
        self._tick()

    def stop(self) -> None:
        self._stopped = True

    # -- one tick ------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped or self.samples_taken >= self.max_samples:
            return
        rt = self.runtime
        ex = rt.executor
        t = ex.now()
        stats = rt.stats

        ready = rt.deques.total_ready()
        pending = ex.pending_events()
        pops = stats.counter("core", "pop")
        steals = stats.counter("core", "steal")
        pop_rate = (pops - self._last_pops) / self.period
        steal_rate = (steals - self._last_steals) / self.period
        self._last_pops, self._last_steals = pops, steals

        # Engine throughput is a wall-clock rate on purpose: virtual time is
        # workload-defined, so events per *virtual* second says nothing about
        # how fast the engine itself runs.
        events = getattr(ex, "events_processed", 0)
        wall = time.perf_counter()
        if self._last_wall is not None and wall > self._last_wall:
            events_per_sec = (events - self._last_events) / (wall - self._last_wall)
        else:
            events_per_sec = 0.0
        self._last_events, self._last_wall = events, wall

        idle = self._idle_fraction(t)

        stats.sample("ready_tasks", t, float(ready))
        stats.sample("event_queue", t, float(pending))
        stats.sample("pop_rate", t, pop_rate)
        stats.sample("steal_rate", t, steal_rate)
        stats.sample("idle_fraction", t, idle)
        stats.sample("events_per_sec", t, events_per_sec)
        stats.gauge("sim", "events_per_sec", events_per_sec)
        stats.gauge("sim", "event_queue_depth", float(pending))
        if self.tracer is not None:
            self.tracer.record_counter(rt.rank, "ready_tasks", t, float(ready))
            self.tracer.record_counter(rt.rank, "event_queue", t, float(pending))
            self.tracer.record_counter(rt.rank, "events_per_sec", t,
                                       events_per_sec)
            self.tracer.record_counter(rt.rank, "utilization", t,
                                       max(0.0, 1.0 - idle))
        self.samples_taken += 1
        ex.call_later(self.period, self._tick)

    def _idle_fraction(self, t: float) -> float:
        workers = getattr(self.runtime, "workers", [])
        fractions = []
        for w in workers:
            if w.clock > 0:  # virtual-time engine: clocks advance
                fractions.append(min(1.0, w.idle_time / w.clock))
            else:  # wall-clock engine: use charged busy accounting
                busy = self.runtime.stats.worker_busy.get(w.wid, 0.0)
                fractions.append(max(0.0, 1.0 - busy / t) if t > 0 else 0.0)
        return sum(fractions) / len(fractions) if fractions else 0.0
