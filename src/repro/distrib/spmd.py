"""SPMD launcher: run ``main(ctx)`` on every rank of a simulated cluster.

One :class:`SimExecutor` drives every rank's runtime in a single deterministic
virtual-time engine; one :class:`SimFabric` carries all communication. This is
the reproduction's substitute for ``aprun``/``srun`` on Edison/Titan.

The paper's two process layouts map directly:

- *flat* (1 process per core): ``ranks_per_node = cores, workers_per_rank = 1``
- *hybrid* (1-2 processes per node): ``ranks_per_node = 1, workers_per_rank =
  cores`` (the paper's Titan hybrid configuration).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence

from repro.exec.sim import SimExecutor
from repro.net.costmodel import NetworkModel, network
from repro.net.fabric import SimFabric
from repro.net.mux import FabricMux
from repro.platform.hwloc import MachineSpec, discover, machine
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import ConfigError, DeadlockError
from repro.util.stats import RuntimeStats

ModuleFactory = Callable[["RankContext"], Any]


@dataclasses.dataclass
class ClusterConfig:
    """Shape of the simulated cluster and run."""

    nodes: int = 1
    ranks_per_node: int = 1
    workers_per_rank: int = 1
    machine: MachineSpec = dataclasses.field(
        default_factory=lambda: machine("workstation")
    )
    network: NetworkModel = dataclasses.field(default_factory=lambda: network("generic"))
    path_policy: str = "default"
    #: Platform-graph granularity per rank; "flat" keeps simulations fast.
    detail: str = "flat"
    seed: int = 0
    trace: bool = False
    #: Virtual seconds charged per task dispatch (runtime-overhead ablation).
    task_overhead: float = 0.0
    #: Hop-distance topology refining the wire latency (None = uniform).
    topology: Optional[object] = None

    def __post_init__(self):
        if self.nodes < 1 or self.ranks_per_node < 1 or self.workers_per_rank < 1:
            raise ConfigError("nodes, ranks_per_node, workers_per_rank must be >= 1")
        if self.ranks_per_node * self.workers_per_rank > self.machine.cores * 4:
            raise ConfigError(
                f"{self.ranks_per_node} ranks x {self.workers_per_rank} workers "
                f"heavily oversubscribes {self.machine.cores} cores on "
                f"{self.machine.name!r}"
            )

    @property
    def nranks(self) -> int:
        return self.nodes * self.ranks_per_node


class RankContext:
    """Everything one rank's ``main`` needs: identity, runtime, modules.

    ``main`` functions should be *generator* functions that ``yield`` on the
    futures the modules return: in the simulated executor a yielded coroutine
    releases its worker entirely, which is the safe way for iterative SPMD
    patterns to block (see ``SimExecutor`` docs on help-until-ready nesting).
    """

    def __init__(self, rank: int, nranks: int, runtime: HiperRuntime,
                 fabric: SimFabric, config: ClusterConfig,
                 shared: Optional[dict] = None):
        self.rank = rank
        self.nranks = nranks
        self.runtime = runtime
        self.fabric = fabric
        self.config = config
        #: One dict object shared by every rank of the run; modules use it to
        #: find their peer instances (e.g. UPC++ RPC target runtimes).
        self.shared = shared if shared is not None else {}
        self._mux: Optional["FabricMux"] = None

    @property
    def mux(self) -> "FabricMux":
        """The rank's protocol multiplexer (created on first use).

        The runtime's stats registry is attached so every module's
        communication volume is accounted per channel automatically.
        """
        if self._mux is None:
            self._mux = FabricMux(self.fabric, self.rank,
                                  stats=self.runtime.stats)
        return self._mux

    # Convenience accessors for the standard modules (raise if not installed).
    @property
    def mpi(self):
        return self.runtime.module("mpi")

    @property
    def shmem(self):
        return self.runtime.module("shmem")

    @property
    def cuda(self):
        return self.runtime.module("cuda")

    @property
    def upcxx(self):
        return self.runtime.module("upcxx")

    @property
    def node(self) -> int:
        return self.fabric.node_of(self.rank)

    def __repr__(self) -> str:
        return f"RankContext(rank={self.rank}/{self.nranks})"


@dataclasses.dataclass
class SpmdResult:
    """Outcome of an SPMD run."""

    results: List[Any]
    makespan: float
    executor: SimExecutor
    fabric: SimFabric
    contexts: List[RankContext]

    def merged_stats(self) -> RuntimeStats:
        out = RuntimeStats()
        for ctx in self.contexts:
            out.merge(ctx.runtime.stats)
        return out

    @property
    def nranks(self) -> int:
        return len(self.results)


def spmd_run(
    main: Callable[[RankContext], Any],
    config: Optional[ClusterConfig] = None,
    *,
    module_factories: Sequence[ModuleFactory] = (),
    executor: Optional[SimExecutor] = None,
    fault_injector=None,
) -> SpmdResult:
    """Run ``main(ctx)`` on every rank; return per-rank results and timing.

    ``main`` may be a plain callable (blocking waits allowed) or a generator
    function (coroutine main, yielding futures). ``module_factories`` build
    each rank's pluggable modules, e.g.::

        spmd_run(main, cfg, module_factories=[mpi_factory(), cuda_factory()])

    ``fault_injector`` (a :class:`repro.resilience.FaultInjector`) hooks the
    run for chaos testing: message faults into the fabric, task faults into
    the executor, and per-rank timed failures, retry policies, and
    checkpoint-store faults via ``arm_rank``.
    """
    config = config or ClusterConfig()
    ex = executor or SimExecutor(trace=config.trace,
                                 task_overhead=config.task_overhead)
    if getattr(ex, "shards", 1) > 1:
        # Sharded parallel DES: one flat sub-simulator per OS-process shard,
        # synchronized by conservative time windows (repro.exec.shards).
        from repro.exec.shards import sharded_spmd_run

        return sharded_spmd_run(
            main, config, module_factories=module_factories, executor=ex,
            fault_injector=fault_injector)
    nranks = config.nranks
    fabric = SimFabric(ex, nranks, config.network,
                       ranks_per_node=config.ranks_per_node,
                       topology=config.topology)
    if fault_injector is not None:
        fault_injector.attach(ex, fabric)

    shared: dict = {}
    contexts: List[RankContext] = []
    for rank in range(nranks):
        model = discover(
            config.machine,
            num_workers=config.workers_per_rank,
            detail=config.detail,
        )
        model.name = f"{model.name}-r{rank}"
        rt = HiperRuntime(
            model, ex, paths=config.path_policy, rank=rank, nranks=nranks,
            seed=config.seed,
        )
        ctx = RankContext(rank, nranks, rt, fabric, config, shared=shared)
        contexts.append(ctx)

    # Install modules only after every context exists: module initializers
    # may exchange registrations through the fabric.
    for ctx in contexts:
        mods = [factory(ctx) for factory in module_factories]
        ctx.runtime.start(mods)
    if fault_injector is not None:
        # After module install: retry policies need registered channels, and
        # storage hooks need the checkpoint module's store to exist.
        for ctx in contexts:
            fault_injector.arm_rank(ctx)

    futures = [
        ex.submit_root(ctx.runtime, _bind_main(main, ctx), name=f"rank{ctx.rank}-main")
        for ctx in contexts
    ]
    try:
        ex.drive(lambda: all(f.satisfied for f in futures))
    except DeadlockError:
        # A rank that died (its future carries the exception) strands its
        # peers at barriers/receives; surface the root cause, not the stall.
        if not any(f.satisfied for f in futures):
            raise

    results = []
    errors = []
    for rank, fut in enumerate(futures):
        if not fut.satisfied:
            errors.append((rank, DeadlockError(
                f"rank {rank} stalled after a peer failure")))
            results.append(None)
            continue
        try:
            results.append(fut.value())
        except BaseException as exc:  # noqa: BLE001 - surface after loop
            errors.append((rank, exc))
            results.append(None)
    makespan = ex.makespan()
    for ctx in contexts:
        try:
            ctx.runtime.shutdown()
        except Exception:  # noqa: BLE001
            # Finalize complaints (un-quieted ops etc.) are expected fallout
            # of a rank failure; don't let them mask the root cause.
            if not errors:
                raise
    if errors:
        errors.sort(key=lambda e: isinstance(e[1], DeadlockError))
        rank, first = errors[0]
        raise ConfigError(
            f"{len(errors)} rank(s) failed; first failure on rank {rank}: "
            f"{type(first).__name__}: {first}"
        ) from first
    return SpmdResult(results, makespan, ex, fabric, contexts)


def _bind_main(main: Callable[[RankContext], Any], ctx: RankContext):
    def _main():
        return main(ctx)

    _main.__name__ = f"main_rank{ctx.rank}"
    return _main
