"""SPMD multi-rank harness over the simulated executor."""

from repro.distrib.spmd import ClusterConfig, RankContext, SpmdResult, spmd_run

__all__ = ["ClusterConfig", "RankContext", "SpmdResult", "spmd_run"]
