"""The HiPER MPI module (paper §II-C1).

Implements the paper's two flows over :class:`MpiBackend`:

- **taskify** (synchronous-looking APIs): wrap the underlying call in a task
  targeted at the Interconnect place and deschedule the caller until it
  completes. In this reproduction the communication task is a *coroutine*
  (it suspends on backend request futures instead of holding a call stack —
  the analogue of the paper's Boost.Context suspension), and every taskified
  API comes in two spellings:

  * ``send(...)`` — blocks the calling task (plain-callable callers);
  * ``send_async(...) -> Future`` — returns the communication task's
    completion future (coroutine callers ``yield`` it). Iterative SPMD mains
    should use the async spellings (see ``SimExecutor`` nesting notes).

- **polling** (asynchronous APIs): ``isend``/``irecv`` call the underlying
  nonblocking API to get a request, pair it with a fresh promise on the
  pending list, and let the module's polling task satisfy promises as
  requests complete. The ``MPI_Request`` out-parameter of the standard API
  is replaced by a returned ``future_t``, exactly the paper's API change.

The module asserts at initialization that the Interconnect place exists and
is covered by exactly one worker's paths, the analogue of configuring the
underlying library in ``MPI_THREAD_FUNNELED`` mode.

``direct=True`` builds the module in *flat* mode: communication runs at the
caller's place with no interconnect funneling — the behaviour of a plain MPI
library in a process-per-core program, used by reference (non-HiPER)
benchmark variants and by the funneling ablation.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.modules.base import HiperModule
from repro.mpi import collectives as coll
from repro.mpi.backend import ANY_SOURCE, ANY_TAG, COMM_WORLD, MpiBackend, MpiRequest
from repro.net.coalesce import CoalescePolicy
from repro.platform.place import PlaceType
from repro.runtime.future import Future, Promise, when_all
from repro.runtime.polling import PollingService
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import ModuleError, MpiError


class MpiModule(HiperModule):
    """Pluggable MPI module: familiar APIs, unified scheduling."""

    name = "mpi"
    capabilities = frozenset({"communication", "p2p", "collectives"})

    def __init__(
        self,
        ctx,
        *,
        direct: bool = False,
        poll_interval: float = 2e-6,
        eager_kick: bool = True,
        adaptive_polling: bool = False,
        max_poll_interval: Optional[float] = None,
        coalesce: Optional[CoalescePolicy] = None,
    ):
        """``ctx`` is the :class:`repro.distrib.RankContext` (the module uses
        its rank id and fabric mux). ``adaptive_polling`` enables exponential
        poll-interval backoff (bounded by ``max_poll_interval``; see
        :class:`PollingService`); ``coalesce`` batches small sends per
        destination (a :class:`CoalescePolicy`, or True for the defaults).
        Both default off to preserve the paper's fixed-interval, per-message
        behavior bit-for-bit."""
        super().__init__()
        self.ctx = ctx
        self.rank = ctx.rank
        self.nranks = ctx.nranks
        self.direct = direct
        self._poll_interval = poll_interval
        self._eager_kick = eager_kick
        self._adaptive_polling = adaptive_polling
        self._max_poll_interval = max_poll_interval
        self.coalesce = CoalescePolicy() if coalesce is True else coalesce
        self.backend: Optional[MpiBackend] = None
        self.polling: Optional[PollingService] = None
        self.runtime: Optional[HiperRuntime] = None

    # ------------------------------------------------------------------
    # lifecycle (paper §II-C items 1-2)
    # ------------------------------------------------------------------
    def initialize(self, runtime: HiperRuntime) -> None:
        self.require_place_type(runtime, PlaceType.INTERCONNECT)
        inter = runtime.interconnect
        owners = runtime.paths.workers_covering(inter)
        if not self.direct and len(owners) != 1:
            raise ModuleError(
                "MPI module requires the Interconnect place on exactly one "
                f"worker's pop and steal paths (THREAD_FUNNELED); found "
                f"{len(owners)} covering workers — choose a path policy "
                "accordingly"
            )
        self.runtime = runtime
        self.backend = MpiBackend(self.ctx.mux, self.rank,
                                  on_progress=self._on_progress)
        if self.coalesce is not None:
            self.backend.enable_coalescing(self.coalesce)
        self.polling = PollingService(
            runtime, inter, module=self.name, interval=self._poll_interval,
            eager_kick=self._eager_kick, adaptive=self._adaptive_polling,
            max_interval=self._max_poll_interval, name="mpi-poll",
        )
        # Paper §II-C item 4: user-facing functions in the HiPER namespace.
        for api_name, fn in [
            ("MPI_Send", self.send), ("MPI_Recv", self.recv),
            ("MPI_Isend", self.isend), ("MPI_Irecv", self.irecv),
            ("MPI_Isend_await", self.isend_await),
            ("MPI_Barrier", self.barrier), ("MPI_Bcast", self.bcast),
            ("MPI_Reduce", self.reduce), ("MPI_Allreduce", self.allreduce),
            ("MPI_Gather", self.gather), ("MPI_Allgather", self.allgather),
            ("MPI_Scatter", self.scatter), ("MPI_Alltoall", self.alltoall),
            ("MPI_Waitall", self.waitall),
        ]:
            self.export(runtime, api_name, fn)
        self._initialized = True

    def finalize(self, runtime: HiperRuntime) -> None:
        if self.polling is not None and self.polling.outstanding:
            raise MpiError(
                f"MPI finalized with {self.polling.outstanding} outstanding "
                f"asynchronous operations on rank {self.rank}"
            )

    def _on_progress(self) -> None:
        if self.polling is not None:
            self.polling.kick()

    # ------------------------------------------------------------------
    # the paper's two flows
    # ------------------------------------------------------------------
    def _comm_task(self, gen_factory: Callable[[], Any], what: str) -> Future:
        """Taskify flow: spawn the communication coroutine at the
        Interconnect place (or the caller's place in ``direct`` mode);
        return its completion future."""
        rt = self.runtime
        assert rt is not None
        place = rt.default_place() if self.direct else rt.interconnect
        fut = rt.spawn(
            gen_factory, place=place, module=self.name,
            name=f"mpi-{what}", return_future=True,
        )
        rt.stats.count(self.name, what)
        assert fut is not None
        return fut

    def _request_to_future(self, req: MpiRequest, what: str) -> Future:
        """Polling flow: request + promise + polling task (paper §II-C1)."""
        rt = self.runtime
        assert rt is not None and self.polling is not None
        promise = Promise(name=f"mpi-{what}")
        self.polling.watch(
            lambda: (True, req.value) if req.test() else (False, None), promise
        )
        rt.stats.count(self.name, what)
        return promise.get_future()

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send_async(self, data: Any, dst: int, tag: int = 0,
                   comm: int = COMM_WORLD) -> Future:
        """Taskified send. The buffer is snapshotted at call time, so the
        returned future's satisfaction means "fully handed to the library"."""
        b = self._backend()
        if isinstance(data, np.ndarray):
            data = data.copy()

        def _gen():
            req = b.isend(data, dst, tag, comm)
            yield req.internal_future()

        return self._comm_task(_gen, "send")

    def send(self, data: Any, dst: int, tag: int = 0, comm: int = COMM_WORLD) -> None:
        """Blocking send (plain-callable callers only)."""
        self.send_async(data, dst, tag, comm).wait()

    def recv_async(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG, comm: int = COMM_WORLD,
        *, buffer: Optional[np.ndarray] = None,
    ) -> Future:
        """Taskified receive; future carries the payload."""
        b = self._backend()

        def _gen():
            req = b.irecv(src, tag, comm, buffer=buffer)
            data, _, _ = yield req.internal_future()
            return data

        return self._comm_task(_gen, "recv")

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: int = COMM_WORLD, *, buffer: Optional[np.ndarray] = None) -> Any:
        """Blocking receive; returns the payload."""
        return self.recv_async(src, tag, comm, buffer=buffer).wait()

    def isend(self, data: Any, dst: int, tag: int = 0, comm: int = COMM_WORLD) -> Future:
        """Nonblocking send returning a ``future_t`` (paper's API change)."""
        return self._request_to_future(
            self._backend().isend(data, dst, tag, comm), "isend"
        )

    def irecv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG, comm: int = COMM_WORLD,
        *, buffer: Optional[np.ndarray] = None,
    ) -> Future:
        """Nonblocking receive returning a future of ``(data, src, tag)``."""
        return self._request_to_future(
            self._backend().irecv(src, tag, comm, buffer=buffer), "irecv"
        )

    def isend_await(self, data_fn: Callable[[], Any], dst: int, dep: Future,
                    tag: int = 0, comm: int = COMM_WORLD) -> Future:
        """``MPI_Isend_await`` from the paper's §II-D listing: issue the send
        once ``dep`` is satisfied. ``data_fn`` materializes the payload at
        issue time (typically reading the buffer the dependency filled)."""
        out = Promise(name="mpi-isend_await")

        def _issue(_f: Future) -> None:
            try:
                _f.value()
            except BaseException as exc:  # noqa: BLE001
                out.put_exception(exc)
                return
            self.isend(data_fn(), dst, tag, comm).on_ready(
                lambda f: _chain(f, out)
            )

        dep.on_ready(_issue)
        return out.get_future()

    # ------------------------------------------------------------------
    # collectives (one participating task per rank, paper §II-C1)
    # ------------------------------------------------------------------
    def barrier_async(self) -> Future:
        b = self._backend()
        tag = b.next_collective_tag()
        return self._comm_task(lambda: coll.barrier(b, tag), "barrier")

    def barrier(self) -> None:
        self.barrier_async().wait()

    def bcast_async(self, data: Any, root: int = 0) -> Future:
        b = self._backend()
        tag = b.next_collective_tag()
        return self._comm_task(lambda: coll.bcast(b, data, root, tag), "bcast")

    def bcast(self, data: Any, root: int = 0) -> Any:
        return self.bcast_async(data, root).wait()

    def reduce_async(self, value: Any, op: Callable[[Any, Any], Any],
                     root: int = 0) -> Future:
        b = self._backend()
        tag = b.next_collective_tag()
        return self._comm_task(lambda: coll.reduce(b, value, op, root, tag), "reduce")

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        return self.reduce_async(value, op, root).wait()

    def allreduce_async(self, value: Any, op: Callable[[Any, Any], Any]) -> Future:
        b = self._backend()
        tag = b.next_collective_tag()
        return self._comm_task(lambda: coll.allreduce(b, value, op, tag), "allreduce")

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        return self.allreduce_async(value, op).wait()

    def gather_async(self, value: Any, root: int = 0) -> Future:
        b = self._backend()
        tag = b.next_collective_tag()
        return self._comm_task(lambda: coll.gather(b, value, root, tag), "gather")

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        return self.gather_async(value, root).wait()

    def allgather_async(self, value: Any) -> Future:
        b = self._backend()
        tag = b.next_collective_tag()
        return self._comm_task(lambda: coll.allgather(b, value, tag), "allgather")

    def allgather(self, value: Any) -> List[Any]:
        return self.allgather_async(value).wait()

    def scatter_async(self, values: Optional[Sequence[Any]], root: int = 0) -> Future:
        b = self._backend()
        tag = b.next_collective_tag()
        return self._comm_task(lambda: coll.scatter(b, values, root, tag), "scatter")

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Any:
        return self.scatter_async(values, root).wait()

    def alltoall_async(self, values: Sequence[Any]) -> Future:
        b = self._backend()
        tag = b.next_collective_tag()
        return self._comm_task(lambda: coll.alltoall(b, values, tag), "alltoall")

    def alltoall(self, values: Sequence[Any]) -> List[Any]:
        return self.alltoall_async(values).wait()

    def waitall(self, futures: Sequence[Future]) -> List[Any]:
        """``MPI_Waitall`` over HiPER futures (blocking spelling)."""
        return when_all(list(futures)).wait()

    def waitall_future(self, futures: Sequence[Future]) -> Future:
        """Future spelling of Waitall, for coroutine callers."""
        return when_all(list(futures))

    # ------------------------------------------------------------------
    def _backend(self) -> MpiBackend:
        if self.backend is None:
            raise ModuleError("MPI module used before initialization")
        return self.backend


def _chain(src: Future, dst: Promise) -> None:
    try:
        dst.put(src.value())
    except BaseException as exc:  # noqa: BLE001
        dst.put_exception(exc)


def mpi_factory(**kwargs) -> Callable[[Any], MpiModule]:
    """Module factory for :func:`repro.distrib.spmd_run`."""
    return lambda ctx: MpiModule(ctx, **kwargs)
