"""Collective algorithms over the point-to-point backend.

These are the algorithms a production MPI library would run under the hood;
the module schedules each collective call as ONE coroutine task at the
Interconnect place (paper §II-C1: "for all collectives a single task from
each MPI rank is expected to participate").

Every function here is a *generator*: it suspends (``yield``) on request
futures instead of blocking its worker, so collectives from many ranks
interleave freely in the simulated executor without stacking call frames.

Algorithms: dissemination barrier, binomial-tree broadcast/reduce,
reduce+broadcast allreduce, gather/allgather, scatter, and pairwise-exchange
alltoall.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.mpi.backend import MpiBackend
from repro.util.errors import MpiError


def barrier(backend: MpiBackend, tag: int):
    """Dissemination barrier: ceil(log2 P) rounds of pairwise signals."""
    n, r = backend.nranks, backend.rank
    if n == 1:
        return
    mask = 1
    rnd = 0
    while mask < n:
        dst = (r + mask) % n
        src = (r - mask) % n
        sreq = backend.isend(None, dst, tag=tag + rnd)
        rreq = backend.irecv(src=src, tag=tag + rnd)
        yield sreq.internal_future()
        yield rreq.internal_future()
        mask <<= 1
        rnd += 1


def bcast(backend: MpiBackend, data: Any, root: int, tag: int):
    """Binomial-tree broadcast; returns the broadcast value on every rank."""
    n, r = backend.nranks, backend.rank
    if not (0 <= root < n):
        raise MpiError(f"bcast root {root} out of range")
    vr = (r - root) % n  # virtual rank: root becomes 0
    mask = 1
    while mask < n:
        if vr & mask:
            src = (r - mask) % n
            (data, _, _) = yield backend.irecv(src=src, tag=tag).internal_future()
            break
        mask <<= 1
    # Forward to children: every mask below the bit we received on.
    mask >>= 1
    while mask > 0:
        if vr + mask < n:
            dst = (r + mask) % n
            backend.isend(data, dst, tag=tag)
        mask >>= 1
    return data


def reduce(
    backend: MpiBackend,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int,
    tag: int,
):
    """Binomial-tree reduction; returns the result on ``root``, None elsewhere.

    ``op`` must be associative and commutative (as for predefined MPI ops).
    """
    n, r = backend.nranks, backend.rank
    if not (0 <= root < n):
        raise MpiError(f"reduce root {root} out of range")
    vr = (r - root) % n
    acc = value
    mask = 1
    while mask < n:
        if vr & mask:
            parent = ((vr & ~mask) + root) % n
            backend.isend(acc, parent, tag=tag)
            return None
        partner = vr | mask
        if partner < n:
            (other, _, _) = yield backend.irecv(
                src=(partner + root) % n, tag=tag
            ).internal_future()
            acc = op(acc, other)
        mask <<= 1
    return acc


def allreduce(
    backend: MpiBackend, value: Any, op: Callable[[Any, Any], Any], tag: int
):
    """reduce-to-0 then broadcast (two binomial trees)."""
    acc = yield from reduce(backend, value, op, root=0, tag=tag)
    result = yield from bcast(backend, acc, root=0, tag=tag + 64)
    return result


def gather(backend: MpiBackend, value: Any, root: int, tag: int):
    """Gather one value per rank to ``root`` (rank-indexed list)."""
    n, r = backend.nranks, backend.rank
    if r != root:
        backend.isend((r, value), root, tag=tag)
        return None
    out: List[Any] = [None] * n
    out[r] = value
    for _ in range(n - 1):
        ((src, val), _, _) = yield backend.irecv(tag=tag).internal_future()
        out[src] = val
    return out


def allgather(backend: MpiBackend, value: Any, tag: int):
    vals = yield from gather(backend, value, root=0, tag=tag)
    result = yield from bcast(backend, vals, root=0, tag=tag + 64)
    return result


def scatter(backend: MpiBackend, values: Optional[Sequence[Any]], root: int,
            tag: int):
    n, r = backend.nranks, backend.rank
    if r == root:
        if values is None or len(values) != n:
            raise MpiError(f"scatter root needs exactly {n} values")
        for dst in range(n):
            if dst != root:
                backend.isend(values[dst], dst, tag=tag)
        return values[root]
    (val, _, _) = yield backend.irecv(src=root, tag=tag).internal_future()
    return val


def alltoall(backend: MpiBackend, values: Sequence[Any], tag: int):
    """Pairwise-exchange alltoall: ``values[d]`` goes to rank d; returns the
    rank-indexed list received. This is the pattern whose NIC incast produces
    the paper's Fig. 5 flat-OpenSHMEM collapse (same pattern, SHMEM spelling).
    """
    n, r = backend.nranks, backend.rank
    if len(values) != n:
        raise MpiError(f"alltoall needs exactly {n} send values, got {len(values)}")
    out: List[Any] = [None] * n
    out[r] = values[r]
    sends = []
    for k in range(1, n):
        dst = (r + k) % n
        sends.append(backend.isend(values[dst], dst, tag=tag))
    for _ in range(n - 1):
        (val, src, _) = yield backend.irecv(tag=tag).internal_future()
        out[src] = val
    for req in sends:
        yield req.internal_future()
    return out


def alltoallv(
    backend: MpiBackend, arrays: Sequence[Optional[np.ndarray]], tag: int
):
    """Variable-size numpy alltoall (``None`` entries mean "nothing for that
    rank" and arrive as None)."""
    n = backend.nranks
    if len(arrays) != n:
        raise MpiError(f"alltoallv needs exactly {n} send arrays")
    result = yield from alltoall(backend, list(arrays), tag)
    return result
