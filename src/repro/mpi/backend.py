"""The underlying message-passing library the MPI module "taskifies".

The paper's MPI module sits on a production MPI (OpenMPI, MVAPICH...); this
backend is the reproduction's stand-in (DESIGN.md §2): tag matching with
MPI's semantics — ``(communicator, source, tag)`` triples, ``ANY_SOURCE`` /
``ANY_TAG`` wildcards, non-overtaking pairwise order, an unexpected-message
queue — over the simulated fabric.

Requests mirror ``MPI_Request``: ``test()`` reports completion (sends
complete at injection, i.e. buffered/eager semantics; receives at match +
delivery). The module layer converts requests to HiPER futures through the
polling service exactly as the paper describes; backend internals (collective
algorithms) may wait on a request's internal future directly.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.net.coalesce import CoalescePolicy
from repro.net.mux import FabricMux
from repro.runtime.context import current_context
from repro.runtime.future import Future, Promise
from repro.util.bufpool import BufferPool, release_if_pooled
from repro.util.errors import MpiError

ANY_SOURCE = -1
ANY_TAG = -1
COMM_WORLD = 0

#: Tags at or above this value are reserved for internal collectives.
_INTERNAL_TAG_BASE = 1 << 28


class MpiRequest:
    """Completion handle, analogous to ``MPI_Request``."""

    __slots__ = ("kind", "_done", "_value", "completion_time", "_promise", "seq")
    _seqs = itertools.count()

    def __init__(self, kind: str):
        self.kind = kind
        self._done = False
        self._value: Any = None
        self.completion_time = 0.0
        self._promise: Optional[Promise] = None
        self.seq = next(self._seqs)

    def test(self) -> bool:
        """Non-blocking completion probe (the polled predicate)."""
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise MpiError(f"{self.kind} request read before completion")
        return self._value

    def internal_future(self) -> Future:
        """Library-internal future (collective algorithms); user code gets
        futures through the module's polling service instead."""
        if self._promise is None:
            self._promise = Promise(name=f"mpireq-{self.kind}-{self.seq}")
            if self._done:
                self._promise.put(self._value)
        return self._promise.get_future()

    def _complete(self, value: Any, time: float) -> None:
        if self._done:
            raise MpiError(f"{self.kind} request completed twice (internal)")
        self._done = True
        self._value = value
        self.completion_time = time
        if self._promise is not None:
            self._promise.put(value)

    def __repr__(self) -> str:
        return f"<MpiRequest {self.kind} #{self.seq} done={self._done}>"


class _Envelope:
    """Wire format: matching triple plus payload."""

    __slots__ = ("tag", "comm", "data", "nbytes")

    def __init__(self, tag: int, comm: int, data: Any, nbytes: int):
        self.tag = tag
        self.comm = comm
        self.data = data
        self.nbytes = nbytes


def _payload_nbytes(data: Any) -> int:
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data)
    if data is None:
        return 0
    return 64  # control-message estimate for small Python objects


class MpiBackend:
    """Per-rank matching engine over the fabric."""

    def __init__(
        self,
        mux: FabricMux,
        rank: int,
        *,
        on_progress: Optional[Callable[[], None]] = None,
        channel: str = "mpi",
        stats=None,
    ):
        self.mux = mux
        self.rank = rank
        self.nranks = mux.nranks
        self.channel = channel
        #: Hook invoked (from event context) whenever a request completes;
        #: the module points this at its polling service's ``kick``.
        self.on_progress = on_progress
        #: Optional RuntimeStats: match/unexpected-queue accounting under the
        #: backend's channel name.
        self.stats = stats if stats is not None else mux.stats
        self._posted: List[Tuple[int, int, int, Optional[np.ndarray], MpiRequest]] = []
        self._unexpected: List[Tuple[int, _Envelope, float]] = []
        # Guards the matching queues: on real backends irecv (worker thread)
        # races _on_delivery (delivery thread) on the same check-then-act.
        # The executor's pluggable lock keeps the sim path lock-free.
        self._qlock = mux.fabric.executor.lock_class()
        self._coll_seq = 0
        #: Recycles send-snapshot buffers (timing-neutral; wall-clock only).
        self.pool = BufferPool(stats=self.stats, module=channel)
        mux.register_channel(channel, self._on_delivery)

    def enable_retries(self, policy) -> None:
        """Retransmit dropped/corrupted messages on this backend's channel
        per ``policy`` (a :class:`repro.resilience.RetryPolicy`). Note MPI's
        non-overtaking guarantee is relaxed for the retried message — see
        ``docs/resilience.md``."""
        self.mux.set_retry_policy(self.channel, policy)

    def enable_coalescing(self, policy: Optional[CoalescePolicy] = None) -> None:
        """Batch small sends per destination into coalesced envelopes (see
        :mod:`repro.net.coalesce`). Opt-in: virtual-time schedules change."""
        self.mux.enable_coalescing(self.channel, policy)

    def _snapshot(self, data: Any) -> Any:
        """Copy mutable buffers so the sender may reuse them immediately.
        Array snapshots come from the buffer pool; the receive path releases
        them when it copies into a user buffer."""
        if isinstance(data, np.ndarray):
            return self.pool.take_copy(data)
        if isinstance(data, bytearray):
            return bytes(data)
        return data  # treated as immutable

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(
        self, data: Any, dst: int, tag: int = 0, comm: int = COMM_WORLD,
        *, nbytes: Optional[int] = None,
    ) -> MpiRequest:
        """Asynchronous send; request completes when the source buffer is
        reusable (injection complete — eager/buffered semantics)."""
        self._check_peer(dst)
        self._check_tag(tag)
        req = MpiRequest("isend")
        env = _Envelope(tag, comm, self._snapshot(data),
                        _payload_nbytes(data) if nbytes is None else nbytes)
        self._charge_send_cpu()
        self.mux.transmit(
            dst, self.channel, env, env.nbytes,
            on_injected=lambda t: self._finish(req, None, t),
        )
        return req

    def irecv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: int = COMM_WORLD,
        *,
        buffer: Optional[np.ndarray] = None,
    ) -> MpiRequest:
        """Asynchronous receive; request value is ``(data, src, tag)``.

        If ``buffer`` is given, matched array payloads are copied into it
        (size-checked), mirroring MPI's user-provided receive buffers.
        """
        if src != ANY_SOURCE:
            self._check_peer(src)
        req = MpiRequest("irecv")
        # Check the unexpected queue first, in arrival order. Match + remove
        # (or post) happens atomically; the delivery itself runs unlocked.
        matched = None
        with self._qlock:
            for i, (msrc, env, t) in enumerate(self._unexpected):
                if self._matches(src, tag, comm, msrc, env):
                    del self._unexpected[i]
                    matched = (msrc, env, t)
                    break
            else:
                self._posted.append((src, tag, comm, buffer, req))
        if matched is not None:
            msrc, env, t = matched
            self._count("msgs_matched")
            self._deliver_to(req, buffer, msrc, env, t)
        return req

    def _matches(self, want_src: int, want_tag: int, want_comm: int,
                 msrc: int, env: _Envelope) -> bool:
        return (
            want_comm == env.comm
            and (want_src == ANY_SOURCE or want_src == msrc)
            and (want_tag == ANY_TAG or want_tag == env.tag)
        )

    def _on_delivery(self, src: int, env: _Envelope, time: float) -> None:
        matched = None
        with self._qlock:
            for i, (wsrc, wtag, wcomm, buffer, req) in enumerate(self._posted):
                if self._matches(wsrc, wtag, wcomm, src, env):
                    del self._posted[i]
                    matched = (buffer, req)
                    break
            else:
                self._unexpected.append((src, env, time))
        if matched is not None:
            buffer, req = matched
            self._count("msgs_matched")
            self._deliver_to(req, buffer, src, env, time)
            return
        self._count("msgs_unexpected")

    def _count(self, op: str, n: int = 1) -> None:
        if self.stats is not None:
            self.stats.count(self.channel, op, n)

    def _deliver_to(self, req: MpiRequest, buffer: Optional[np.ndarray],
                    src: int, env: _Envelope, time: float) -> None:
        data = env.data
        if buffer is not None:
            if not isinstance(data, np.ndarray):
                raise MpiError(
                    f"receive posted a buffer but message from rank {src} "
                    f"(tag {env.tag}) carries {type(data).__name__}"
                )
            if data.size > buffer.size:
                raise MpiError(
                    f"message truncation: {data.size} elements into buffer of "
                    f"{buffer.size} (src={src}, tag={env.tag})"
                )
            flat = buffer.reshape(-1)
            flat[: data.size] = data.reshape(-1)
            release_if_pooled(data)  # contents copied out; recycle storage
            data = buffer
        self._finish(req, (data, src, env.tag), time)

    def _finish(self, req: MpiRequest, value: Any, time: float) -> None:
        req._complete(value, time)
        if self.on_progress is not None:
            self.on_progress()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def next_collective_tag(self) -> int:
        """Internal tag for one collective call. Correct because MPI requires
        all ranks to invoke collectives on a communicator in the same order."""
        tag = _INTERNAL_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        return tag

    def _charge_send_cpu(self) -> None:
        ctx = current_context()
        if ctx is not None and ctx.worker is not None:
            ctx.executor.charge(self.mux.fabric.cpu_send_overhead())

    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self.nranks):
            raise MpiError(f"peer rank {peer} out of range [0, {self.nranks})")

    def _check_tag(self, tag: int) -> None:
        if tag < 0:
            raise MpiError(f"negative user tag {tag} (wildcards are recv-side only)")

    @property
    def pending_recvs(self) -> int:
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    def __repr__(self) -> str:
        return (
            f"MpiBackend(rank={self.rank}/{self.nranks}, posted={len(self._posted)}, "
            f"unexpected={len(self._unexpected)})"
        )
