"""The HiPER MPI module and its underlying matching backend (paper §II-C1)."""

from repro.mpi.backend import (
    ANY_SOURCE,
    ANY_TAG,
    COMM_WORLD,
    MpiBackend,
    MpiRequest,
)
from repro.mpi.module import MpiModule, mpi_factory

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "COMM_WORLD",
    "MpiBackend",
    "MpiRequest",
    "MpiModule",
    "mpi_factory",
]
