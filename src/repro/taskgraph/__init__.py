"""Access-mode task graphs over the HiPER runtime.

The fork/join core (``async_``/``finish``/futures) makes the user wire
dependencies by hand. This package adds the Specx/StarPU layer on top:
tasks declare *what they touch* (``read``/``write``/``commute``/
``maybe_write`` access modes on :class:`DataHandle` arguments) and the
graph infers the dependency DAG — per-datum version chains, commutative
reordering, speculative execution with bit-exact rollback, and
cost-model-driven placement over multi-implementation tasks.

Entry points:

- :class:`TaskGraph` / :func:`async_task` — build and run a graph
  (``with TaskGraph() as g: async_task(f, read=[a], write=[b])``);
- :class:`DataHandle` — a named, versioned datum (``g.handle(payload)``);
- :class:`TaskImpl` / :class:`CostModel` / ``policy="dmda"`` — multiple
  implementations per task and calibrated place+variant selection;
- :class:`WritePredictor` — the speculation predictor for ``maybe_write``
  tasks.

See ``docs/taskgraph.md`` for the model and protocol details.
"""

from repro.taskgraph.cost import (CostModel, DmdaPolicy, HelpFirstPolicy,
                                  TaskImpl, make_policy)
from repro.taskgraph.data import CommuteRun, DataHandle
from repro.taskgraph.graph import TaskGraph, TaskNode, WritePredictor, async_task
from repro.taskgraph.workloads import (hetero_workload, isx_dag_workload,
                                       reduction_workload)

__all__ = [
    "CommuteRun",
    "CostModel",
    "DataHandle",
    "DmdaPolicy",
    "HelpFirstPolicy",
    "TaskGraph",
    "TaskImpl",
    "TaskNode",
    "WritePredictor",
    "async_task",
    "hetero_workload",
    "isx_dag_workload",
    "make_policy",
    "reduction_workload",
]
