"""The access-mode task graph: declared ``read``/``write``/``commute``/
``maybe_write`` accesses, inferred dependencies, commutative reordering,
and Specx-style speculative execution with checkpoint/rollback.

Instead of wiring futures by hand (``async_future`` + ``async_await``),
the application declares what each task touches::

    with TaskGraph() as g:
        a, b = g.handle(arr_a, "a"), g.handle(arr_b, "b")
        async_task(produce, write=[a])
        async_task(combine, read=[a], write=[b])   # RAW edge inferred
        async_task(accum,   commute=[b])           # any order, serialized
    # __exit__ waits and re-raises failures

Dependency rules (per datum, Specx/StarPU semantics):

- **read** waits for the current writer; joins the readers list.
- **write** waits for the current writer *and* all readers since it
  (write-after-read), then becomes the new writer and bumps the version.
- **commute** opens (or joins) a *commute run*: every member depends only
  on the state at run open, so members start in readiness order; a
  per-run slot serializes their bodies without ordering them
  (:class:`~repro.taskgraph.data.CommuteRun`). The first non-commute
  access closes the run and waits for all members.
- **maybe_write** is a write for dependency purposes, but marks the task
  *uncertain*: pure readers behind it may run **speculatively** when the
  predictor expects no write. The graph snapshots a speculative reader's
  write-set before it runs (:mod:`repro.resilience.snapshot`) and holds
  its completion until the uncertain task validates — by comparing the
  datum's content digest before/after. On a correct prediction the held
  result is released (overlap won); on a misprediction the reader's
  writes are rolled back bit-for-bit and the reader replays against the
  post-write state, reproducing the non-speculative answer exactly.

Speculation is only enabled under the deterministic simulator (task bodies
are atomic there, so a speculative body can never observe a half-written
datum); on other engines the same graphs run, just without speculation.

Placement flows through a pluggable policy (:mod:`repro.taskgraph.cost`):
help-first (baseline) or dmda (cost-model-driven place + variant choice
over multi-implementation tasks).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.snapshot import (payload_digest, restore_payload,
                                       snapshot_payload)
from repro.runtime.context import require_context
from repro.runtime.finish import FinishScope, TaskGroupError
from repro.runtime.future import Future, Promise, when_all
from repro.taskgraph.cost import CostModel, TaskImpl, make_policy
from repro.taskgraph.data import CommuteRun, DataHandle
from repro.util.errors import ConfigError, RuntimeStateError

__all__ = ["TaskGraph", "TaskNode", "WritePredictor", "async_task"]


class WritePredictor:
    """Predicts whether an uncertain (maybe-write) task will actually write.

    Per-``kind`` write-ratio history with an optional per-task static hint
    (``likely_writes=``). Unseen kinds are conservatively predicted to
    write — speculation starts only once history (or a hint) says the task
    usually doesn't.
    """

    def __init__(self, threshold: float = 0.5):
        self.threshold = threshold
        self._hist: Dict[str, List[int]] = {}  # kind -> [writes, total]

    def predict_writes(self, node: "TaskNode") -> bool:
        if node.likely_writes is not None:
            return bool(node.likely_writes)
        wrote, total = self._hist.get(node.kind, (0, 0))
        if total == 0:
            return True
        return (wrote / total) >= self.threshold

    def observe(self, kind: str, wrote: bool) -> None:
        rec = self._hist.setdefault(kind, [0, 0])
        rec[0] += 1 if wrote else 0
        rec[1] += 1


class TaskNode:
    """One submitted task: accesses, dependency state, speculation state."""

    __slots__ = (
        "fn", "name", "kind", "cost", "reads", "writes", "commutes",
        "maybe_writes", "impls", "likely_writes", "done_promise", "seq",
        "commute_runs", "spec_pending", "spec_rollback", "ran", "completed",
        "spec_value", "spec_exc", "snapshots", "pre_digests",
        "validation_waiters", "where",
    )

    def __init__(self, fn: Callable[[], Any], name: str, kind: str,
                 cost: float, reads, writes, commutes, maybe_writes,
                 impls: Tuple[TaskImpl, ...], likely_writes: Optional[bool],
                 done_promise, seq: int):
        self.fn = fn
        self.name = name
        self.kind = kind
        self.cost = cost
        self.reads: Tuple[DataHandle, ...] = reads
        self.writes: Tuple[DataHandle, ...] = writes
        self.commutes: Tuple[DataHandle, ...] = commutes
        self.maybe_writes: Tuple[DataHandle, ...] = maybe_writes
        self.impls = impls
        self.likely_writes = likely_writes
        self.done_promise = done_promise
        self.seq = seq
        #: commute runs this node belongs to, in slot-acquisition order
        self.commute_runs: List[CommuteRun] = []
        #: unvalidated uncertain predecessors this node speculated past
        self.spec_pending = 0
        self.spec_rollback = False
        self.ran = False
        self.completed = False
        self.spec_value: Any = None
        self.spec_exc: Optional[BaseException] = None
        #: pre-run byte snapshots of the write-set (speculative runs only)
        self.snapshots: Optional[Dict[DataHandle, Any]] = None
        #: pre-run content digests of maybe_write data (uncertain runs only)
        self.pre_digests: Optional[Dict[DataHandle, str]] = None
        #: speculative successors to validate when this node completes
        self.validation_waiters: List["TaskNode"] = []
        self.where = "cpu"

    def data_touched(self) -> Tuple[DataHandle, ...]:
        return self.reads + self.writes + self.commutes + self.maybe_writes

    @property
    def is_uncertain(self) -> bool:
        return bool(self.maybe_writes)

    def __repr__(self) -> str:
        return f"TaskNode({self.name!r}, seq={self.seq})"


class TaskGraph:
    """A dependency graph inferred from declared access modes.

    Created inside a running task; nodes register with the creating task's
    finish scope (held open across dependency gaps, the ``async_retry``
    idiom), so an enclosing ``finish`` — or :meth:`wait` / the context
    manager — joins the whole graph.
    """

    _ambient = threading.local()

    def __init__(self, *, name: str = "taskgraph", policy: Any = "help-first",
                 speculation: bool = False,
                 predictor: Optional[WritePredictor] = None,
                 cost_model: Optional[CostModel] = None,
                 runtime: Any = None, scope: Optional[FinishScope] = None):
        ctx = require_context()
        self._rt = runtime if runtime is not None else ctx.runtime
        if self._rt is None:
            raise RuntimeStateError("TaskGraph requires a runtime context")
        if scope is None:
            scope = ctx.task.active_scope if ctx.task is not None else None
            if scope is None:
                raise RuntimeStateError(
                    "TaskGraph outside a task requires an explicit scope=")
        self._scope = scope
        self.name = name
        self.cost_model = cost_model if cost_model is not None else CostModel()
        # Telemetry feed: seed estimates from this runtime's recorded
        # taskgraph timers so warm runtimes start calibrated.
        self.cost_model.calibrate_from_stats(self._rt.stats)
        self._policy = make_policy(policy, self._rt.model, self.cost_model)
        self.predictor = predictor if predictor is not None else WritePredictor()
        # Speculation needs atomic task bodies; only the DES engine has them.
        self.speculation = bool(speculation) and self._rt.executor.mode == "sim"
        # Reentrant: submit -> when_all(on_ready) -> _deps_ready can nest on
        # already-satisfied deps; real lock (not the executor's NullLock)
        # because the same graphs must run under the threaded engine.
        self._lock = threading.RLock()
        self._seq = 0
        self._outstanding = 0
        self._last_done = 0.0
        self._failures: List[Tuple[str, BaseException]] = []
        self._waited = False
        # observability
        self.nodes = 0
        self.edges = 0
        self.commute_reorders = 0
        self.spec_attempts = 0
        self.spec_hits = 0
        self.spec_rollbacks = 0

    # ------------------------------------------------------------------
    # construction API
    # ------------------------------------------------------------------
    def handle(self, payload: Any = None, name: str = "") -> DataHandle:
        """Register a datum; its accesses are tracked from this point on."""
        return DataHandle(self, payload, name)

    def submit(self, fn: Callable[[], Any], *,
               read: Sequence[DataHandle] = (),
               write: Sequence[DataHandle] = (),
               commute: Sequence[DataHandle] = (),
               maybe_write: Sequence[DataHandle] = (),
               name: str = "", kind: str = "", cost: float = 0.0,
               impls: Sequence[TaskImpl] = (),
               likely_writes: Optional[bool] = None) -> Future:
        """Declare one task; returns a future of its return value.

        ``fn`` takes no arguments and closes over its handles (read
        ``h.data``, assign or mutate in place). ``kind`` keys the cost
        model and write predictor (defaults to the function name);
        ``impls`` supplies alternative implementations for cost-model
        placement; ``likely_writes`` statically hints the predictor for a
        ``maybe_write`` task.
        """
        reads, writes = tuple(read), tuple(write)
        commutes, maybes = tuple(commute), tuple(maybe_write)
        for d in reads + writes + commutes + maybes:
            if not isinstance(d, DataHandle):
                raise ConfigError(
                    f"access lists take DataHandle, got {type(d).__name__} "
                    "(wrap payloads with graph.handle())")
        seen: set = set()
        for d in writes + commutes + maybes:
            if id(d) in seen:
                raise ConfigError(
                    f"datum {d.name!r} declared in more than one write-mode "
                    "access on the same task")
            seen.add(id(d))
        kind = kind or getattr(fn, "__name__", "task")
        impl_tuple = tuple(impls) if impls else (TaskImpl(fn, "cpu", cost),)

        with self._lock:
            node = TaskNode(fn, name or f"{kind}#{self._seq}", kind, cost,
                            reads, writes, commutes, maybes, impl_tuple,
                            likely_writes, _promise(kind, self._seq),
                            self._seq)
            self._seq += 1
            deps: List[Future] = []
            spec_on: List[TaskNode] = []
            speculate = (self.speculation and not commutes and not maybes)
            for d in reads:
                self._access_read(d, node, deps, spec_on if speculate else None)
            for d in writes + maybes:
                self._access_write(d, node, deps)
            for d in commutes:
                self._access_commute(d, node, deps)
            # Dedupe (a handle read+written contributes its writer twice).
            uniq: List[Future] = []
            seen_ids: set = set()
            for f in deps:
                if id(f._promise) not in seen_ids:
                    seen_ids.add(id(f._promise))
                    uniq.append(f)
            deps = uniq
            node.spec_pending = len(spec_on)
            if spec_on:
                self.spec_attempts += 1
                for wn in spec_on:
                    wn.validation_waiters.append(node)
            self.nodes += 1
            self.edges += len(deps) + len(spec_on)
            self._outstanding += 1
            # Hold the enclosing scope open across the dependency gap (the
            # async_retry idiom): released when the node's promise resolves.
            self._scope.task_spawned()
        if deps:
            dep = deps[0] if len(deps) == 1 else when_all(
                deps, name=f"{node.name}-deps")
            dep.on_ready(lambda f: self._deps_ready(node, f))
        else:
            self._deps_ready(node, None)
        return node.done_promise.get_future()

    def __enter__(self) -> "TaskGraph":
        stack = getattr(TaskGraph._ambient, "stack", None)
        if stack is None:
            stack = TaskGraph._ambient.stack = []
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        TaskGraph._ambient.stack.pop()
        if exc_type is None:
            self.wait()

    # ------------------------------------------------------------------
    # access rules (all under self._lock)
    # ------------------------------------------------------------------
    def _close_run(self, d: DataHandle) -> None:
        run, d.run = d.run, None
        if len(run.members) == 1:
            d.writer = run.members[0]
        else:
            d.writer = when_all(run.members, name=f"{d.name}-commute-run")
        d.writer_node = None  # a run is never speculated past
        d.readers = []

    def _access_read(self, d: DataHandle, node: TaskNode,
                     deps: List[Future],
                     spec_on: Optional[List[TaskNode]]) -> None:
        if d.run is not None:
            self._close_run(d)
        if d.writer is not None:
            wn = d.writer_node
            # Waive only a dependency that is genuinely uncertain *for this
            # datum*: a node may maybe-write one handle while definitely
            # writing another, and readers of the latter must wait.
            if (spec_on is not None and wn is not None
                    and any(m is d for m in wn.maybe_writes)
                    and not wn.completed
                    and not self.predictor.predict_writes(wn)):
                if wn not in spec_on:
                    spec_on.append(wn)  # dependency waived: run speculatively
                if d.spec_fallback is not None:
                    # Still read-after-write against the state the maybe
                    # task itself builds on — speculation skips only the
                    # uncertain writer, never its committed predecessors.
                    deps.append(d.spec_fallback)
            else:
                deps.append(d.writer)
        d.readers.append(node.done_promise.get_future())

    def _access_write(self, d: DataHandle, node: TaskNode,
                      deps: List[Future]) -> None:
        if d.run is not None:
            self._close_run(d)
        if d.writer is not None:
            deps.append(d.writer)
        deps.extend(d.readers)  # write-after-read ordering
        d.spec_fallback = d.writer
        d.writer = node.done_promise.get_future()
        d.writer_node = node
        d.readers = []

    def _access_commute(self, d: DataHandle, node: TaskNode,
                        deps: List[Future]) -> None:
        if d.run is None:
            base: List[Future] = []
            if d.writer is not None:
                base.append(d.writer)
            base.extend(d.readers)
            d.run = CommuteRun(base)
            d.readers = []
            d.writer = None
            d.writer_node = None
        run = d.run
        run.members.append(node.done_promise.get_future())
        run.member_seqs.append(node.seq)
        deps.extend(run.base_deps)
        node.commute_runs.append(run)

    # ------------------------------------------------------------------
    # readiness -> commute slots -> dispatch
    # ------------------------------------------------------------------
    def _deps_ready(self, node: TaskNode, fut: Optional[Future]) -> None:
        exc = fut._promise._exception if fut is not None else None
        if exc is not None:
            self._finish_node(node, None, exc, cascade=True)
            return
        self._acquire_commute(node, 0)

    def _acquire_commute(self, node: TaskNode, idx: int) -> None:
        with self._lock:
            while idx < len(node.commute_runs):
                run = node.commute_runs[idx]
                if run.busy is None:
                    run.busy = node
                    # Reordering is observable here: granted before an
                    # earlier-submitted member that is not yet done.
                    earlier = [s for s in run.member_seqs
                               if s < node.seq and s not in run.granted_seqs]
                    if earlier:
                        self.commute_reorders += 1
                    run.granted_seqs.add(node.seq)
                    idx += 1
                else:
                    run.pending.append((node, idx))
                    return
        self._dispatch(node)

    def _dispatch(self, node: TaskNode) -> None:
        ex = self._rt.executor
        with self._lock:
            place, impl, transfer = self._policy.choose(node, ex.now())
        if impl is None:
            impl = node.impls[0]
            place = None
        node.where = impl.where
        charge_total = transfer + impl.cost

        def _body(node=node, impl=impl, charge_total=charge_total) -> None:
            with self._lock:
                speculative = node.spec_pending > 0
            if speculative:
                node.snapshots = {
                    d: snapshot_payload(d.data) for d in node.writes}
            if node.maybe_writes:
                node.pre_digests = {
                    d: payload_digest(d.data) for d in node.maybe_writes}
            t0 = ex.now()
            if charge_total > 0.0:
                ex.charge(charge_total)
            value: Any = None
            exc: Optional[BaseException] = None
            try:
                value = impl.fn()
            except BaseException as e:  # noqa: BLE001 - routed to the node future
                exc = e
            elapsed = ex.now() - t0
            self.cost_model.observe(node.kind, node.where, elapsed)
            self._rt.stats.time("taskgraph", f"{node.kind}@{node.where}", elapsed)
            with self._lock:
                node.ran = True
                if node.spec_pending > 0:
                    # Still speculative: hold the result until validation.
                    node.spec_value, node.spec_exc = value, exc
                    return
            self._finish_node(node, value, exc)

        fut = self._rt.spawn(_body, place=place, scope=self._scope,
                             name=node.name, module="taskgraph",
                             return_future=True)

        def _task_done(f: Future, node=node) -> None:
            # Executor-level failure (an injected task fault, a killed
            # worker) raises *before* ``_body``'s own try/except can run;
            # it lands on the task's return future instead. Route it into
            # the node lifecycle or the graph would never quiesce.
            exc = f._promise._exception
            if exc is not None:
                self._finish_node(node, None, exc)

        fut.on_ready(_task_done)
        self._rt.stats.count("taskgraph", "dispatch")

    # ------------------------------------------------------------------
    # completion, validation, rollback
    # ------------------------------------------------------------------
    def _finish_node(self, node: TaskNode, value: Any,
                     exc: Optional[BaseException],
                     cascade: bool = False) -> None:
        ex = self._rt.executor
        resumptions: List[Tuple[TaskNode, int]] = []
        with self._lock:
            if node.completed:  # idempotent: body path vs return-future path
                return
            wrote = False
            if node.pre_digests:
                wrote = any(payload_digest(d.data) != dig
                            for d, dig in node.pre_digests.items())
                self.predictor.observe(node.kind, wrote)
            if not cascade:
                for d in node.writes + node.maybe_writes + node.commutes:
                    d.version += 1
            for run in node.commute_runs:
                if run.busy is node:
                    run.busy = None
                    if run.pending:
                        resumptions.append(run.pending.popleft())
            waiters, node.validation_waiters = node.validation_waiters, []
            node.completed = True
            self._last_done = max(self._last_done, ex.now())
            if exc is not None and not cascade:
                # Cascaded nodes carry their dependency's exception; the
                # root cause is already recorded once under its own node.
                self._failures.append((node.name, exc))
            self._outstanding -= 1
        for waiter, idx in resumptions:
            self._acquire_commute(waiter, idx)
        for s in waiters:
            self._validate_waiter(s, wrote)
        if exc is not None:
            node.done_promise.put_exception(exc)
        else:
            node.done_promise.put(value)
        self._scope.task_completed(None)

    def _validate_waiter(self, node: TaskNode, wrote: bool) -> None:
        """One uncertain predecessor of a speculative ``node`` completed."""
        with self._lock:
            node.spec_pending -= 1
            if wrote and node.ran:
                # The speculative run read stale data; its held result is
                # invalid. (If it has not run yet it will simply read the
                # post-write state when it does — no rollback needed.)
                node.spec_rollback = True
            if node.spec_pending > 0 or not node.ran:
                return
            rollback = node.spec_rollback
        if rollback:
            with self._lock:
                self.spec_rollbacks += 1
                for d, snap in (node.snapshots or {}).items():
                    d.data = restore_payload(snap)
                node.ran = False
                node.spec_value = node.spec_exc = None
            self._rt.stats.count("taskgraph", "spec_rollback")
            self._dispatch(node)  # replay against the validated state
        else:
            self.spec_hits += 1
            self._rt.stats.count("taskgraph", "spec_hit")
            self._finish_node(node, node.spec_value, node.spec_exc)

    # ------------------------------------------------------------------
    # join
    # ------------------------------------------------------------------
    def wait(self, raise_failures: bool = True) -> None:
        """Block the calling task until every submitted node completed.

        Advances the caller's virtual clock to the last completion
        (help-until-ready, like ``finish``); re-raises collected node
        failures unless ``raise_failures=False``.
        """
        ctx = require_context()
        if self._outstanding > 0:
            ctx.executor.block_until(
                lambda: self._outstanding == 0,
                description=f"taskgraph {self.name!r}",
                time_source=lambda: self._last_done,
            )
        if raise_failures and not self._waited:
            with self._lock:
                failures, self._failures = self._failures, []
            self._waited = bool(failures)
            excs = [e for _, e in failures]
            if len(excs) == 1:
                raise excs[0]
            if excs:
                raise TaskGroupError(excs)

    def describe(self) -> str:
        return (f"taskgraph {self.name!r}: {self.nodes} nodes, "
                f"{self.edges} edges, {self.commute_reorders} commute "
                f"reorders, speculation {self.spec_hits} hits / "
                f"{self.spec_rollbacks} rollbacks "
                f"({getattr(self._policy, 'name', 'custom')})")


def _promise(kind: str, seq: int) -> Promise:
    return Promise(name=f"{kind}#{seq}-done")


def async_task(fn: Callable[[], Any], **accesses: Any) -> Future:
    """Submit ``fn`` to the innermost ``with TaskGraph(...)`` block.

    The paper-style spelling: ``async_task(f, read=[a], write=[b])``.
    Accepts every :meth:`TaskGraph.submit` keyword.
    """
    stack = getattr(TaskGraph._ambient, "stack", None)
    if not stack:
        raise RuntimeStateError(
            "async_task requires an enclosing `with TaskGraph(...)` block "
            "(or call graph.submit directly)")
    return stack[-1].submit(fn, **accesses)
