"""Cost-model-driven placement: multiple implementations per task, and a
StarPU-``dmda``-style scheduler that picks place + variant from calibrated
per-place execution-time estimates.

Three pieces:

- :class:`TaskImpl` — one implementation of a task: a body, the device kind
  it targets (``"cpu"`` or ``"gpu"``), and an optional declared virtual
  cost the graph charges before the body runs (so simulated kernels don't
  need to call :func:`~repro.runtime.api.charge` themselves).
- :class:`CostModel` — per-``(kind, where)`` execution-time estimates,
  learned as an exponential moving average of observed virtual durations
  and fed into the runtime's telemetry (``stats.time("taskgraph",
  "<kind>@<where>")``), from which a later graph can re-seed itself via
  :meth:`CostModel.calibrate_from_stats`.
- placement policies — :class:`HelpFirstPolicy` (the baseline: first CPU
  implementation, default place, no lookahead) and :class:`DmdaPolicy`
  (deque model data aware: pick the (place, implementation) minimizing
  ``max(now, place_available) + transfer + estimated_cost``, where
  *transfer* models moving non-resident operands over PCIe). Like StarPU,
  an uncalibrated variant is forced to run first so every arm gets
  measured before the argmin starts discriminating.

The model is advisory: it decides *where* a task is spawned and how much
transfer time is charged; execution itself still flows through the normal
work-stealing runtime, and GPU speedups come from the GPU implementation's
smaller declared cost (the CUDA module's simulated-kernel idiom).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.platform.place import Place, PlaceType
from repro.util.errors import ConfigError

__all__ = ["TaskImpl", "CostModel", "HelpFirstPolicy", "DmdaPolicy",
           "make_policy"]

#: Host<->device bandwidth assumed when the GPU place declares none (B/s).
DEFAULT_PCIE_BW = 16e9
#: Estimate used for a variant's very first (calibration) run.
CALIBRATION_PRIOR = 1e-4


class TaskImpl:
    """One implementation of a task body.

    ``cost`` is charged to the executing worker's virtual clock before the
    body runs; the body may charge more itself. ``where`` must be ``"cpu"``
    or ``"gpu"`` — a GPU implementation is only eligible when the platform
    model has a GPU place.
    """

    __slots__ = ("fn", "where", "cost")

    def __init__(self, fn: Callable[[], Any], where: str = "cpu",
                 cost: float = 0.0):
        if where not in ("cpu", "gpu"):
            raise ConfigError(f"TaskImpl where must be 'cpu' or 'gpu', got {where!r}")
        if cost < 0:
            raise ConfigError(f"TaskImpl cost must be >= 0, got {cost}")
        self.fn = fn
        self.where = where
        self.cost = float(cost)

    def __repr__(self) -> str:
        return f"TaskImpl({getattr(self.fn, '__name__', 'fn')}@{self.where})"


class CostModel:
    """EMA per-``(kind, where)`` virtual execution-time estimates."""

    def __init__(self, alpha: float = 0.5):
        if not (0.0 < alpha <= 1.0):
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._est: Dict[Tuple[str, str], float] = {}
        self._count: Dict[Tuple[str, str], int] = {}

    def estimate(self, kind: str, where: str) -> Optional[float]:
        """Estimated seconds, or ``None`` when the arm is uncalibrated."""
        return self._est.get((kind, where))

    def observe(self, kind: str, where: str, seconds: float) -> None:
        key = (kind, where)
        prev = self._est.get(key)
        self._est[key] = seconds if prev is None else (
            self.alpha * seconds + (1.0 - self.alpha) * prev)
        self._count[key] = self._count.get(key, 0) + 1

    def observations(self, kind: str, where: str) -> int:
        return self._count.get((kind, where), 0)

    def calibrate_from_stats(self, stats: Any, module: str = "taskgraph") -> int:
        """Seed estimates from a runtime's telemetry timers.

        The graph records every observation as ``stats.time("taskgraph",
        "<kind>@<where>")``; this reads those timers back so a fresh graph
        on a warm runtime starts calibrated. Returns the number of arms
        seeded.
        """
        seeded = 0
        for (mod, op), rec in getattr(stats, "timers", {}).items():
            if mod != module or "@" not in op:
                continue
            kind, _, where = op.rpartition("@")
            if (kind, where) not in self._est and rec.count:
                self._est[(kind, where)] = rec.total / rec.count
                seeded += 1
        return seeded


class HelpFirstPolicy:
    """The baseline: first CPU implementation, default placement.

    Mirrors the runtime's existing help-first behavior — no lookahead, no
    device offload, no transfer accounting. Exists so the dmda bake-off has
    an honest same-harness baseline.
    """

    name = "help-first"

    def choose(self, node: Any, now: float
               ) -> Tuple[Optional[Place], Optional[TaskImpl], float]:
        for impl in node.impls:
            if impl.where == "cpu":
                return None, impl, 0.0
        return None, None, 0.0

    def describe(self) -> str:
        return "help-first (first CPU implementation, default place)"


class DmdaPolicy:
    """Deque-model-data-aware placement over calibrated cost estimates.

    Maintains one availability slot per CPU worker and one per GPU, picks
    the (slot, implementation) pair minimizing estimated completion time
    ``max(now, slot_free) + transfer + est(kind, where)``, and charges the
    modeled transfer to the chosen task. Residency tracking makes the
    transfer term history-dependent: operands left on the GPU by a producer
    are free for a GPU consumer and cost PCIe time for a CPU one.
    """

    name = "dmda"

    def __init__(self, model: Any, cost_model: Optional[CostModel] = None,
                 *, prior: float = CALIBRATION_PRIOR):
        self.cost = cost_model if cost_model is not None else CostModel()
        self.prior = float(prior)
        gpus = model.places_of_type(PlaceType.GPU_MEM)
        self.gpu_place: Optional[Place] = gpus[0] if gpus else None
        self.pcie_bw = float(
            self.gpu_place.properties.get("pcie_bytes_per_s", DEFAULT_PCIE_BW)
        ) if self.gpu_place is not None else DEFAULT_PCIE_BW
        # Availability heaps: earliest-free slot per device kind.
        self._avail: Dict[str, List[float]] = {
            "cpu": [0.0] * max(1, int(model.num_workers))}
        if self.gpu_place is not None:
            self._avail["gpu"] = [0.0]
        for h in self._avail.values():
            heapq.heapify(h)

    def _transfer_seconds(self, node: Any, where: str) -> float:
        moved = 0
        for d in node.data_touched():
            if d.residence != where:
                moved += d.nbytes
        return moved / self.pcie_bw if moved else 0.0

    def choose(self, node: Any, now: float
               ) -> Tuple[Optional[Place], Optional[TaskImpl], float]:
        best: Optional[Tuple[float, int, TaskImpl, str, float, float]] = None
        for order, impl in enumerate(node.impls):
            where = impl.where
            if where == "gpu" and self.gpu_place is None:
                continue
            transfer = self._transfer_seconds(node, where)
            est = self.cost.estimate(node.kind, where)
            if est is None:
                # Forced calibration: an unmeasured arm runs before the
                # argmin starts discriminating (StarPU's dmda idiom) —
                # otherwise a bad prior could starve the faster variant.
                best = (now, order, impl, where, transfer, self.prior)
                break
            slot_free = self._avail[where][0]
            finish = max(now, slot_free) + transfer + est
            cand = (finish, order, impl, where, transfer, est)
            if best is None or cand[:2] < best[:2]:
                best = cand
        if best is None:  # no eligible implementation: default CPU path
            return None, None, 0.0
        _, _, impl, where, transfer, est = best
        slots = self._avail[where]
        slot_free = heapq.heappop(slots)
        heapq.heappush(slots, max(now, slot_free) + transfer + est)
        for d in node.data_touched():
            d.residence = where
        place = self.gpu_place if where == "gpu" else None
        return place, impl, transfer

    def describe(self) -> str:
        gpu = self.gpu_place.name if self.gpu_place is not None else "none"
        return f"dmda (gpu={gpu}, pcie={self.pcie_bw:.3g} B/s)"


def make_policy(policy: Any, model: Any,
                cost_model: Optional[CostModel] = None) -> Any:
    """Resolve a policy spec: an instance passes through; ``"help-first"``
    and ``"dmda"`` construct the built-ins."""
    if hasattr(policy, "choose"):
        return policy
    if policy == "help-first":
        return HelpFirstPolicy()
    if policy == "dmda":
        return DmdaPolicy(model, cost_model)
    raise ConfigError(
        f"unknown placement policy {policy!r}; choose 'help-first' or 'dmda'")
