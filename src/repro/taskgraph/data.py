"""Data handles: named, versioned data the task graph tracks accesses on.

A :class:`DataHandle` wraps one payload (typically a numpy array, but any
object works) and carries the per-datum dependency state the graph's access
rules read and update — the Specx/StarPU "data" half of the task-graph
model:

- ``version``: the committed write count. Every completed write-mode access
  (``write``, ``commute``, ``maybe_write``) bumps it, so the sequence of
  writers forms the datum's *version chain* and a node's declared accesses
  pin it to a position in that chain.
- the *current writer* (completion future + node of the last write-mode
  access) and the *readers since that writer* — exactly the state needed to
  infer read-after-write, write-after-read, and write-after-write edges.
- the open *commute run*, when the most recent accesses are ``commute``:
  a set of tasks that all depend on the same base state, may run in any
  order, but are mutually serialized (see :class:`CommuteRun`).
- ``residence``: which device kind ("cpu"/"gpu") the cost model believes
  currently holds the bytes — fed into dmda's transfer-time estimates.

Handles are created via :meth:`repro.taskgraph.TaskGraph.handle` and are
owned by exactly one graph; task bodies read ``handle.data`` and assign or
mutate it in place. All dependency fields are graph-internal (guarded by
the graph's lock) — applications only touch ``data``/``name``/``version``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.future import Future
    from repro.taskgraph.graph import TaskNode


class CommuteRun:
    """One open run of commute accesses on a datum.

    Every member depends on the same ``base_deps`` (the writer + readers at
    the moment the run opened), so members become *ready* independently —
    but they share one serialization slot (``busy``): a member executes only
    while holding it, and the slot is granted in **readiness-arrival order**,
    not submission order. That gap is the observable commute reordering: a
    cheap producer's accumulate step may run before an expensive earlier
    one's, which a plain ``write`` chain would forbid.

    The first non-commute access closes the run; the run's members
    collectively become "the writer" for that successor.
    """

    __slots__ = ("base_deps", "members", "busy", "pending",
                 "member_seqs", "granted_seqs")

    def __init__(self, base_deps: List["Future"]):
        self.base_deps = base_deps
        #: completion futures of every member submitted into the run
        self.members: List["Future"] = []
        #: the member currently holding the serialization slot (or None)
        self.busy: Optional["TaskNode"] = None
        #: ready members waiting for the slot: (node, resume_index) FIFO
        self.pending: Deque[Tuple["TaskNode", int]] = deque()
        #: submission sequence numbers of members / of members already granted
        self.member_seqs: List[int] = []
        self.granted_seqs: set = set()


class DataHandle:
    """A named, versioned datum registered with one :class:`TaskGraph`."""

    __slots__ = ("graph", "name", "data", "version", "residence",
                 "writer", "writer_node", "readers", "run",
                 "spec_fallback")

    def __init__(self, graph: Any, payload: Any, name: str = ""):
        self.graph = graph
        self.name = name or f"data{id(self) & 0xFFFF:04x}"
        #: the payload task bodies read and write
        self.data = payload
        #: committed write count (length of the version chain so far)
        self.version = 0
        #: device kind the cost model tracks the bytes on ("cpu"/"gpu")
        self.residence = "cpu"
        # --- graph-internal dependency state (guarded by graph._lock) ---
        self.writer: Optional["Future"] = None
        self.writer_node: Optional["TaskNode"] = None
        self.readers: List["Future"] = []
        self.run: Optional[CommuteRun] = None
        #: the writer superseded by the current one — what a reader that
        #: speculates past an uncertain writer must still wait for
        self.spec_fallback: Optional["Future"] = None

    @property
    def nbytes(self) -> int:
        """Payload size the transfer model charges for (0 if unsized)."""
        return int(getattr(self.data, "nbytes", 0) or 0)

    def __repr__(self) -> str:
        return (f"DataHandle({self.name!r}, v{self.version}, "
                f"{type(self.data).__name__})")
