"""Task-graph workloads: the DAG-ported ISx sort plus the bench shapes.

Three families:

- :func:`isx_dag_workload` — the hand-wired-futures ISx bucket sort from
  :mod:`repro.verify.differential` re-expressed as declared accesses. It
  returns the **identical digest tuple** (``("isx", size, sha256)``) so the
  DAG-vs-futures differential can compare them bit-for-bit: same kernels,
  same data, only the dependency wiring differs.
- :func:`reduction_workload` — K producers of wildly different costs
  folding into one accumulator. With ``commute=True`` the folds take a
  ``commute`` access on the accumulator (readiness-order, serialized);
  with ``commute=False`` they take ``write`` accesses (submission-order
  chain). The sum is order-independent, so both digests match while the
  makespans differ — the commute-reordering bake-off shape.
- :func:`hetero_workload` — chains alternating a large kernel (cheap on
  the GPU variant, expensive on CPU) and a small fix-up step (cheap on
  CPU, launch-overhead-dominated on GPU). Run under ``policy="dmda"`` the
  cost model learns to split variants across devices; under help-first
  everything stays on the CPU — the cost-model-placement bake-off shape.

Every root returns ``(tag, ..., digest)`` tuples that are engine- and
policy-independent, so the same factories feed the differential harness,
the tests, and the bench suite. Virtual makespans are read off the
executor by the caller.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.apps.isx.common import IsxConfig, generate_keys, local_sort
from repro.taskgraph.cost import TaskImpl
from repro.taskgraph.graph import TaskGraph

__all__ = ["isx_dag_workload", "reduction_workload", "hetero_workload"]


def isx_dag_workload(cfg: Optional[IsxConfig] = None, nbuckets: int = 8,
                     *, policy: Any = "help-first") -> Callable[[], Tuple]:
    """ISx bucket sort with graph-inferred dependencies.

    Partition tasks read the key array and write one bucket each; sort
    tasks read a bucket and write its sorted image; the concatenation
    reads every sorted bucket. No future is wired by hand — every edge is
    inferred from the declared accesses. Digest-tuple-compatible with
    :func:`repro.verify.differential.isx_workload`.
    """
    cfg = cfg or IsxConfig(keys_per_pe=1 << 11)

    def root() -> Tuple:
        keys = generate_keys(cfg, 0, 1)
        width = (cfg.max_key + nbuckets - 1) // nbuckets
        g = TaskGraph(name="isx-dag", policy=policy)
        keys_h = g.handle(keys, name="keys")
        buckets = [g.handle(None, name=f"bucket{b}") for b in range(nbuckets)]
        sorted_h = [g.handle(None, name=f"sorted{b}") for b in range(nbuckets)]
        out_h = g.handle(None, name="out")

        def partition(b: int) -> Callable[[], None]:
            def body() -> None:
                lo, hi = b * width, (b + 1) * width
                k = keys_h.data
                buckets[b].data = k[(k >= lo) & (k < hi)]
            return body

        def sort(b: int) -> Callable[[], None]:
            def body() -> None:
                sorted_h[b].data = local_sort(buckets[b].data)
            return body

        def concat() -> None:
            out_h.data = np.concatenate([h.data for h in sorted_h])

        for b in range(nbuckets):
            g.submit(partition(b), read=[keys_h], write=[buckets[b]],
                     kind="isx-partition", name=f"isx-partition-{b}")
        for b in range(nbuckets):
            g.submit(sort(b), read=[buckets[b]], write=[sorted_h[b]],
                     kind="isx-sort", name=f"isx-sort-{b}")
        g.submit(concat, read=list(sorted_h), write=[out_h], kind="isx-concat")
        g.wait()
        out = out_h.data
        if not np.array_equal(out, np.sort(keys)):
            raise AssertionError("DAG bucketed sort diverged from np.sort")
        return ("isx", int(out.size),
                hashlib.sha256(out.tobytes()).hexdigest())

    root.__name__ = "isx_dag_sort"
    return root


def reduction_workload(nproducers: int = 12, *, commute: bool = True,
                       policy: Any = "help-first",
                       base_cost: float = 2e-4) -> Callable[[], Tuple]:
    """K unequal producers folding into one accumulator.

    Producer ``i`` charges ``base_cost * (nproducers - i)`` — the earliest
    submissions are the slowest — so submission order and completion order
    disagree maximally. The fold is an order-independent sum, so the
    digest is identical either way; the makespan is not: commute folds
    start as soon as *their* producer lands, while the write chain stalls
    behind producer 0.
    """

    def root() -> Tuple:
        g = TaskGraph(name=f"reduce-{'commute' if commute else 'ordered'}",
                      policy=policy)
        slots = [g.handle(None, name=f"slot{i}") for i in range(nproducers)]
        acc = g.handle(np.zeros(1, dtype=np.int64), name="acc")

        def produce(i: int) -> Callable[[], None]:
            def body() -> None:
                slots[i].data = np.full(8, i + 1, dtype=np.int64)
            return body

        def fold(i: int) -> Callable[[], None]:
            def body() -> None:
                acc.data[0] += int(slots[i].data.sum())
            return body

        for i in range(nproducers):
            g.submit(produce(i), write=[slots[i]], kind="reduce-produce",
                     cost=base_cost * (nproducers - i),
                     name=f"produce-{i}")
        for i in range(nproducers):
            mode = {"commute": [acc]} if commute else {"write": [acc]}
            g.submit(fold(i), read=[slots[i]], kind="reduce-fold",
                     cost=base_cost / 4, name=f"fold-{i}", **mode)
        g.wait()
        total = int(acc.data[0])
        return ("reduce", nproducers, total, int(g.commute_reorders > 0))

    root.__name__ = f"reduction_{'commute' if commute else 'ordered'}"
    return root


def hetero_workload(nchains: int = 4, depth: int = 6, *,
                    policy: Any = "help-first",
                    big_cpu: float = 4e-3, big_gpu: float = 5e-4,
                    small_cpu: float = 1e-4, small_gpu: float = 2e-3
                    ) -> Callable[[], Tuple]:
    """Chains alternating big kernels and small fix-ups, each with a CPU
    and a GPU implementation of very different declared costs.

    The computation itself is implementation-independent (both variants of
    a step apply the same update), so the digest is policy-invariant; the
    makespan rewards a scheduler that offloads the big kernels and keeps
    the small steps on the CPU.
    """

    def root() -> Tuple:
        g = TaskGraph(name="hetero", policy=policy)
        states = [g.handle(np.arange(256, dtype=np.int64) + c, name=f"chain{c}")
                  for c in range(nchains)]

        def big_step(c: int) -> Callable[[], None]:
            def body() -> None:
                s = states[c].data
                states[c].data = (s * 31 + 7) % 1000003
            return body

        def small_step(c: int) -> Callable[[], None]:
            def body() -> None:
                states[c].data += 1
            return body

        for _ in range(depth):
            for c in range(nchains):
                fn = big_step(c)
                g.submit(fn, read=[], write=[states[c]], kind="hetero-big",
                         name=f"big-{c}",
                         impls=[TaskImpl(fn, "cpu", big_cpu),
                                TaskImpl(fn, "gpu", big_gpu)])
                fn2 = small_step(c)
                g.submit(fn2, write=[states[c]], kind="hetero-small",
                         name=f"small-{c}",
                         impls=[TaskImpl(fn2, "cpu", small_cpu),
                                TaskImpl(fn2, "gpu", small_gpu)])
        g.wait()
        h = hashlib.sha256()
        for s in states:
            h.update(s.data.tobytes())
        return ("hetero", nchains * depth * 2, h.hexdigest())

    root.__name__ = "hetero_chains"
    return root
