"""Deterministic fault injection: failure as a schedulable event.

A :class:`FaultPlan` is pure data — a seed plus a list of fault rules parsed
from a dict/JSON spec. A :class:`FaultInjector` binds a plan to one run:

- *timed faults* (``place_fail``, ``worker_fail``) are scheduled into the
  simulated executor's event queue at their virtual timestamps, where
  :meth:`~repro.exec.sim.SimExecutor.fail_place` /
  :meth:`~repro.exec.sim.SimExecutor.fail_worker` drain and replay or kill
  the affected tasks;
- *message faults* (``message_drop``, ``message_delay``,
  ``message_corrupt``) are decided per-transmit by a seeded RNG substream
  hooked into :meth:`~repro.net.fabric.SimFabric.transmit`;
- *storage faults* (``storage_fail``) fail ``SimStore`` writes at issue;
- *task faults* (``task_fail``) raise :class:`~repro.util.errors.FaultError`
  inside matching task bodies before they run.

Everything happens in virtual time from seeded streams, so a whole chaos
scenario — every fault, retry, and recovery — replays bit-for-bit; the
injector's :attr:`~FaultInjector.events` log is the golden sequence tests
compare across runs.

Spec format (JSON-able; see ``docs/resilience.md``)::

    {"seed": 7,
     "retry": {"attempts": 4, "base": 1e-5, "factor": 2.0, "jitter": 0.25},
     "faults": [
       {"kind": "message_drop",    "prob": 0.01, "channel": "shmem"},
       {"kind": "message_delay",   "prob": 0.05, "extra": 2e-5},
       {"kind": "message_corrupt", "prob": 0.01, "max_faults": 3},
       {"kind": "storage_fail",    "prob": 0.5,  "max_faults": 1},
       {"kind": "task_fail",       "name": "sort-phase", "max_faults": 1},
       {"kind": "place_fail",      "at": 0.002, "rank": 1, "place": "numa0"},
       {"kind": "worker_fail",     "at": 0.001, "rank": 0, "worker": 2}]}
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.resilience.policy import Backoff, RetryPolicy
from repro.util.errors import ConfigError, FaultError
from repro.util.rng import RngFactory

MESSAGE_KINDS = ("message_drop", "message_delay", "message_corrupt")
TIMED_KINDS = ("place_fail", "worker_fail")
ALL_KINDS = MESSAGE_KINDS + TIMED_KINDS + ("storage_fail", "task_fail")

#: Built-in plan presets for the ``chaos`` CLI and the CI smoke job.
PRESETS: Dict[str, Dict[str, Any]] = {
    "drop": {
        "retry": {"attempts": 5, "base": 1e-5, "factor": 2.0, "jitter": 0.25},
        "faults": [{"kind": "message_drop", "prob": 0.002}],
    },
    "delay": {
        "faults": [{"kind": "message_delay", "prob": 0.05, "extra": 2e-5}],
    },
    "corrupt": {
        "retry": {"attempts": 5, "base": 1e-5, "factor": 2.0, "jitter": 0.25},
        "faults": [{"kind": "message_corrupt", "prob": 0.002}],
    },
    "mixed": {
        "retry": {"attempts": 5, "base": 1e-5, "factor": 2.0, "jitter": 0.25},
        "faults": [
            {"kind": "message_drop", "prob": 0.001},
            {"kind": "message_corrupt", "prob": 0.001},
            {"kind": "message_delay", "prob": 0.02, "extra": 1e-5},
        ],
    },
}


@dataclasses.dataclass
class FaultRule:
    """One parsed fault rule. ``max_faults`` bounds how often it may fire
    (None = unbounded); ``fired`` counts injections so far."""

    kind: str
    prob: float = 1.0
    channel: Optional[str] = None
    extra: float = 0.0          # message_delay: added latency (seconds)
    device: Optional[str] = None  # storage_fail: store-name filter
    name: Optional[str] = None    # task_fail: exact task-name match
    rank: Optional[int] = None    # scope to one rank (timed/task faults)
    worker: Optional[int] = None  # worker_fail: worker id
    place: Optional[str] = None   # place_fail: place name (default sysmem)
    at: Optional[float] = None    # timed faults: virtual timestamp
    max_faults: Optional[int] = None
    fired: int = 0

    def exhausted(self) -> bool:
        return self.max_faults is not None and self.fired >= self.max_faults


class FaultPlan:
    """A seed plus an ordered list of :class:`FaultRule`."""

    def __init__(self, rules: List[FaultRule], seed: int = 0,
                 retry: Optional[RetryPolicy] = None):
        self.rules = rules
        self.seed = seed
        self.retry = retry

    @classmethod
    def from_spec(cls, spec: Dict[str, Any], *,
                  seed: Optional[int] = None) -> "FaultPlan":
        """Parse a dict spec (see module docstring). ``seed`` overrides the
        spec's own seed when given."""
        if not isinstance(spec, dict):
            raise ConfigError(f"fault spec must be a dict, got {type(spec)!r}")
        plan_seed = seed if seed is not None else int(spec.get("seed", 0))
        retry = None
        rcfg = spec.get("retry")
        if rcfg is not None:
            retry = RetryPolicy(
                max_attempts=int(rcfg.get("attempts", 3)),
                backoff=Backoff(
                    base=float(rcfg.get("base", 1e-4)),
                    factor=float(rcfg.get("factor", 2.0)),
                    max_delay=float(rcfg.get("max_delay", 0.1)),
                    jitter=float(rcfg.get("jitter", 0.0)),
                    seed=plan_seed,
                ),
            )
        rules = []
        for i, raw in enumerate(spec.get("faults", [])):
            kind = raw.get("kind")
            if kind not in ALL_KINDS:
                raise ConfigError(
                    f"fault #{i}: unknown kind {kind!r}; expected one of "
                    f"{sorted(ALL_KINDS)}")
            prob = float(raw.get("prob", 1.0))
            if not (0.0 <= prob <= 1.0):
                raise ConfigError(f"fault #{i}: prob must be in [0, 1], got {prob}")
            if kind in TIMED_KINDS and "at" not in raw:
                raise ConfigError(f"fault #{i}: {kind} requires an 'at' timestamp")
            if kind == "task_fail" and not raw.get("name"):
                raise ConfigError(f"fault #{i}: task_fail requires a task 'name'")
            mf = raw.get("max_faults")
            rules.append(FaultRule(
                kind=kind, prob=prob,
                channel=raw.get("channel"),
                extra=float(raw.get("extra", 0.0)),
                device=raw.get("device"),
                name=raw.get("name"),
                rank=raw.get("rank"),
                worker=raw.get("worker"),
                place=raw.get("place"),
                at=float(raw["at"]) if "at" in raw else None,
                max_faults=int(mf) if mf is not None else None,
            ))
        return cls(rules, seed=plan_seed, retry=retry)

    @classmethod
    def preset(cls, name: str, *, seed: int = 0) -> "FaultPlan":
        if name not in PRESETS:
            raise ConfigError(
                f"unknown fault preset {name!r}; available: {sorted(PRESETS)}")
        return cls.from_spec(PRESETS[name], seed=seed)

    @classmethod
    def load(cls, path: str, *, seed: Optional[int] = None) -> "FaultPlan":
        """Load a spec from a JSON file, or resolve a preset name.

        A name that is neither a preset nor an existing file raises
        :class:`ConfigError` naming the valid presets (the CLI turns this
        into an exit-2 usage error instead of a traceback).
        """
        if path in PRESETS:
            return cls.from_spec(PRESETS[path], seed=seed)
        if not os.path.exists(path):
            raise ConfigError(
                f"unknown fault plan {path!r}: not a preset "
                f"({sorted(PRESETS)}) and no such JSON spec file")
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_spec(json.load(fh), seed=seed)

    def __repr__(self) -> str:
        kinds = [r.kind for r in self.rules]
        return f"FaultPlan(seed={self.seed}, rules={kinds})"


class FaultInjector:
    """Binds a :class:`FaultPlan` to one run's executor/fabric/stores.

    All injections append ``(virtual_time, kind, detail)`` tuples to
    :attr:`events` — the deterministic fault log — and bump ``resilience.*``
    counters on the affected rank's stats registry when one is attached.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: List[Tuple[float, str, str]] = []
        self._msg_rng = RngFactory(plan.seed).stream("resilience", "msg")
        self._store_rng = RngFactory(plan.seed).stream("resilience", "store")
        self._executor = None
        self._fabric = None
        self._runtimes: Dict[int, Any] = {}  # rank -> HiperRuntime
        self._msg_rules = [r for r in plan.rules if r.kind in MESSAGE_KINDS]
        self._store_rules = [r for r in plan.rules if r.kind == "storage_fail"]
        self._task_rules = [r for r in plan.rules if r.kind == "task_fail"]
        self._timed_rules = [r for r in plan.rules if r.kind in TIMED_KINDS]

    # -- wiring --------------------------------------------------------
    def attach(self, executor, fabric=None) -> "FaultInjector":
        """Hook the injector into an executor (task faults, timed-fault
        scheduling) and optionally a fabric (message faults)."""
        self._executor = executor
        if self._task_rules:
            executor.task_fault_hook = self._task_verdict
        if fabric is not None:
            self._fabric = fabric
            if self._msg_rules:
                fabric.fault_hook = self._message_verdict
        return self

    def attach_store(self, store, *, rank: Optional[int] = None) -> None:
        """Hook storage write faults into one :class:`SimStore`."""
        if self._store_rules:
            store.fault_hook = lambda op, key, nbytes: self._store_verdict(
                store.name, op, key, nbytes, rank)

    def arm_rank(self, ctx) -> None:
        """Per-rank wiring for SPMD runs: stats registry, timed faults, mux
        retry policies, and checkpoint-store fault hooks."""
        rt = ctx.runtime
        self._runtimes[ctx.rank] = rt
        for rule in self._timed_rules:
            if rule.rank is not None and rule.rank != ctx.rank:
                continue
            self._schedule_timed(rule, rt)
        ck = rt.modules.get("checkpoint")
        if ck is not None and ck.store is not None:
            self.attach_store(ck.store, rank=ctx.rank)
        if self.plan.retry is not None:
            mux = ctx.mux
            for channel in list(mux.channels()):
                mux.set_retry_policy(channel, self.plan.retry)

    def arm_runtime(self, runtime) -> None:
        """Single-runtime (non-SPMD) wiring: stats + timed faults."""
        self._runtimes[runtime.rank] = runtime
        for rule in self._timed_rules:
            if rule.rank is not None and rule.rank != runtime.rank:
                continue
            self._schedule_timed(rule, runtime)

    def _schedule_timed(self, rule: FaultRule, runtime) -> None:
        ex = self._executor
        if ex is None:
            raise ConfigError("attach(executor) before arming timed faults")

        def _fire() -> None:
            if rule.exhausted():
                return
            rule.fired += 1
            if rule.kind == "place_fail":
                place = (runtime.model.place(rule.place)
                         if rule.place else runtime.sysmem)
                replayed, killed = ex.fail_place(runtime, place)
                self._log(ex.now(), "place_fail",
                          f"rank={runtime.rank} place={place.name} "
                          f"replayed={replayed} killed={killed}",
                          rank=runtime.rank)
            else:
                wid = rule.worker if rule.worker is not None else 0
                moved = ex.fail_worker(runtime, wid)
                self._log(ex.now(), "worker_fail",
                          f"rank={runtime.rank} worker={wid} moved={moved}",
                          rank=runtime.rank)

        ex.call_at(rule.at, _fire)

    # -- verdicts ------------------------------------------------------
    def _message_verdict(self, src: int, dst: int, nbytes: int,
                         payload: Any) -> Optional[Tuple]:
        channel = (payload[0] if isinstance(payload, tuple) and payload
                   and isinstance(payload[0], str) else None)
        for rule in self._msg_rules:
            if rule.exhausted():
                continue
            if rule.channel is not None and rule.channel != channel:
                continue
            if float(self._msg_rng.random()) >= rule.prob:
                continue
            rule.fired += 1
            t = self._executor.now() if self._executor is not None else 0.0
            detail = f"{src}->{dst} ch={channel or 'net'} nbytes={nbytes}"
            if rule.kind == "message_drop":
                self._log(t, "message_drop", detail, rank=src)
                return ("drop",)
            if rule.kind == "message_corrupt":
                self._log(t, "message_corrupt", detail, rank=src)
                return ("corrupt",)
            self._log(t, "message_delay", f"{detail} extra={rule.extra}",
                      rank=src)
            return ("delay", rule.extra)
        return None

    def _store_verdict(self, device: str, op: str, key: str, nbytes: int,
                       rank: Optional[int]) -> bool:
        for rule in self._store_rules:
            if rule.exhausted():
                continue
            if rule.device is not None and rule.device != device:
                continue
            if rule.rank is not None and rank is not None and rule.rank != rank:
                continue
            if float(self._store_rng.random()) >= rule.prob:
                continue
            rule.fired += 1
            t = self._executor.now() if self._executor is not None else 0.0
            self._log(t, "storage_fail",
                      f"device={device} op={op} key={key} nbytes={nbytes}",
                      rank=rank)
            return True
        return False

    def _task_verdict(self, task) -> None:
        # Retried attempts are named "<base>#<attempt>" by async_retry; a
        # rule matches either the full name or the base.
        base = task.name.split("#", 1)[0] if task.name else task.name
        for rule in self._task_rules:
            if rule.exhausted():
                continue
            if rule.name != task.name and rule.name != base:
                continue
            if rule.rank is not None and rule.rank != task.rank:
                continue
            if rule.prob < 1.0 and float(self._msg_rng.random()) >= rule.prob:
                continue
            rule.fired += 1
            t = self._executor.now() if self._executor is not None else 0.0
            self._log(t, "task_fail",
                      f"rank={task.rank} task={task.name!r} "
                      f"id={task.task_id}", rank=task.rank)
            raise FaultError(
                f"injected failure in task {task.name!r} on rank {task.rank}")

    # -- bookkeeping ---------------------------------------------------
    def _log(self, t: float, kind: str, detail: str,
             rank: Optional[int] = None) -> None:
        self.events.append((t, kind, detail))
        rt = self._runtimes.get(rank if rank is not None else -1)
        if rt is not None:
            rt.stats.count("resilience", f"fault_{kind}")
        ex = self._executor
        if ex is not None and ex.tracer is not None:
            ex.tracer.record_instant(rank if rank is not None else 0,
                                     f"fault:{kind}", t, detail)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _, kind, _ in self.events:
            out[kind] = out.get(kind, 0) + 1
        return out

    def event_log(self) -> List[Tuple[float, str, str]]:
        """The deterministic injection sequence (golden-test comparable)."""
        return list(self.events)

    def save_log(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump([{"t": t, "kind": k, "detail": d}
                       for t, k, d in self.events], fh, indent=1)

    def __repr__(self) -> str:
        return f"FaultInjector({self.plan!r}, events={len(self.events)})"
