"""Byte-exact payload snapshots: the checkpoint/rollback primitive.

The resilience layer already checkpoints *named numpy arrays* through the
storage module (:class:`repro.io.module.CheckpointModule`); speculative
execution in :mod:`repro.taskgraph` needs the same guarantee — restore a
datum to bit-identical pre-task state — for arbitrary task-graph payloads,
without requiring a storage module install. These helpers are that
machinery factored to its core:

- :func:`snapshot_payload` captures an independent copy of a payload (a
  numpy array copy, or a deep copy for other objects);
- :func:`restore_payload` materializes a fresh value from a snapshot (so
  one snapshot can seed multiple rollbacks);
- :func:`payload_digest` produces a stable content digest used both to
  *detect* writes (a maybe-write task is judged by comparing digests
  before/after) and to assert bit-for-bit rollback in tests.

Digests hash raw bytes for contiguous numpy arrays (dtype + shape + data,
the same bytes :class:`~repro.io.storage.SimStore` snapshots) and a
deterministic pickle for everything else.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
from typing import Any

import numpy as np

__all__ = ["snapshot_payload", "restore_payload", "payload_digest"]


def snapshot_payload(payload: Any) -> Any:
    """An independent copy of ``payload``, safe against in-place mutation.

    Arrays are copied with ``np.copy`` (bit-exact, dtype-preserving);
    ``None`` and immutable scalars pass through; everything else is
    deep-copied.
    """
    if payload is None or isinstance(payload, (int, float, complex, str,
                                               bytes, bool, frozenset)):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return copy.deepcopy(payload)


def restore_payload(snapshot: Any) -> Any:
    """A fresh value equal to the snapshot.

    Returns a *copy* (not the snapshot object itself) so a rolled-back task
    that is replayed — and mutates its input again — cannot corrupt the
    snapshot for a second rollback.
    """
    return snapshot_payload(snapshot)


def payload_digest(payload: Any) -> str:
    """Stable SHA-256 content digest of a payload.

    Contiguous arrays hash ``dtype | shape | raw bytes`` — exactly the byte
    view the storage layer snapshots — so "digests equal" means "bit-for-bit
    equal". Non-array payloads hash their pickle (protocol pinned for
    stability within a run).
    """
    h = hashlib.sha256()
    if isinstance(payload, np.ndarray):
        arr = payload if payload.flags["C_CONTIGUOUS"] else np.ascontiguousarray(payload)
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    else:
        h.update(pickle.dumps(payload, protocol=4))
    return h.hexdigest()
