"""Resilience subsystem: failure as a schedulable, deterministic event.

Three layers (see ``docs/resilience.md``):

- **injection** (:mod:`repro.resilience.faults`): a seeded
  :class:`FaultPlan` drives worker/place outages, message drop/corruption/
  delay, storage write failures, and task-body exceptions — all in virtual
  time, bit-for-bit reproducible;
- **policy** (:mod:`repro.resilience.policy`): :func:`async_retry` /
  :func:`with_timeout` / :class:`Backoff` over the promise machinery, plus
  :class:`RetryPolicy` for per-channel message retransmission;
- **recovery**: ``SimExecutor.fail_place``/``fail_worker`` replay idempotent
  tasks on surviving resources, and :class:`~repro.io.module.CheckpointModule`
  restores application state (catch :class:`~repro.util.errors.PlaceFailure`
  inside an ``async_retry`` body).
"""

from repro.resilience.faults import (FaultInjector, FaultPlan, FaultRule,
                                     PRESETS)
from repro.resilience.policy import (Backoff, RetryPolicy, async_retry,
                                     with_timeout)
from repro.resilience.snapshot import (payload_digest, restore_payload,
                                       snapshot_payload)
from repro.util.errors import FaultError, PlaceFailure, TimeoutExpired

__all__ = [
    "Backoff",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "PRESETS",
    "PlaceFailure",
    "RetryPolicy",
    "TimeoutExpired",
    "async_retry",
    "payload_digest",
    "restore_payload",
    "snapshot_payload",
    "with_timeout",
]
