"""Retry/timeout policies over the promise machinery.

Failure handling composes from three small pieces:

- :class:`Backoff` — deterministic exponential backoff with seeded jitter
  (every delay is derived from a :class:`~repro.util.rng.RngFactory`
  substream, so retry schedules replay bit-for-bit);
- :func:`with_timeout` — race a future against an executor timer; exactly
  one of value/:class:`~repro.util.errors.TimeoutExpired` wins;
- :func:`async_retry` — respawn a task body on failure, spaced by a
  backoff, while holding the caller's finish scope open so enclosing joins
  keep accounting for the retried work.

:class:`RetryPolicy` bundles attempts + backoff for per-channel message
retransmission in :class:`~repro.net.mux.FabricMux` (a dropped or corrupted
message becomes a retried one instead of a hang ending in ``DeadlockError``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Tuple, Type, Union

from repro.runtime.context import require_context
from repro.runtime.finish import FinishScope
from repro.runtime.future import Future, Promise
from repro.util.errors import ConfigError, HiperError, RuntimeStateError, TimeoutExpired
from repro.util.rng import RngFactory

__all__ = ["Backoff", "RetryPolicy", "with_timeout", "async_retry"]


class Backoff:
    """Exponential backoff with deterministic, seeded jitter.

    ``delay(attempt)`` returns ``min(base * factor**attempt, max_delay)``
    plus up to ``jitter`` of that as additive noise drawn from a seeded
    stream — decorrelating retry storms without sacrificing replayability.
    """

    def __init__(self, base: float = 1e-4, factor: float = 2.0,
                 max_delay: float = 0.1, jitter: float = 0.0, seed: int = 0):
        if base < 0 or factor < 1.0 or max_delay < 0:
            raise ConfigError(
                f"invalid backoff (base={base}, factor={factor}, "
                f"max_delay={max_delay}); need base/max >= 0, factor >= 1")
        if not (0.0 <= jitter <= 1.0):
            raise ConfigError(f"jitter must be in [0, 1], got {jitter}")
        self.base = float(base)
        self.factor = float(factor)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = seed
        self._rng = RngFactory(seed).stream("resilience", "backoff")

    def delay(self, attempt: int) -> float:
        if attempt < 0:
            raise ConfigError(f"attempt must be non-negative, got {attempt}")
        d = min(self.base * self.factor ** attempt, self.max_delay)
        if self.jitter:
            d += d * self.jitter * float(self._rng.random())
        return d

    def __repr__(self) -> str:
        return (f"Backoff(base={self.base}, factor={self.factor}, "
                f"max={self.max_delay}, jitter={self.jitter})")


class RetryPolicy:
    """How many times to retry an operation, and how to space the attempts."""

    __slots__ = ("max_attempts", "backoff")

    def __init__(self, max_attempts: int = 3, backoff: Optional[Backoff] = None):
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.backoff = backoff if backoff is not None else Backoff()

    def __repr__(self) -> str:
        return f"RetryPolicy(attempts={self.max_attempts}, {self.backoff!r})"


def with_timeout(future: Future, timeout: float, *,
                 name: str = "timeout") -> Future:
    """A future carrying ``future``'s outcome, or :class:`TimeoutExpired` if
    ``timeout`` (virtual or wall) seconds elapse first.

    The deadline is armed via the executor's ``call_later``, so under the
    simulated engine the race is deterministic. Exactly one side wins; the
    loser's arrival is ignored (the underlying operation is not cancelled —
    it merely loses its audience, like an abandoned MPI request).
    """
    if timeout < 0:
        raise ConfigError(f"timeout must be non-negative, got {timeout}")
    ctx = require_context()
    out = Promise(name=name)
    won = [False]
    lock = threading.Lock()

    def _claim() -> bool:
        with lock:
            if won[0]:
                return False
            won[0] = True
            return True

    def _settle(f: Future) -> None:
        if not _claim():
            return
        try:
            out.put(f.value())
        except BaseException as exc:  # noqa: BLE001
            out.put_exception(exc)

    def _expire() -> None:
        if not _claim():
            return
        out.put_exception(TimeoutExpired(
            f"{future.name or 'future'} did not complete within {timeout}s",
            timeout=timeout))

    future.on_ready(_settle)
    ctx.executor.call_later(timeout, _expire)
    return out.get_future()


def async_retry(
    body: Callable[[], Any],
    *,
    attempts: int = 3,
    backoff: Optional[Backoff] = None,
    retry_on: Union[Type[BaseException], Tuple[Type[BaseException], ...]] = HiperError,
    name: str = "retry",
    scope: Optional[FinishScope] = None,
    place: Optional[Any] = None,
) -> Future:
    """Spawn ``body`` as a task; respawn it (up to ``attempts`` total) when it
    fails with an exception matching ``retry_on``, spacing attempts by
    ``backoff``. Returns a future of the first successful return value — or
    of the last failure once attempts are exhausted.

    ``body`` must be safe to re-invoke (idempotent or self-recovering, e.g.
    restore-from-checkpoint-then-redo). The caller's finish scope is held
    open across backoff gaps, so an enclosing ``finish`` correctly waits for
    retried work even while no attempt task exists. ``place`` pins attempts
    to a place; if that place fails, later attempts are redirected to the
    runtime's fallback automatically.
    """
    if attempts < 1:
        raise ConfigError(f"attempts must be >= 1, got {attempts}")
    ctx = require_context()
    rt = ctx.runtime
    if rt is None:
        raise RuntimeStateError("async_retry requires a runtime context")
    if scope is None:
        scope = ctx.task.active_scope if ctx.task is not None else None
        if scope is None:
            raise RuntimeStateError(
                "async_retry outside a task requires an explicit scope=")
    bo = backoff if backoff is not None else Backoff()
    out = Promise(name=f"{name}-done")
    t_first = ctx.executor.now()
    scope.task_spawned()  # held until the retry loop resolves

    def _resolve(value: Any = None, exc: Optional[BaseException] = None) -> None:
        if exc is not None:
            out.put_exception(exc)
        else:
            out.put(value)
        scope.task_completed(None)

    def _attempt(i: int) -> None:
        # ``place`` is a preference, not an anchor: if it has failed, the
        # runtime's redirect machinery re-places the fresh attempt on the
        # fallback — which is exactly how a retry escapes a dead place.
        fut = rt.spawn(body, scope=scope, return_future=True,
                       place=place, name=f"{name}#{i}")
        assert fut is not None

        def _done(f: Future) -> None:
            try:
                value = f.value()
                if i > 0:
                    # Recovered after >= 1 failure: time from the first
                    # attempt's spawn to the successful completion.
                    now = rt.executor.now()
                    rt.stats.sample("resilience/time_to_recovery", now,
                                    now - t_first)
                _resolve(value=value)
                return
            except retry_on as exc:
                if i + 1 < attempts:
                    rt.stats.count("resilience", "retries")
                    rt.executor.call_later(bo.delay(i), lambda: _attempt(i + 1))
                else:
                    rt.stats.count("resilience", "retries_exhausted")
                    _resolve(exc=exc)
            except BaseException as exc:  # noqa: BLE001 - non-retryable
                _resolve(exc=exc)

        fut.on_ready(_done)

    _attempt(0)
    return out.get_future()
