"""The platform model: an undirected, unweighted graph of places (paper §II-A).

Edges represent *direct accessibility* between hardware components — e.g. an
edge between system memory and a GPU's device memory means data is directly
transferrable between them. The model is loaded from (and saved to) a JSON
format; :mod:`repro.platform.hwloc` can synthesize configurations from a
machine description, mirroring the paper's hwloc-based generator.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.platform.place import Place, PlaceType
from repro.util.errors import PlatformError


class PlatformModel:
    """An in-memory graph of :class:`Place` nodes.

    The model is mutable while being built and is conventionally frozen (via
    :meth:`freeze`) before a runtime starts, after which structural mutation
    raises :class:`PlatformError`. Multiple runtimes (ranks) may each own a
    *copy* of a model; places are identity-scoped to their model.
    """

    def __init__(self, name: str = "platform"):
        self.name = name
        self._places: List[Place] = []
        self._by_name: Dict[str, Place] = {}
        self._adj: Dict[int, Set[int]] = {}
        self._frozen = False
        #: Number of worker threads the runtime should create (paper: defined
        #: in the platform JSON, generally = number of management cores).
        self.num_workers: int = 1

    # -- construction ----------------------------------------------------
    def _check_mutable(self) -> None:
        if self._frozen:
            raise PlatformError("platform model is frozen; copy it to modify")

    def add_place(
        self,
        name: str,
        kind: PlaceType,
        properties: Optional[Dict[str, Any]] = None,
    ) -> Place:
        self._check_mutable()
        if name in self._by_name:
            raise PlatformError(f"duplicate place name {name!r}")
        place = Place(len(self._places), name, kind, properties)
        place._model = self
        self._places.append(place)
        self._by_name[name] = place
        self._adj[place.place_id] = set()
        return place

    def add_edge(self, a: Place, b: Place) -> None:
        self._check_mutable()
        for p in (a, b):
            if p._model is not self:
                raise PlatformError(f"place {p.name!r} does not belong to this model")
        if a is b:
            raise PlatformError(f"self-edge on place {a.name!r} is not allowed")
        self._adj[a.place_id].add(b.place_id)
        self._adj[b.place_id].add(a.place_id)

    def freeze(self) -> "PlatformModel":
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._places)

    def __iter__(self) -> Iterator[Place]:
        return iter(self._places)

    def __contains__(self, place: Place) -> bool:
        return place._model is self

    @property
    def places(self) -> Tuple[Place, ...]:
        return tuple(self._places)

    def place(self, name: str) -> Place:
        try:
            return self._by_name[name]
        except KeyError:
            raise PlatformError(f"no place named {name!r} in model {self.name!r}") from None

    def place_by_id(self, place_id: int) -> Place:
        try:
            return self._places[place_id]
        except IndexError:
            raise PlatformError(f"no place with id {place_id}") from None

    def places_of_type(self, kind: PlaceType) -> List[Place]:
        return [p for p in self._places if p.kind is kind]

    def first_of_type(self, kind: PlaceType) -> Place:
        found = self.places_of_type(kind)
        if not found:
            raise PlatformError(f"model {self.name!r} has no place of type {kind.value}")
        return found[0]

    def has_type(self, kind: PlaceType) -> bool:
        return any(p.kind is kind for p in self._places)

    def neighbors(self, place: Place) -> List[Place]:
        if place._model is not self:
            raise PlatformError(f"place {place.name!r} does not belong to this model")
        return [self._places[i] for i in sorted(self._adj[place.place_id])]

    def has_edge(self, a: Place, b: Place) -> bool:
        return b.place_id in self._adj.get(a.place_id, set())

    def shortest_path(self, src: Place, dst: Place) -> List[Place]:
        """BFS shortest path (list of places, inclusive). Raises if disconnected.

        Used by ``async_copy`` to route multi-hop transfers through
        intermediate memories (e.g. GPU→sysmem→NVM) and by path policies.
        """
        if src is dst:
            return [src]
        prev: Dict[int, int] = {src.place_id: -1}
        frontier = [src.place_id]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in sorted(self._adj[u]):
                    if v not in prev:
                        prev[v] = u
                        if v == dst.place_id:
                            path = [v]
                            while path[-1] != src.place_id:
                                path.append(prev[path[-1]])
                            return [self._places[i] for i in reversed(path)]
                        nxt.append(v)
            frontier = nxt
        raise PlatformError(
            f"places {src.name!r} and {dst.name!r} are not connected in model {self.name!r}"
        )

    def is_connected(self) -> bool:
        if not self._places:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == len(self._places)

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`PlatformError` on failure.

        Invariants: non-empty, connected, symmetric adjacency, worker count
        positive, and at most one interconnect place (the MPI/SHMEM/UPC++
        modules assume a single Interconnect place, paper §II-C1).
        """
        if not self._places:
            raise PlatformError("platform model has no places")
        if self.num_workers < 1:
            raise PlatformError(f"num_workers must be >= 1, got {self.num_workers}")
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u not in self._adj[v]:
                    raise PlatformError("adjacency is not symmetric (internal corruption)")
        if not self.is_connected():
            raise PlatformError("platform model graph is not connected")
        inter = self.places_of_type(PlaceType.INTERCONNECT)
        if len(inter) > 1:
            raise PlatformError(
                f"at most one interconnect place is supported, found {len(inter)}"
            )

    # -- copy / serialization -------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "PlatformModel":
        """Deep-copy the model (unfrozen). Each rank's runtime owns a copy."""
        clone = PlatformModel(name or self.name)
        clone.num_workers = self.num_workers
        for p in self._places:
            clone.add_place(p.name, p.kind, dict(p.properties))
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    clone.add_edge(clone._places[u], clone._places[v])
        return clone

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "num_workers": self.num_workers,
            "places": [p.to_json() for p in self._places],
            "edges": sorted(
                [self._places[u].name, self._places[v].name]
                for u, nbrs in self._adj.items()
                for v in nbrs
                if u < v
            ),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "PlatformModel":
        try:
            model = cls(data.get("name", "platform"))
            model.num_workers = int(data.get("num_workers", 1))
            for pd in data["places"]:
                model.add_place(
                    pd["name"], PlaceType.from_string(pd["type"]), pd.get("properties")
                )
            for a_name, b_name in data.get("edges", []):
                model.add_edge(model.place(a_name), model.place(b_name))
        except (KeyError, TypeError, ValueError) as exc:
            raise PlatformError(f"malformed platform JSON: {exc!r}") from exc
        return model

    @classmethod
    def from_json(cls, text: str) -> "PlatformModel":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlatformError(f"invalid JSON: {exc}") from exc
        return cls.from_json_dict(data)

    @classmethod
    def load(cls, path: str) -> "PlatformModel":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (for analysis/visualization)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        for p in self._places:
            g.add_node(p.name, kind=p.kind.value, **p.properties)
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    g.add_edge(self._places[u].name, self._places[v].name)
        return g

    def __repr__(self) -> str:
        return (
            f"PlatformModel({self.name!r}, places={len(self._places)}, "
            f"workers={self.num_workers}, frozen={self._frozen})"
        )
