"""Places: nodes of the HiPER platform model graph (paper §II-A).

A *place* logically represents a hardware component that software libraries
may utilize — system memory, a cache slice, GPU device memory, the network
interconnect, NVM, or disk. Task deques hang off places; pop/steal paths are
sequences of places.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from repro.util.errors import PlatformError


class PlaceType(enum.Enum):
    """Kinds of hardware components a place may model.

    The set mirrors the components named in the paper's abstract platform
    model (Fig. 1): memory/caches for computation, GPU memory for
    accelerators, an interconnect place for communication funneling, and
    NVM/disk for storage modules (paper §V future work).
    """

    SYSTEM_MEM = "system_mem"
    L3_CACHE = "l3_cache"
    L2_CACHE = "l2_cache"
    L1_CACHE = "l1_cache"
    GPU_MEM = "gpu_mem"
    INTERCONNECT = "interconnect"
    NVM = "nvm"
    DISK = "disk"

    @classmethod
    def from_string(cls, s: str) -> "PlaceType":
        try:
            return cls(s)
        except ValueError:
            valid = ", ".join(t.value for t in cls)
            raise PlatformError(f"unknown place type {s!r}; expected one of: {valid}")


#: Place types that model memories data can physically live in, i.e. valid
#: endpoints for ``async_copy``.
MEMORY_PLACE_TYPES = frozenset(
    {
        PlaceType.SYSTEM_MEM,
        PlaceType.GPU_MEM,
        PlaceType.NVM,
        PlaceType.DISK,
    }
)


class Place:
    """One node in the platform graph.

    Attributes
    ----------
    place_id:
        Dense integer id, unique within one :class:`PlatformModel`.
    name:
        Human-readable unique name (used in JSON configs and path specs).
    kind:
        The :class:`PlaceType`.
    properties:
        Free-form hardware properties (``bandwidth_gbs``, ``capacity_bytes``,
        ``socket``, ``device`` ...). Modules may read these during
        initialization — e.g. the CUDA module locates its device index here.
    """

    __slots__ = ("place_id", "name", "kind", "properties", "_model")

    def __init__(
        self,
        place_id: int,
        name: str,
        kind: PlaceType,
        properties: Optional[Dict[str, Any]] = None,
    ):
        if place_id < 0:
            raise PlatformError(f"place_id must be non-negative, got {place_id}")
        if not name:
            raise PlatformError("place name must be non-empty")
        self.place_id = place_id
        self.name = name
        self.kind = kind
        self.properties: Dict[str, Any] = dict(properties or {})
        self._model = None  # set by PlatformModel.add_place

    @property
    def is_memory(self) -> bool:
        """Whether data can reside at this place (``async_copy`` endpoint)."""
        return self.kind in MEMORY_PLACE_TYPES

    def neighbors(self):
        """Places directly accessible from this one (graph edges)."""
        if self._model is None:
            raise PlatformError(f"place {self.name!r} is not attached to a model")
        return self._model.neighbors(self)

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind.value, "properties": dict(self.properties)}

    def __repr__(self) -> str:
        return f"Place({self.place_id}, {self.name!r}, {self.kind.value})"

    def __hash__(self) -> int:
        return hash((id(self._model), self.place_id))

    def __eq__(self, other: object) -> bool:
        return self is other
