"""Synthetic hwloc: generate platform models from machine descriptions.

The paper ships "utilities for automatically generating JSON platform
configuration files using the HWloc library". Real hwloc probes the host; in
this reproduction a :class:`MachineSpec` *describes* a node (sockets, cores,
caches, GPUs, NVM, disks) and :func:`discover` synthesizes the equivalent
platform graph. Specs for the paper's evaluation machines (Edison, Titan)
live in :data:`MACHINES`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.platform.model import PlatformModel
from repro.platform.place import PlaceType
from repro.util.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """One accelerator: memory size and roofline parameters used by the CUDA
    module's cost model."""

    mem_bytes: int = 6 * 2**30
    flops: float = 1.31e12  # double-precision peak, defaults are K20X-ish
    mem_bw: float = 208e9  # device memory bandwidth, bytes/s
    pcie_bw: float = 6e9  # host<->device transfer bandwidth, bytes/s
    kernel_launch_overhead: float = 8e-6


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Description of one shared-memory node.

    ``core_flops``/``mem_bw`` feed the simulated executor's compute cost
    model; the network parameters live in :class:`repro.net.costmodel.NetworkModel`
    (a property of the cluster, not the node).
    """

    name: str
    sockets: int = 2
    cores_per_socket: int = 12
    core_flops: float = 9.6e9  # per-core double-precision flop/s
    mem_bw: float = 89e9  # per-node stream bandwidth, bytes/s
    mem_bytes: int = 64 * 2**30
    l3_bytes: int = 30 * 2**20
    gpus: int = 0
    gpu: Optional[GpuSpec] = None
    nvm_bytes: int = 0
    disks: int = 0

    def __post_init__(self):
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ConfigError("machine must have at least one socket and one core")
        if self.gpus and self.gpu is None:
            object.__setattr__(self, "gpu", GpuSpec())

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket


#: Machine models for the paper's evaluation platforms (§III-A).
MACHINES: Dict[str, MachineSpec] = {
    # Edison: Cray XC30, 2x12-core Intel Ivy Bridge, 64 GB DDR3 per node.
    "edison": MachineSpec(
        name="edison",
        sockets=2,
        cores_per_socket=12,
        core_flops=9.6e9,
        mem_bw=89e9,
        mem_bytes=64 * 2**30,
    ),
    # Titan: Cray XK7, 16-core AMD Opteron + NVIDIA K20X, 32 GB per node.
    "titan": MachineSpec(
        name="titan",
        sockets=2,
        cores_per_socket=8,
        core_flops=8.8e9,
        mem_bw=52e9,
        mem_bytes=32 * 2**30,
        gpus=1,
        gpu=GpuSpec(),
    ),
    # A small generic workstation, handy for tests and the quickstart.
    "workstation": MachineSpec(
        name="workstation",
        sockets=1,
        cores_per_socket=4,
        core_flops=3.0e9,
        mem_bw=20e9,
        mem_bytes=16 * 2**30,
        gpus=1,
    ),
}


def machine(name: str) -> MachineSpec:
    try:
        return MACHINES[name]
    except KeyError:
        raise ConfigError(
            f"unknown machine {name!r}; known machines: {sorted(MACHINES)}"
        ) from None


def discover(
    spec: MachineSpec,
    num_workers: Optional[int] = None,
    detail: str = "numa",
    with_interconnect: bool = True,
) -> PlatformModel:
    """Build a platform model for one node of ``spec``.

    ``detail`` selects graph granularity:

    - ``"flat"``  — a single system-memory place (plus devices/interconnect).
    - ``"numa"``  — one L3 place per socket under system memory (default).
    - ``"full"``  — additionally one L2+L1 pair per core.

    ``num_workers`` defaults to the core count (paper: "generally equals the
    number of management cores").
    """
    if detail not in ("flat", "numa", "full"):
        raise ConfigError(f"detail must be flat|numa|full, got {detail!r}")

    model = PlatformModel(name=f"{spec.name}-{detail}")
    model.num_workers = spec.cores if num_workers is None else int(num_workers)
    if model.num_workers < 1:
        raise ConfigError("num_workers must be >= 1")

    sysmem = model.add_place(
        "sysmem",
        PlaceType.SYSTEM_MEM,
        {
            "capacity_bytes": spec.mem_bytes,
            "bandwidth_bytes_per_s": spec.mem_bw,
            "core_flops": spec.core_flops,
            "cores": spec.cores,
        },
    )

    if detail in ("numa", "full"):
        for s in range(spec.sockets):
            l3 = model.add_place(
                f"socket{s}.l3",
                PlaceType.L3_CACHE,
                {"socket": s, "capacity_bytes": spec.l3_bytes},
            )
            model.add_edge(sysmem, l3)
            if detail == "full":
                for c in range(spec.cores_per_socket):
                    core = s * spec.cores_per_socket + c
                    if core >= model.num_workers:
                        # per-core cache places exist for worker-backed cores
                        # only; unmanned places would be unreachable by any
                        # pop/steal path.
                        continue
                    l2 = model.add_place(
                        f"core{core}.l2", PlaceType.L2_CACHE, {"socket": s, "core": core}
                    )
                    l1 = model.add_place(
                        f"core{core}.l1", PlaceType.L1_CACHE, {"socket": s, "core": core}
                    )
                    model.add_edge(l3, l2)
                    model.add_edge(l2, l1)

    for g in range(spec.gpus):
        assert spec.gpu is not None
        gpu = model.add_place(
            f"gpu{g}",
            PlaceType.GPU_MEM,
            {
                "device": g,
                "capacity_bytes": spec.gpu.mem_bytes,
                "flops": spec.gpu.flops,
                "bandwidth_bytes_per_s": spec.gpu.mem_bw,
                "pcie_bytes_per_s": spec.gpu.pcie_bw,
                "kernel_launch_overhead": spec.gpu.kernel_launch_overhead,
            },
        )
        model.add_edge(sysmem, gpu)

    if with_interconnect:
        nic = model.add_place("interconnect", PlaceType.INTERCONNECT, {})
        model.add_edge(sysmem, nic)

    if spec.nvm_bytes:
        nvm = model.add_place("nvm", PlaceType.NVM, {"capacity_bytes": spec.nvm_bytes})
        model.add_edge(sysmem, nvm)

    for d in range(spec.disks):
        disk = model.add_place(f"disk{d}", PlaceType.DISK, {"device": d})
        model.add_edge(sysmem, disk)

    model.validate()
    return model
