"""Pop/steal path construction policies (paper §II-B3, Fig. 3).

Each worker owns a *pop path* and a *steal path*: ordered lists of places the
worker traverses when looking for work. The paper stresses that paths are
"infinitely flexible" and encode load-balancing policy; this module provides
the policies the evaluation needs plus a fully custom escape hatch.

All policies honour the communication-funneling convention from §II-C1: the
Interconnect place appears only on the paths of a single designated worker
(worker 0 by default), which lets communication modules run the underlying
library in a FUNNELED mode.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.platform.model import PlatformModel
from repro.platform.place import Place, PlaceType
from repro.util.errors import ConfigError, PlatformError


class WorkerPaths:
    """The (pop, steal) place sequences for every worker of one runtime."""

    def __init__(self, pop: Sequence[Sequence[Place]], steal: Sequence[Sequence[Place]]):
        if len(pop) != len(steal):
            raise ConfigError("pop and steal path lists must have equal length")
        if not pop:
            raise ConfigError("at least one worker path is required")
        for paths in (pop, steal):
            for wp in paths:
                if not wp:
                    raise ConfigError("every worker needs a non-empty path")
        self.pop: List[List[Place]] = [list(p) for p in pop]
        self.steal: List[List[Place]] = [list(p) for p in steal]

    @property
    def num_workers(self) -> int:
        return len(self.pop)

    def places_on_any_path(self) -> List[Place]:
        seen: Dict[int, Place] = {}
        for paths in (self.pop, self.steal):
            for wp in paths:
                for p in wp:
                    seen.setdefault(p.place_id, p)
        return [seen[k] for k in sorted(seen)]

    def workers_covering(self, place: Place) -> List[int]:
        """Workers that would ever visit ``place`` (on either path)."""
        out = []
        for w in range(self.num_workers):
            if any(p is place for p in self.pop[w]) or any(p is place for p in self.steal[w]):
                out.append(w)
        return out

    def validate(self, model: PlatformModel) -> None:
        for paths in (self.pop, self.steal):
            for wp in paths:
                for p in wp:
                    if p not in model:
                        raise PlatformError(
                            f"path references place {p.name!r} from a different model"
                        )
        # every place with deques must be drainable by someone
        for p in model:
            if not self.workers_covering(p):
                # tolerable (tasks there would never run) but almost always a
                # configuration bug — surface it loudly.
                raise ConfigError(
                    f"place {p.name!r} is on no worker's pop or steal path; "
                    "tasks enqueued there would never execute"
                )


PathPolicy = Callable[[PlatformModel], WorkerPaths]


def _socket_of_worker(model: PlatformModel, worker: int) -> Optional[Place]:
    """Map worker index -> its socket's L3 place, round-robin across sockets."""
    l3s = model.places_of_type(PlaceType.L3_CACHE)
    if not l3s:
        return None
    per_socket = max(1, model.num_workers // len(l3s))
    return l3s[min(worker // per_socket, len(l3s) - 1)]


def default_paths(model: PlatformModel, comm_worker: int = 0) -> WorkerPaths:
    """The shipped default: memory-hierarchy-aware paths.

    Pop path for worker *w*: its L1, L2 (full detail), its socket L3 (numa
    detail), then system memory, then any GPU places, then — for the
    designated communication worker only — the interconnect place.

    The steal path extends the pop path with the OTHER workers' private
    cache places, socket-mates first (paper Fig. 3: thieves walk outward
    through the memory hierarchy). Without those, work spawned to a private
    L1 place would be invisible to every thief.
    """
    if not (0 <= comm_worker < model.num_workers):
        raise ConfigError(
            f"comm_worker {comm_worker} out of range for {model.num_workers} workers"
        )
    sysmem = model.first_of_type(PlaceType.SYSTEM_MEM)
    gpus = model.places_of_type(PlaceType.GPU_MEM)
    storage = (model.places_of_type(PlaceType.NVM)
               + model.places_of_type(PlaceType.DISK))
    inter = (
        model.places_of_type(PlaceType.INTERCONNECT)[0]
        if model.has_type(PlaceType.INTERCONNECT)
        else None
    )
    l1s = {p.properties.get("core"): p for p in model.places_of_type(PlaceType.L1_CACHE)}
    l2s = {p.properties.get("core"): p for p in model.places_of_type(PlaceType.L2_CACHE)}

    pop, steal = [], []
    for w in range(model.num_workers):
        path: List[Place] = []
        if w in l1s:
            path.append(l1s[w])
        if w in l2s:
            path.append(l2s[w])
        my_l3 = _socket_of_worker(model, w)
        if my_l3 is not None:
            path.append(my_l3)
        path.append(sysmem)
        path.extend(gpus)
        path.extend(storage)
        if inter is not None and w == comm_worker:
            path.append(inter)
        pop.append(path)
        # Steal path: same walk, then the REST of the machine — remote
        # sockets' L3s, then other workers' private places (socket-mates
        # before remote sockets). Every place another worker can spawn to
        # must appear on some thief's path or its work is unstealable.
        spath = list(path)
        for l3 in model.places_of_type(PlaceType.L3_CACHE):
            if l3 is not my_l3:
                spath.append(l3)
        others = sorted(
            (v for v in l1s if v != w),
            key=lambda v: (_socket_of_worker(model, v) is not my_l3, v),
        )
        for v in others:
            spath.append(l1s[v])
            if v in l2s:
                spath.append(l2s[v])
        steal.append(spath)
    return WorkerPaths(pop, steal)


def flat_paths(model: PlatformModel, comm_worker: int = 0) -> WorkerPaths:
    """Minimal policy: every worker pops/steals at system memory only (plus
    GPU places, plus interconnect for the communication worker)."""
    sysmem = model.first_of_type(PlaceType.SYSTEM_MEM)
    gpus = model.places_of_type(PlaceType.GPU_MEM)
    storage = (model.places_of_type(PlaceType.NVM)
               + model.places_of_type(PlaceType.DISK))
    inter = (
        model.places_of_type(PlaceType.INTERCONNECT)[0]
        if model.has_type(PlaceType.INTERCONNECT)
        else None
    )
    pop, steal = [], []
    for w in range(model.num_workers):
        path = [sysmem] + gpus + storage
        if inter is not None and w == comm_worker:
            path.append(inter)
        pop.append(path)
        steal.append(list(path))
    return WorkerPaths(pop, steal)


def dedicated_comm_paths(model: PlatformModel, comm_worker: int = 0) -> WorkerPaths:
    """Ablation policy: a *dedicated* communication worker (related-work
    style, §IV). The designated worker visits ONLY the interconnect place;
    all others never visit it. Used to quantify what the paper gains by NOT
    dedicating an OS thread to communication."""
    if not model.has_type(PlaceType.INTERCONNECT):
        raise ConfigError("dedicated_comm_paths requires an interconnect place")
    base = default_paths(model, comm_worker=comm_worker)
    inter = model.first_of_type(PlaceType.INTERCONNECT)
    pop = [list(p) for p in base.pop]
    steal = [list(p) for p in base.steal]
    pop[comm_worker] = [inter]
    steal[comm_worker] = [inter]
    return WorkerPaths(pop, steal)


def custom_paths(
    model: PlatformModel,
    pop_names: Sequence[Sequence[str]],
    steal_names: Sequence[Sequence[str]],
) -> WorkerPaths:
    """Build paths from place *names* (the JSON-facing spelling)."""
    pop = [[model.place(n) for n in wp] for wp in pop_names]
    steal = [[model.place(n) for n in wp] for wp in steal_names]
    wp = WorkerPaths(pop, steal)
    if wp.num_workers != model.num_workers:
        raise ConfigError(
            f"paths specify {wp.num_workers} workers but model has {model.num_workers}"
        )
    return wp


POLICIES: Dict[str, PathPolicy] = {
    "default": default_paths,
    "flat": flat_paths,
    "dedicated_comm": dedicated_comm_paths,
}


def make_paths(model: PlatformModel, policy: str = "default", **kwargs) -> WorkerPaths:
    try:
        fn = POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown path policy {policy!r}; known: {sorted(POLICIES)}"
        ) from None
    paths = fn(model, **kwargs)
    paths.validate(model)
    return paths
