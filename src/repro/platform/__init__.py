"""The HiPER platform model: places, the platform graph, hwloc-style
discovery, and pop/steal path policies (paper §II-A, §II-B3)."""

from repro.platform.hwloc import MACHINES, GpuSpec, MachineSpec, discover, machine
from repro.platform.model import PlatformModel
from repro.platform.paths import (
    POLICIES,
    WorkerPaths,
    custom_paths,
    dedicated_comm_paths,
    default_paths,
    flat_paths,
    make_paths,
)
from repro.platform.place import MEMORY_PLACE_TYPES, Place, PlaceType

__all__ = [
    "MACHINES",
    "GpuSpec",
    "MachineSpec",
    "discover",
    "machine",
    "PlatformModel",
    "POLICIES",
    "WorkerPaths",
    "custom_paths",
    "dedicated_comm_paths",
    "default_paths",
    "flat_paths",
    "make_paths",
    "MEMORY_PLACE_TYPES",
    "Place",
    "PlaceType",
]
