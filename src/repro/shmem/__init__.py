"""The HiPER OpenSHMEM module: symmetric heap, one-sided operations,
atomics, wait-until, collectives, and the novel ``shmem_async_when``
(paper §II-C2)."""

from repro.shmem.backend import CMP_OPS, ProcShmemBackend, ShmemBackend
from repro.shmem.heap import SignatureTable, SymArray, SymmetricHeap
from repro.shmem.module import ShmemModule, shmem_factory
from repro.shmem.shared import SharedArena, cleanup_segments, segment_name

__all__ = [
    "CMP_OPS",
    "ShmemBackend",
    "ProcShmemBackend",
    "SignatureTable",
    "SymArray",
    "SymmetricHeap",
    "SharedArena",
    "cleanup_segments",
    "segment_name",
    "ShmemModule",
    "shmem_factory",
]
