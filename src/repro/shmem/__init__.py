"""The HiPER OpenSHMEM module: symmetric heap, one-sided operations,
atomics, wait-until, collectives, and the novel ``shmem_async_when``
(paper §II-C2)."""

from repro.shmem.backend import CMP_OPS, ShmemBackend
from repro.shmem.heap import SymArray, SymmetricHeap
from repro.shmem.module import ShmemModule, shmem_factory

__all__ = [
    "CMP_OPS",
    "ShmemBackend",
    "SymArray",
    "SymmetricHeap",
    "ShmemModule",
    "shmem_factory",
]
