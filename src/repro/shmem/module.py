"""The HiPER OpenSHMEM module (paper §II-C2).

OpenSHMEM v1.3 makes no thread-safety guarantees; the paper's module funnels
SHMEM calls through tasks at the Interconnect place so multi-threaded
(multi-worker) ranks use the library safely. Supported API subset: symmetric
allocation, put/get, atomics, quiet/fence, wait-until, collectives — plus
the paper's novel ``shmem_async_when``, which predicates a task's execution
on a remote put into local symmetric memory instead of burning a thread in
``shmem_wait``.

Like the MPI module, every operation has a blocking spelling (plain-callable
tasks) and an ``_async``/future spelling (coroutine tasks, iterative SPMD
mains). ``direct=True`` skips the interconnect funneling: the single-threaded
process-per-core configuration of the paper's "Flat OpenSHMEM" baselines,
where direct library calls are safe.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.modules.base import HiperModule
from repro.mpi import collectives as coll
from repro.mpi.backend import MpiBackend
from repro.net.coalesce import CoalescePolicy
from repro.platform.place import PlaceType
from repro.runtime.future import Future, Promise, when_all
from repro.runtime.runtime import HiperRuntime
from repro.shmem.backend import (CMP_OPS, ProcShmemBackend, ShardShmemBackend,
                                 ShmemBackend)
from repro.shmem.heap import SignatureTable, SymArray, SymmetricHeap
from repro.util.errors import ModuleError, ShmemError


class ShmemModule(HiperModule):
    """Pluggable OpenSHMEM module."""

    name = "shmem"
    capabilities = frozenset({"communication", "one-sided", "atomics",
                              "collectives"})

    def __init__(self, ctx, *, direct: bool = False,
                 coalesce: Optional[CoalescePolicy] = None):
        super().__init__()
        self.ctx = ctx
        self.rank = ctx.rank
        self.nranks = ctx.nranks
        self.direct = direct
        #: Coalesce small puts/AMOs per destination PE (opt-in; pass a
        #: CoalescePolicy, or True for the defaults). Control-channel
        #: collectives stay per-message so barriers remain prompt.
        self.coalesce = CoalescePolicy() if coalesce is True else coalesce
        self.heap: Optional[SymmetricHeap] = None
        self.backend: Optional[ShmemBackend] = None
        self._ctl: Optional[MpiBackend] = None
        self.runtime: Optional[HiperRuntime] = None

    # ------------------------------------------------------------------
    def initialize(self, runtime: HiperRuntime) -> None:
        self.require_place_type(runtime, PlaceType.INTERCONNECT)
        owners = runtime.paths.workers_covering(runtime.interconnect)
        if not self.direct and len(owners) != 1:
            raise ModuleError(
                "OpenSHMEM module requires the Interconnect place on exactly "
                f"one worker's paths for funneled safety; found {len(owners)}"
            )
        self.runtime = runtime
        # One table per run: ranks in one process share the instance via the
        # run's shared dict; multiprocess ranks each get their own (symmetry
        # is then checked per-process, the real-SHMEM behaviour).
        sigs = self.ctx.shared.setdefault(
            "shmem-alloc-signatures", SignatureTable())
        peers = self.ctx.shared.setdefault("shmem-backends", {})
        self.heap = SymmetricHeap(self.rank, shared_signatures=sigs,
                                  arena=self.ctx.shared.get("shmem-arena"))
        # A process fabric (one OS process per rank) cannot signal remote
        # completion by reaching into the peer's backend object; its backend
        # subclass acks over the wire instead. A sharded DES fabric is mixed:
        # same-shard peers are in-process, cross-shard peers are not.
        if getattr(self.ctx.fabric, "process_spmd", False):
            backend_cls = ProcShmemBackend
        elif getattr(self.ctx.fabric, "shard_spmd", False):
            backend_cls = ShardShmemBackend
        else:
            backend_cls = ShmemBackend
        self.backend = backend_cls(self.ctx.mux, self.rank, self.heap, peers)
        if self.coalesce is not None:
            self.backend.enable_coalescing(self.coalesce)
        # Control channel for collectives (barrier/bcast/reduce algorithms).
        self._ctl = MpiBackend(self.ctx.mux, self.rank, channel="shmem-ctl")
        for api_name, fn in [
            ("shmem_malloc", self.malloc), ("shmem_free", self.free),
            ("shmem_put", self.put), ("shmem_get", self.get),
            ("shmem_quiet", self.quiet), ("shmem_wait_until", self.wait_until),
            ("shmem_async_when", self.async_when),
            ("shmem_barrier_all", self.barrier_all),
            ("shmem_broadcast", self.broadcast),
            ("shmem_int_fadd", self.atomic_fetch_add),
            ("shmem_int_finc", self.atomic_fetch_inc),
            ("shmem_int_cswap", self.atomic_compare_swap),
        ]:
            self.export(runtime, api_name, fn)
        self._initialized = True

    def finalize(self, runtime: HiperRuntime) -> None:
        if self.backend is not None and self.backend.outstanding_remote:
            raise ShmemError(
                f"PE {self.rank} finalized with "
                f"{self.backend.outstanding_remote} un-quieted remote operations"
            )

    # ------------------------------------------------------------------
    # symmetric heap
    # ------------------------------------------------------------------
    def malloc(self, shape, dtype=np.int64, fill: Any = 0) -> SymArray:
        return self._heap().allocate(shape, dtype=dtype, fill=fill)

    def free(self, sym: SymArray) -> None:
        self._heap().free(sym)

    @property
    def my_pe(self) -> int:
        return self.rank

    @property
    def n_pes(self) -> int:
        return self.nranks

    # ------------------------------------------------------------------
    # taskify plumbing (shared with the MPI module's pattern)
    # ------------------------------------------------------------------
    def _comm_task(self, op_factory: Callable[[], Future], what: str) -> Future:
        """Run ``op_factory`` at the Interconnect place; the returned future
        tracks the operation's completion. ``direct`` mode issues inline."""
        rt = self.runtime
        assert rt is not None
        rt.stats.count(self.name, what)
        if self.direct:
            return op_factory()

        def _gen():
            result = yield op_factory()
            return result

        fut = rt.spawn(
            _gen, place=rt.interconnect, module=self.name,
            name=f"shmem-{what}", return_future=True,
        )
        assert fut is not None
        return fut

    # ------------------------------------------------------------------
    # puts / gets
    # ------------------------------------------------------------------
    def put_async(self, target: SymArray, data: Any, pe: int,
                  offset: int = 0, *, nbytes: Optional[int] = None) -> Future:
        """Local-completion future for a put into PE ``pe``.

        The source buffer is snapshotted at call time (the communication task
        may run later), so callers may reuse it immediately. ``nbytes``
        overrides the wire size (workload scaling; see DESIGN.md §2).

        The snapshot comes from the backend's buffer pool and doubles as the
        wire payload (``copy=False``), so the module+backend path performs
        exactly one copy, not two.
        """
        b = self._backend()
        data = b.snapshot(data)
        return self._comm_task(
            lambda: b.put(target, data, pe, offset, nbytes=nbytes, copy=False),
            "put",
        )

    def put(self, target: SymArray, data: Any, pe: int, offset: int = 0,
            *, nbytes: Optional[int] = None) -> None:
        self.put_async(target, data, pe, offset, nbytes=nbytes).wait()

    def get_async(self, source: SymArray, pe: int, offset: int = 0,
                  count: Optional[int] = None) -> Future:
        b = self._backend()
        return self._comm_task(lambda: b.get(source, pe, offset, count), "get")

    def get(self, source: SymArray, pe: int, offset: int = 0,
            count: Optional[int] = None) -> np.ndarray:
        return self.get_async(source, pe, offset, count).wait()

    # ------------------------------------------------------------------
    # atomics
    # ------------------------------------------------------------------
    def atomic_fetch_add(self, target: SymArray, value: Any, pe: int,
                         index: int = 0) -> Any:
        return self.atomic_fetch_add_async(target, value, pe, index).wait()

    def atomic_fetch_add_async(self, target: SymArray, value: Any, pe: int,
                               index: int = 0) -> Future:
        b = self._backend()
        return self._comm_task(
            lambda: b.amo("add", target, index, pe, operand=value), "fadd"
        )

    def atomic_fetch_add_wave(self, target: SymArray, values: Sequence[Any],
                              pes: Sequence[int], index: int = 0) -> List[Future]:
        """Issue one fetch-add per ``(pes[i], values[i])`` pair — an
        all-to-all reservation wave — priced by the fabric in one vectorized
        pass when the path supports it (direct mode, no coalescing, no fault
        injection). Otherwise falls back to a loop of
        :meth:`atomic_fetch_add_async`; schedules are bit-identical either
        way, the wave only amortizes per-message Python overhead."""
        b = self._backend()
        if self.direct and b.wave_capable():
            rt = self.runtime
            assert rt is not None
            rt.stats.count(self.name, "fadd", len(pes))
            return b.amo_fetch_wave("add", target, index, list(pes),
                                    list(values))
        return [self.atomic_fetch_add_async(target, v, pe, index)
                for pe, v in zip(pes, values)]

    def atomic_fetch_inc(self, target: SymArray, pe: int, index: int = 0) -> Any:
        return self.atomic_fetch_inc_async(target, pe, index).wait()

    def atomic_fetch_inc_async(self, target: SymArray, pe: int,
                               index: int = 0) -> Future:
        b = self._backend()
        return self._comm_task(lambda: b.amo("inc", target, index, pe), "finc")

    def atomic_add_async(self, target: SymArray, value: Any, pe: int,
                         index: int = 0) -> Future:
        """Non-fetching add: local completion only, remote visible by quiet."""
        b = self._backend()
        return self._comm_task(
            lambda: b.amo("add", target, index, pe, operand=value, fetch=False),
            "add",
        )

    def atomic_compare_swap(self, target: SymArray, cond: Any, value: Any,
                            pe: int, index: int = 0) -> Any:
        return self.atomic_compare_swap_async(target, cond, value, pe, index).wait()

    def atomic_compare_swap_async(self, target: SymArray, cond: Any, value: Any,
                                  pe: int, index: int = 0) -> Future:
        b = self._backend()
        return self._comm_task(
            lambda: b.amo("cswap", target, index, pe, operand=value, cond=cond),
            "cswap",
        )

    def atomic_swap_async(self, target: SymArray, value: Any, pe: int,
                          index: int = 0) -> Future:
        b = self._backend()
        return self._comm_task(
            lambda: b.amo("swap", target, index, pe, operand=value), "swap"
        )

    # ------------------------------------------------------------------
    # ordering & synchronization
    # ------------------------------------------------------------------
    def quiet_async(self) -> Future:
        b = self._backend()
        return self._comm_task(lambda: b.quiet(), "quiet")

    def quiet(self) -> None:
        self.quiet_async().wait()

    def wait_until_async(self, sym: SymArray, cmp: str, value: Any,
                         index: int = 0) -> Future:
        """Future form of ``shmem_wait_until`` — no thread burned."""
        b = self._backend()
        self.runtime.stats.count(self.name, "wait_until")
        return b.watch(sym, index, cmp, value)

    def wait_until(self, sym: SymArray, cmp: str, value: Any, index: int = 0) -> None:
        """Spec-style blocking wait (plain-callable tasks only)."""
        self.wait_until_async(sym, cmp, value, index).wait()

    def async_when(self, sym: SymArray, cmp: str, value: Any,
                   body: Callable[[], Any], *, index: int = 0,
                   cost: float = 0.0, daemon: bool = False) -> Future:
        """The paper's novel API (§II-C2): make a task's execution predicated
        on a remote put/AMO satisfying ``sym[index] <cmp> value``; returns the
        task's completion future. Spelled ``shmem_async_when`` in the paper:

            shmem_async_when(mem_addr, wait_for_val, [=] { body; });

        ``daemon=True`` detaches the task from the caller's finish scope: use
        it for standing watchers (e.g. re-arming receive handlers) whose
        condition may never fire again — otherwise the enclosing scope would
        wait on them forever.
        """
        rt = self.runtime
        assert rt is not None
        cond = self.wait_until_async(sym, cmp, value, index)
        fut = rt.spawn(
            body, await_future=cond, module=self.name, name="shmem-async_when",
            cost=cost, return_future=True,
            scope=rt._poll_scope() if daemon else None,
        )
        rt.stats.count(self.name, "async_when")
        assert fut is not None
        return fut

    def local_store(self, sym: SymArray, index, value) -> None:
        """Store into local symmetric memory, waking watchers (the local-PE
        analogue of a remote put for wait_until/async_when purposes)."""
        self._backend().local_update(sym, index, value)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _coll_task(self, gen_factory: Callable[[], Any], what: str) -> Future:
        rt = self.runtime
        assert rt is not None
        place = rt.default_place() if self.direct else rt.interconnect
        fut = rt.spawn(
            gen_factory, place=place, module=self.name,
            name=f"shmem-{what}", return_future=True,
        )
        rt.stats.count(self.name, what)
        assert fut is not None
        return fut

    def barrier_all_async(self) -> Future:
        """Quiet, then dissemination barrier (spec: barrier implies quiet)."""
        c = self._ctl_backend()
        b = self._backend()
        tag = c.next_collective_tag()

        def _gen():
            yield b.quiet()
            yield from coll.barrier(c, tag)

        return self._coll_task(_gen, "barrier_all")

    def barrier_all(self) -> None:
        self.barrier_all_async().wait()

    def broadcast_async(self, value: Any, root: int = 0) -> Future:
        c = self._ctl_backend()
        tag = c.next_collective_tag()
        return self._coll_task(lambda: coll.bcast(c, value, root, tag), "broadcast")

    def broadcast(self, value: Any, root: int = 0) -> Any:
        return self.broadcast_async(value, root).wait()

    def fcollect_async(self, value: Any) -> Future:
        """Allgather (rank-indexed list of every PE's value)."""
        c = self._ctl_backend()
        tag = c.next_collective_tag()
        return self._coll_task(lambda: coll.allgather(c, value, tag), "fcollect")

    def fcollect(self, value: Any) -> List[Any]:
        return self.fcollect_async(value).wait()

    def reduce_async(self, value: Any, op: Callable[[Any, Any], Any]) -> Future:
        """to-all reduction (every PE gets the result)."""
        c = self._ctl_backend()
        tag = c.next_collective_tag()
        return self._coll_task(lambda: coll.allreduce(c, value, op, tag), "reduce")

    def sum_to_all(self, value: Any) -> Any:
        return self.reduce_async(value, lambda a, b: a + b).wait()

    def max_to_all(self, value: Any) -> Any:
        return self.reduce_async(value, lambda a, b: max(a, b)).wait()

    def alltoall_async(self, values: Sequence[Any]) -> Future:
        c = self._ctl_backend()
        tag = c.next_collective_tag()
        return self._coll_task(lambda: coll.alltoall(c, values, tag), "alltoall")

    def alltoall(self, values: Sequence[Any]) -> List[Any]:
        return self.alltoall_async(values).wait()

    # ------------------------------------------------------------------
    # distributed lock (spec §9.10; used by the UTS baselines)
    # ------------------------------------------------------------------
    def set_lock_async(self, lock: SymArray, index: int = 0,
                       home: int = 0) -> Future:
        """Acquire: spin on remote compare-and-swap with the lock's ``home``
        PE. Each probe is a round trip, so contention costs real virtual
        time — the mechanism behind the paper's UTS contention degradation
        (§III-C1)."""
        b = self._backend()

        def _gen():
            while True:
                old = yield b.amo("cswap", lock, index, home, operand=1, cond=0)
                if old == 0:
                    return None

        return self._coll_task(_gen, "set_lock")

    def set_lock(self, lock: SymArray, index: int = 0, home: int = 0) -> None:
        self.set_lock_async(lock, index, home).wait()

    def clear_lock_async(self, lock: SymArray, index: int = 0,
                         home: int = 0) -> Future:
        b = self._backend()

        def _gen():
            yield b.amo("swap", lock, index, home, operand=0)
            return None

        return self._coll_task(_gen, "clear_lock")

    def clear_lock(self, lock: SymArray, index: int = 0, home: int = 0) -> None:
        self.clear_lock_async(lock, index, home).wait()

    # ------------------------------------------------------------------
    def _heap(self) -> SymmetricHeap:
        if self.heap is None:
            raise ModuleError("SHMEM module used before initialization")
        return self.heap

    def _backend(self) -> ShmemBackend:
        if self.backend is None:
            raise ModuleError("SHMEM module used before initialization")
        return self.backend

    def _ctl_backend(self) -> MpiBackend:
        if self._ctl is None:
            raise ModuleError("SHMEM module used before initialization")
        return self._ctl


def shmem_factory(**kwargs) -> Callable[[Any], ShmemModule]:
    """Module factory for :func:`repro.distrib.spmd_run`."""
    return lambda ctx: ShmemModule(ctx, **kwargs)
