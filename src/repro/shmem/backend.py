"""One-sided (RDMA-style) operations over the fabric: the library layer the
OpenSHMEM module taskifies.

Remote puts, gets, and atomics are applied *in the delivery event* at the
target — no target-side task is scheduled, mirroring NIC-executed RDMA.
Atomicity of AMOs holds because the simulated executor runs events one at a
time.

Completion semantics follow the spec:

- ``put`` completes locally at injection (source buffer reusable); its
  *remote* completion is tracked for ``quiet``/``fence``.
- ``get`` and fetching AMOs are round trips (request + response messages).
- ``quiet`` completes when every previously-issued put/AMO from this PE has
  been applied at its target.

Local-memory watchers implement ``wait_until`` and the paper's novel
``shmem_async_when`` (§II-C2): every remote update to a symmetric array
re-evaluates the watchers registered against it, satisfying their promises
from event context — the condition "polling" the paper offloads to the
runtime collapses to event-driven checks in virtual time.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.net.coalesce import CoalescePolicy
from repro.net.mux import FabricMux
from repro.runtime.context import current_context
from repro.runtime.future import Future, Promise
from repro.shmem.heap import SymArray, SymmetricHeap
from repro.util.bufpool import BufferPool, release_if_pooled
from repro.util.errors import ShmemError

_CHANNEL = "shmem"

#: Comparison operators for wait_until / async_when (OpenSHMEM SHMEM_CMP_*).
CMP_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
}

_AMO_SIZE = 48     # wire size of an atomic op request
_CTRL_SIZE = 32    # wire size of a get request header


class ShmemBackend:
    """Per-PE one-sided engine. All PEs' backends see each other through the
    run's shared registry (in-process simulation of a PGAS fabric)."""

    def __init__(
        self,
        mux: FabricMux,
        rank: int,
        heap: SymmetricHeap,
        peers: Dict[int, "ShmemBackend"],
        *,
        stats=None,
    ):
        self.mux = mux
        self.rank = rank
        self.nranks = mux.nranks
        self.heap = heap
        #: Optional RuntimeStats for op-level accounting (defaults to the
        #: mux's attached stats, so SPMD runs get it automatically).
        self.stats = stats if stats is not None else mux.stats
        self._peers = peers
        peers[rank] = self
        self._req_seq = itertools.count()
        self._pending_resp: Dict[int, Promise] = {}
        # Outstanding remote completions (for quiet/fence).
        self._outstanding = 0
        self._quiet_waiters: List[Promise] = []
        # Local-memory watchers: sym_id -> list of (probe, promise).
        self._watchers: Dict[int, List[Tuple[Callable[[], bool], Promise]]] = {}
        # Guards _outstanding/_quiet_waiters/_watchers: on real backends the
        # delivery path runs on a different OS thread than the issue path.
        # The executor's pluggable lock keeps the sim hot path lock-free
        # (NullLock) while the threaded/multiprocess engines get real mutual
        # exclusion. Promises are always fired OUTSIDE the lock.
        self._lock = mux.fabric.executor.lock_class()
        self.puts = 0
        self.gets = 0
        self.amos = 0
        #: Recycles put-snapshot buffers (timing-neutral; wall-clock only).
        self.pool = BufferPool(stats=self.stats, module=_CHANNEL)
        mux.register_channel(_CHANNEL, self._on_delivery)

    def _count(self, op: str, n: int = 1) -> None:
        if self.stats is not None:
            self.stats.count(_CHANNEL, op, n)

    def enable_coalescing(self, policy: Optional[CoalescePolicy] = None) -> None:
        """Batch small puts/AMOs per destination PE into coalesced envelopes
        (see :mod:`repro.net.coalesce`). Opt-in: virtual-time schedules
        change. :meth:`quiet` flushes pending buffers, so ordering points
        behave exactly as without coalescing."""
        self.mux.enable_coalescing(_CHANNEL, policy)

    def snapshot(self, data: np.ndarray) -> np.ndarray:
        """Pool-backed copy of ``data`` for callers that snapshot a put
        payload themselves (then pass ``copy=False`` to :meth:`put`)."""
        return self.pool.take_copy(np.asarray(data))

    def enable_retries(self, policy) -> None:
        """Retransmit dropped/corrupted SHMEM messages per ``policy`` (a
        :class:`repro.resilience.RetryPolicy`). Safe under quiet/fence
        epochs: ``_outstanding`` only drains when a remote completion
        arrives, so a retried put still completes before quiet returns."""
        self.mux.set_retry_policy(_CHANNEL, policy)

    # ------------------------------------------------------------------
    # puts
    # ------------------------------------------------------------------
    def put(self, target: SymArray, data: Any, pe: int, offset: int = 0,
            *, nbytes: Optional[int] = None, copy: bool = True) -> Future:
        """Store ``data`` into PE ``pe``'s copy of ``target`` at ``offset``.

        Returns the *local completion* future (buffer reusable). Remote
        completion is observable via :meth:`quiet`. ``nbytes`` overrides the
        wire size (shape-preserving workload scaling, DESIGN.md §2).
        ``copy=False`` skips the send-side snapshot for callers that already
        own an immutable copy (e.g. one made via :meth:`snapshot`), avoiding
        a double copy on the module's async path.
        """
        self._check_pe(pe)
        if not isinstance(data, np.ndarray):
            # asarray would also strip a PooledArray snapshot down to a plain
            # ndarray view, losing its release() — convert only non-arrays.
            data = np.asarray(data)
        self._check_bounds(target, offset, data.size, pe)
        self.puts += 1
        self._count("puts")
        with self._lock:
            self._outstanding += 1
        done = Promise(name="shmem-put")
        wire_data = self.pool.take_copy(data) if copy else data
        payload = ("put", target.sym_id, offset, wire_data, self.rank)
        self._charge_cpu()
        wire = int(data.nbytes) if nbytes is None else int(nbytes)
        self.mux.transmit(
            pe, _CHANNEL, payload, wire + _CTRL_SIZE,
            on_injected=lambda t: done.put(None),
        )
        return done.get_future()

    # ------------------------------------------------------------------
    # gets
    # ------------------------------------------------------------------
    def get(self, source: SymArray, pe: int, offset: int = 0,
            count: Optional[int] = None) -> Future:
        """Fetch ``count`` elements of PE ``pe``'s copy of ``source``;
        future carries the numpy array."""
        self._check_pe(pe)
        n = source.size - offset if count is None else count
        self._check_bounds(source, offset, n, pe)
        self.gets += 1
        self._count("gets")
        req_id = next(self._req_seq)
        done = Promise(name=f"get-{source.sym_id}@{pe}")
        self._pending_resp[req_id] = done
        self._charge_cpu()
        self.mux.transmit(
            pe, _CHANNEL, ("get", source.sym_id, offset, n, self.rank, req_id),
            _CTRL_SIZE,
        )
        return done.get_future()

    # ------------------------------------------------------------------
    # atomics
    # ------------------------------------------------------------------
    def amo(self, op: str, target: SymArray, index: int, pe: int,
            operand: Any = None, cond: Any = None, fetch: bool = True) -> Future:
        """Atomic memory operation at PE ``pe``.

        ``op`` in {"add", "inc", "swap", "cswap", "set"}; fetching variants
        return the OLD value. Non-fetching ops return a local-completion
        future and count toward ``quiet``.
        """
        if op not in ("add", "inc", "swap", "cswap", "set"):
            raise ShmemError(f"unknown atomic op {op!r}")
        self._check_pe(pe)
        self._check_bounds(target, index, 1, pe)
        self.amos += 1
        self._count("amos")
        done = Promise(name=f"amo-{op}-{target.sym_id}@{pe}")
        self._charge_cpu()
        if fetch:
            req_id = next(self._req_seq)
            self._pending_resp[req_id] = done
            payload = ("amo", op, target.sym_id, index, operand, cond,
                       self.rank, req_id)
            self.mux.transmit(pe, _CHANNEL, payload, _AMO_SIZE)
        else:
            with self._lock:
                self._outstanding += 1
            payload = ("amo", op, target.sym_id, index, operand, cond,
                       self.rank, None)
            self.mux.transmit(
                pe, _CHANNEL, payload, _AMO_SIZE,
                on_injected=lambda t: done.put(None),
            )
        return done.get_future()

    def wave_capable(self) -> bool:
        """True when this PE's AMO/put path can take the vectorized wave
        route (no coalescer on the shmem channel, wave-pricing fabric, no
        fault injection)."""
        return self.mux.wave_capable(_CHANNEL)

    def amo_fetch_wave(self, op: str, target: SymArray, index: int,
                       pes: List[int], operands: List[Any]) -> List[Future]:
        """Issue one *fetching* AMO per ``(pes[i], operands[i])`` pair, priced
        as a single fabric wave.

        Bit-for-bit identical to the equivalent loop of :meth:`amo` calls
        with ``fetch=True`` — same per-op CPU charges (and therefore the
        same post-charge issue timestamps), request ids, promises, payloads,
        and delivery events in the same order. Callers must check
        :meth:`wave_capable` first and fall back to the scalar loop.
        """
        if op not in ("add", "inc", "swap", "cswap", "set"):
            raise ShmemError(f"unknown atomic op {op!r}")
        n = len(pes)
        if len(operands) != n:
            raise ShmemError(
                f"amo wave length mismatch: {n} PEs, {len(operands)} operands")
        for pe in pes:
            self._check_pe(pe)
            self._check_bounds(target, index, 1, pe)
        self.amos += n
        self._count("amos", n)
        ts = self._charge_cpu_wave(n)
        sym_id = target.sym_id
        rank = self.rank
        pending = self._pending_resp
        req_seq = self._req_seq
        futures: List[Future] = []
        payloads: List[Tuple] = []
        for pe, operand in zip(pes, operands):
            done = Promise(name=f"amo-{op}-{sym_id}@{pe}")
            req_id = next(req_seq)
            pending[req_id] = done
            payloads.append(("amo", op, sym_id, index, operand, None,
                             rank, req_id))
            futures.append(done.get_future())
        self.mux.transmit_wave(pes, _CHANNEL, payloads, _AMO_SIZE, ts=ts)
        return futures

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def quiet(self) -> Future:
        """Future satisfied when all previously-issued puts/AMOs from this PE
        have completed remotely."""
        # Ordering point: push any coalesced buffers onto the wire now rather
        # than waiting out their flush timeout. ``_outstanding`` was counted
        # at issue time, so quiet cannot return before buffered ops land.
        self.mux.flush(_CHANNEL)
        done = Promise(name=f"quiet-pe{self.rank}")
        with self._lock:
            ready = self._outstanding == 0
            if not ready:
                self._quiet_waiters.append(done)
        if ready:
            done.put(None)
        return done.get_future()

    @property
    def outstanding_remote(self) -> int:
        return self._outstanding

    # ------------------------------------------------------------------
    # local-memory watchers (wait_until / shmem_async_when)
    # ------------------------------------------------------------------
    def watch(self, sym: SymArray, index: int, cmp: str, value: Any) -> Future:
        """Future satisfied when ``sym[index] <cmp> value`` holds on this PE.

        Checked immediately, then re-checked after every remote update that
        touches ``sym``. Local stores by this PE's own tasks should go
        through :meth:`local_update` to trigger re-checks.
        """
        try:
            cmp_fn = CMP_OPS[cmp]
        except KeyError:
            raise ShmemError(
                f"unknown comparison {cmp!r}; expected one of {sorted(CMP_OPS)}"
            ) from None
        arr = self.heap.flat(sym.sym_id)
        if not (0 <= index < arr.size):
            raise ShmemError(f"watch index {index} out of bounds for {sym}")
        done = Promise(name=f"wait_until-{sym.sym_id}[{index}]")

        def probe() -> bool:
            return bool(cmp_fn(arr[index], value))

        # Probe + register atomically: a delivery that lands between an
        # unlocked probe and the append would never re-check this watcher
        # (missed wakeup). Holding the lock, either we see the write, or the
        # delivery's _check_watchers (serialized after us) sees our entry.
        with self._lock:
            fire = probe()
            if not fire:
                self._watchers.setdefault(sym.sym_id, []).append((probe, done))
        if fire:
            done.put(None)
        return done.get_future()

    def local_update(self, sym: SymArray, index, value) -> None:
        """Store into local symmetric memory and re-evaluate watchers."""
        arr = self.heap.resolve(sym.sym_id)
        arr[index] = value
        self._check_watchers(sym.sym_id)

    def _check_watchers(self, sym_id: int) -> None:
        fire = []
        with self._lock:
            watchers = self._watchers.get(sym_id)
            if not watchers:
                return
            still = []
            for probe, promise in watchers:
                if probe():
                    fire.append(promise)
                else:
                    still.append((probe, promise))
            if still:
                self._watchers[sym_id] = still
            else:
                self._watchers.pop(sym_id, None)
        for promise in fire:
            promise.put(None)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _on_delivery(self, src: int, payload: Tuple, time: float) -> None:
        kind = payload[0]
        if kind == "put":
            _, sym_id, offset, data, origin = payload
            arr = self.heap.flat(sym_id)
            arr[offset : offset + data.size] = (
                data if data.ndim == 1 else data.reshape(-1))
            release_if_pooled(data)  # applied; recycle the snapshot storage
            self._ack_completion(origin)
            self._check_watchers(sym_id)
        elif kind == "get":
            _, sym_id, offset, n, origin, req_id = payload
            arr = self.heap.flat(sym_id)
            data = arr[offset : offset + n].copy()
            self.mux.transmit(
                origin, _CHANNEL, ("resp", req_id, data),
                int(data.nbytes) + _CTRL_SIZE,
            )
        elif kind == "amo":
            _, op, sym_id, index, operand, cond, origin, req_id = payload
            arr = self.heap.flat(sym_id)
            old = arr[index].item()
            if op == "add":
                arr[index] = old + operand
            elif op == "inc":
                arr[index] = old + 1
            elif op == "swap" or op == "set":
                arr[index] = operand
            elif op == "cswap":
                if old == cond:
                    arr[index] = operand
            if req_id is not None:
                self.mux.transmit(origin, _CHANNEL, ("resp", req_id, old), _AMO_SIZE)
            else:
                self._ack_completion(origin)
            self._check_watchers(sym_id)
        elif kind == "resp":
            _, req_id, value = payload
            promise = self._pending_resp.pop(req_id)
            promise.put(value)
        elif kind == "comp":
            # Remote-completion acknowledgement from a target PE (real
            # multiprocess fabric; see ProcShmemBackend._ack_completion).
            self._remote_completed()
        else:  # pragma: no cover - protocol corruption
            raise ShmemError(f"unknown shmem wire message kind {kind!r}")

    def _ack_completion(self, origin: int) -> None:
        """Tell ``origin`` that its put/AMO has been applied here.

        In-process backends (sim, threads) reach straight into the origin's
        backend object; the multiprocess backend overrides this with a wire
        message because peers live in other OS processes.
        """
        self._peers[origin]._remote_completed()

    def _remote_completed(self) -> None:
        fire: List[Promise] = []
        with self._lock:
            self._outstanding -= 1
            if self._outstanding == 0 and self._quiet_waiters:
                fire, self._quiet_waiters = self._quiet_waiters, []
        for p in fire:
            p.put(None)

    # ------------------------------------------------------------------
    def _check_pe(self, pe: int) -> None:
        if not (0 <= pe < self.nranks):
            raise ShmemError(f"PE {pe} out of range [0, {self.nranks})")

    def _check_bounds(self, sym: SymArray, offset: int, count: int, pe: int) -> None:
        if offset < 0 or count < 0 or offset + count > sym.size:
            raise ShmemError(
                f"range [{offset}, {offset + count}) out of bounds for "
                f"{sym} targeting PE {pe}"
            )

    def _charge_cpu(self) -> None:
        ctx = current_context()
        if ctx is not None and ctx.worker is not None:
            ctx.executor.charge(self.mux.fabric.cpu_send_overhead())

    def _charge_cpu_wave(self, n: int) -> List[float]:
        """Charge ``n`` per-message CPU overheads and return the ``n``
        post-charge clock values — the issue timestamps a loop of
        :meth:`_charge_cpu` + transmit pairs would have produced. The clock
        advances by the same left-fold of additions the scalar loop
        performs, so the timestamps (and the final clock) are bit-exact.
        Outside a worker context charges are skipped, as in
        :meth:`_charge_cpu`, and ``now()`` is returned for every slot."""
        ctx = current_context()
        if ctx is None or ctx.worker is None:
            return [self.mux.fabric.executor.now()] * n
        ov = self.mux.fabric.cpu_send_overhead()
        worker = ctx.worker
        runtime = ctx.runtime
        stats = runtime.stats if runtime is not None else None
        clock = worker.clock
        ts: List[float] = []
        append = ts.append
        for _ in range(n):
            clock = clock + ov
            append(clock)
            if stats is not None:
                stats.worker_activity(worker.wid, busy=ov)
        worker.clock = clock
        return ts

    def __repr__(self) -> str:
        return (
            f"ShmemBackend(pe={self.rank}/{self.nranks}, puts={self.puts}, "
            f"gets={self.gets}, amos={self.amos}, outstanding={self._outstanding})"
        )


class ProcShmemBackend(ShmemBackend):
    """SHMEM backend over a real multiprocess fabric (one process per PE).

    Identical protocol, except remote completions cannot be signalled by
    calling into the origin's backend object — peers live in other OS
    processes — so the target sends a small ``("comp",)`` acknowledgement
    back over the fabric. ``quiet`` therefore drains only once every ack has
    arrived, which is exactly the OpenSHMEM remote-completion contract.
    """

    def _ack_completion(self, origin: int) -> None:
        if origin == self.rank:
            self._remote_completed()
            return
        self.mux.transmit(origin, _CHANNEL, ("comp",), _CTRL_SIZE)


class ShardShmemBackend(ShmemBackend):
    """SHMEM backend for the sharded DES engine: a hybrid of the two above.

    PEs in the same shard share a process and registry, so completions for
    them are signalled directly like :class:`ShmemBackend`; PEs in other
    shards are reachable only over the fabric, so those acks travel as
    ``("comp",)`` wire messages like :class:`ProcShmemBackend` — and are
    therefore priced by the cost model, which keeps them outside the
    conservative window's lookahead bound.
    """

    def _ack_completion(self, origin: int) -> None:
        peer = self._peers.get(origin)
        if peer is not None:
            peer._remote_completed()
            return
        self.mux.transmit(origin, _CHANNEL, ("comp",), _CTRL_SIZE)
