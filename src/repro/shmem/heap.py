"""The symmetric heap: remotely-accessible memory with identical layout on
every PE (processing element), as required by the OpenSHMEM specification.

Allocation is a collective: every PE must call ``allocate`` in the same order
with the same shape/dtype. Each allocation yields a :class:`SymArray` whose
``sym_id`` is the cross-PE address — remote operations name
``(sym_id, offset)`` instead of raw pointers. The harness's shared-state dict
verifies symmetry across ranks and fails fast on divergence (a bug class that
silently corrupts data in real SHMEM programs).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.util.errors import ShmemError


class SymArray:
    """Handle to one symmetric allocation on the *local* PE."""

    __slots__ = ("sym_id", "arr")

    def __init__(self, sym_id: int, arr: np.ndarray):
        self.sym_id = sym_id
        self.arr = arr

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.arr.shape

    @property
    def dtype(self) -> np.dtype:
        return self.arr.dtype

    @property
    def size(self) -> int:
        return int(self.arr.size)

    def __getitem__(self, idx):
        return self.arr[idx]

    def __setitem__(self, idx, value):
        self.arr[idx] = value

    def __repr__(self) -> str:
        return f"SymArray(id={self.sym_id}, shape={self.arr.shape}, dtype={self.arr.dtype})"


class SymmetricHeap:
    """Per-PE symmetric heap with cross-PE symmetry verification."""

    def __init__(self, rank: int, shared_signatures: Optional[Dict] = None):
        self.rank = rank
        self._arrays: Dict[int, np.ndarray] = {}
        # Cached flattened views (zero-copy: symmetric arrays are contiguous,
        # so reshape(-1) aliases the same storage). The delivery hot path
        # resolves (sym_id -> flat view) once per allocation, not per message.
        self._flat: Dict[int, np.ndarray] = {}
        self._next_id = 0
        # Shared across all ranks of a run (same dict object): sym_id ->
        # (shape, dtype-str) of the first allocator, for symmetry checks.
        self._signatures = shared_signatures if shared_signatures is not None else {}

    def allocate(self, shape, dtype=np.int64, fill: Any = 0) -> SymArray:
        """Collective symmetric allocation (call in the same order on all PEs)."""
        arr = np.full(shape, fill, dtype=dtype)
        sym_id = self._next_id
        self._next_id += 1
        sig = (arr.shape, str(arr.dtype))
        existing = self._signatures.get(sym_id)
        if existing is None:
            self._signatures[sym_id] = sig
        elif existing != sig:
            raise ShmemError(
                f"asymmetric allocation: PE {self.rank} allocated sym_id "
                f"{sym_id} as {sig} but another PE allocated {existing}; "
                "shmem allocations must be collective and identical"
            )
        self._arrays[sym_id] = arr
        return SymArray(sym_id, arr)

    def free(self, sym: SymArray) -> None:
        if sym.sym_id not in self._arrays:
            raise ShmemError(f"double free of sym_id {sym.sym_id} on PE {self.rank}")
        del self._arrays[sym.sym_id]
        self._flat.pop(sym.sym_id, None)

    def resolve(self, sym_id: int) -> np.ndarray:
        try:
            return self._arrays[sym_id]
        except KeyError:
            raise ShmemError(
                f"PE {self.rank}: no symmetric allocation with id {sym_id} "
                "(freed, or allocation order diverged across PEs)"
            ) from None

    def flat(self, sym_id: int) -> np.ndarray:
        """Cached zero-copy 1-D view of the allocation (the remote-op fast
        path: puts/gets/AMOs address flat offsets)."""
        view = self._flat.get(sym_id)
        if view is None:
            view = self._flat[sym_id] = self.resolve(sym_id).reshape(-1)
        return view

    def __len__(self) -> int:
        return len(self._arrays)

    def __repr__(self) -> str:
        return f"SymmetricHeap(rank={self.rank}, live={len(self._arrays)})"
