"""The symmetric heap: remotely-accessible memory with identical layout on
every PE (processing element), as required by the OpenSHMEM specification.

Allocation is a collective: every PE must call ``allocate`` in the same order
with the same shape/dtype. Each allocation yields a :class:`SymArray` whose
``sym_id`` is the cross-PE address — remote operations name
``(sym_id, offset)`` instead of raw pointers. The harness's shared-state dict
verifies symmetry across ranks and fails fast on divergence (a bug class that
silently corrupts data in real SHMEM programs).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.util.errors import ShmemError


class SignatureTable:
    """Cross-PE allocation-signature registry with atomic check-then-act.

    One instance is shared by every rank of a run. ``register`` compares the
    caller's ``(shape, dtype)`` against the first allocator's under a lock —
    two PEs allocating the same ``sym_id`` concurrently can no longer both
    observe "no signature yet" and skip the symmetry check. Signatures are
    refcounted: ``retire`` (called by :meth:`SymmetricHeap.free`) drops the
    entry once every registered PE has freed, so a stale signature cannot
    false-pass (or false-fail) a later allocation that reuses the id.
    """

    def __init__(self, storage: Optional[Dict] = None):
        #: sym_id -> (shape, dtype-str) of the first allocator. Accepting
        #: caller-provided storage keeps the legacy shared-dict plumbing
        #: (and its tests) working; all access goes through the lock here.
        self._sigs: Dict[int, Tuple] = storage if storage is not None else {}
        self._refs: Dict[int, int] = {}
        self._lock = threading.Lock()

    def register(self, sym_id: int, sig: Tuple, rank: int) -> None:
        with self._lock:
            existing = self._sigs.get(sym_id)
            if existing is None:
                self._sigs[sym_id] = sig
                self._refs[sym_id] = 1
            elif existing != sig:
                raise ShmemError(
                    f"asymmetric allocation: PE {rank} allocated sym_id "
                    f"{sym_id} as {sig} but another PE allocated {existing}; "
                    "shmem allocations must be collective and identical"
                )
            else:
                self._refs[sym_id] = self._refs.get(sym_id, 0) + 1

    def retire(self, sym_id: int) -> None:
        """One PE freed its allocation; drop the signature when the last
        registrant retires so the id can be reused with a new shape."""
        with self._lock:
            n = self._refs.get(sym_id)
            if n is None:
                # Pre-registered entries (legacy dict storage) carry no
                # refcount; retire them outright.
                self._sigs.pop(sym_id, None)
                return
            if n <= 1:
                del self._refs[sym_id]
                self._sigs.pop(sym_id, None)
            else:
                self._refs[sym_id] = n - 1

    def __contains__(self, sym_id: int) -> bool:
        with self._lock:
            return sym_id in self._sigs

    def __len__(self) -> int:
        with self._lock:
            return len(self._sigs)


class SymArray:
    """Handle to one symmetric allocation on the *local* PE."""

    __slots__ = ("sym_id", "arr")

    def __init__(self, sym_id: int, arr: np.ndarray):
        self.sym_id = sym_id
        self.arr = arr

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.arr.shape

    @property
    def dtype(self) -> np.dtype:
        return self.arr.dtype

    @property
    def size(self) -> int:
        return int(self.arr.size)

    def __getitem__(self, idx):
        return self.arr[idx]

    def __setitem__(self, idx, value):
        self.arr[idx] = value

    def __repr__(self) -> str:
        return f"SymArray(id={self.sym_id}, shape={self.arr.shape}, dtype={self.arr.dtype})"


class SymmetricHeap:
    """Per-PE symmetric heap with cross-PE symmetry verification.

    ``shared_signatures`` may be a :class:`SignatureTable` (preferred: one
    table shared by every rank, with one lock) or a plain dict for legacy
    callers — a dict is wrapped in a per-heap table over the shared storage.
    ``arena`` optionally backs allocations with externally-managed storage
    (the multiprocess backend passes a shared-memory arena so symmetric
    arrays live in a ``multiprocessing.shared_memory`` segment).
    """

    def __init__(self, rank: int, shared_signatures=None, *, arena=None):
        self.rank = rank
        self._arrays: Dict[int, np.ndarray] = {}
        # Cached flattened views (zero-copy: symmetric arrays are contiguous,
        # so reshape(-1) aliases the same storage). The delivery hot path
        # resolves (sym_id -> flat view) once per allocation, not per message.
        self._flat: Dict[int, np.ndarray] = {}
        self._next_id = 0
        self._arena = arena
        if isinstance(shared_signatures, SignatureTable):
            self._signatures = shared_signatures
        else:
            self._signatures = SignatureTable(storage=shared_signatures)

    def allocate(self, shape, dtype=np.int64, fill: Any = 0) -> SymArray:
        """Collective symmetric allocation (call in the same order on all PEs)."""
        if self._arena is not None:
            proto = np.empty(shape, dtype=dtype)
            arr = self._arena.allocate(proto.size * proto.itemsize,
                                       dtype=proto.dtype).reshape(proto.shape)
            arr[...] = fill
        else:
            arr = np.full(shape, fill, dtype=dtype)
        sym_id = self._next_id
        self._next_id += 1
        sig = (arr.shape, str(arr.dtype))
        self._signatures.register(sym_id, sig, self.rank)
        self._arrays[sym_id] = arr
        return SymArray(sym_id, arr)

    def free(self, sym: SymArray) -> None:
        if sym.sym_id not in self._arrays:
            raise ShmemError(f"double free of sym_id {sym.sym_id} on PE {self.rank}")
        del self._arrays[sym.sym_id]
        self._flat.pop(sym.sym_id, None)
        self._signatures.retire(sym.sym_id)

    def resolve(self, sym_id: int) -> np.ndarray:
        try:
            return self._arrays[sym_id]
        except KeyError:
            raise ShmemError(
                f"PE {self.rank}: no symmetric allocation with id {sym_id} "
                "(freed, or allocation order diverged across PEs)"
            ) from None

    def flat(self, sym_id: int) -> np.ndarray:
        """Cached zero-copy 1-D view of the allocation (the remote-op fast
        path: puts/gets/AMOs address flat offsets)."""
        view = self._flat.get(sym_id)
        if view is None:
            view = self._flat[sym_id] = self.resolve(sym_id).reshape(-1)
        return view

    def __len__(self) -> int:
        return len(self._arrays)

    def __repr__(self) -> str:
        return f"SymmetricHeap(rank={self.rank}, live={len(self._arrays)})"
