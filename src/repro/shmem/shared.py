"""Shared-memory arena backing the symmetric heap on the multiprocess
backend.

Each rank's symmetric allocations become numpy views into one
``multiprocessing.shared_memory`` segment (``/dev/shm/repro-<run>-r<rank>``
on Linux), matching how real OpenSHMEM implementations carve the symmetric
heap out of a registered region. A bump allocator is enough: SHMEM programs
allocate their windows up front and ``shmem_free`` is rare — freed blocks
are simply not recycled (the segment is unlinked wholesale at shutdown).

Lifecycle discipline mirrors the executor's leaked-thread checks: the owner
must ``destroy()`` (close + unlink) its segment, and the parent process
sweeps ``leaked_segments``/``cleanup_segments`` after a run so a crashed
child cannot strand ``/dev/shm`` entries.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Optional

import numpy as np

from repro.util.errors import ShmemError

#: Prefix of every segment this package creates (leak sweeps key on it).
SEGMENT_PREFIX = "repro-shm"

#: Views are aligned to this many bytes (covers every numpy scalar dtype).
_ALIGN = 64


def segment_name(run_id: str, rank: int) -> str:
    return f"{SEGMENT_PREFIX}-{run_id}-r{rank}"


class SharedArena:
    """Bump allocator over one shared-memory segment."""

    def __init__(self, name: str, nbytes: int, *, create: bool = True):
        if nbytes < _ALIGN:
            raise ShmemError(f"arena size {nbytes} too small (min {_ALIGN})")
        self.name = name
        self.nbytes = int(nbytes)
        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=self.nbytes)
        self._offset = 0
        self._closed = False

    def allocate(self, nbytes: int, dtype=np.uint8) -> np.ndarray:
        """A 1-D view of ``nbytes`` fresh bytes of the segment (caller
        reshapes). Raises when the arena is exhausted — size the heap via
        the job's ``heap_bytes`` instead of spilling to private memory,
        which would silently lose the shared-segment property."""
        if self._closed:
            raise ShmemError(f"arena {self.name} used after close")
        start = self._offset
        end = start + int(nbytes)
        if end > self.nbytes:
            raise ShmemError(
                f"symmetric heap exhausted: arena {self.name} has "
                f"{self.nbytes - start} bytes free, allocation wants "
                f"{nbytes}; raise heap_bytes on the job/executor"
            )
        # Bump to the next aligned offset for the allocation after this one.
        self._offset = (end + _ALIGN - 1) & ~(_ALIGN - 1)
        dt = np.dtype(dtype)
        count = int(nbytes) // dt.itemsize
        return np.frombuffer(self._shm.buf, dtype=dt, count=count,
                             offset=start)

    @property
    def used(self) -> int:
        return self._offset

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # Live numpy views pin the mapping; the unlink below still
            # removes the name, and the mapping dies with the process.
            # Detach the mmap/fd from the SharedMemory object so its
            # __del__ doesn't retry the close at interpreter shutdown and
            # spew "Exception ignored" noise (fork children skip GC via
            # os._exit, but spawn/subprocess children shut down fully).
            import os

            self._shm._mmap = None  # type: ignore[attr-defined]
            fd = getattr(self._shm, "_fd", -1)
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
                self._shm._fd = -1  # type: ignore[attr-defined]

    def unlink(self) -> None:
        """Remove the named segment (owner-side; idempotent)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:
        return (f"SharedArena({self.name}, used={self._offset}/"
                f"{self.nbytes})")


def leaked_segments(run_id: Optional[str] = None) -> List[str]:
    """Names of live segments from this package (optionally one run only).

    Linux-specific sweep over ``/dev/shm``; returns ``[]`` elsewhere — the
    lifecycle tests that assert emptiness only run where it works.
    """
    import os

    want = SEGMENT_PREFIX if run_id is None else segment_name(run_id, 0)[:-3]
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(want))


def cleanup_segments(run_id: str, nranks: int) -> List[str]:
    """Force-unlink any segments a crashed/killed child left behind.

    Returns the names that were actually removed (normally empty)."""
    removed = []
    for rank in range(nranks):
        name = segment_name(run_id, rank)
        try:
            seg = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            continue
        seg.close()
        try:
            seg.unlink()
            removed.append(name)
        except FileNotFoundError:
            pass
    return removed
