"""Tasks: suspendable single-threaded streams of execution (paper §II-B1).

A task wraps a Python callable. If the callable returns a *generator*, the
task is a *coroutine task*: the worker drives it with ``send`` and the task
may suspend by yielding a :class:`~repro.runtime.future.Future` (the value
sent back on resume is the future's value). Yielding ``None`` is a
cooperative re-schedule. This is the reproduction's substitute for the
paper's Boost.Context call-stack swapping: a coroutine task that blocks
releases its worker entirely.

Plain callables may still block (``future.wait()``, ``finish``); the executor
then keeps the worker useful via help-until-ready (see ``Executor.block_until``).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

from repro.runtime.future import Future, Promise
from repro.util.errors import RuntimeStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.place import Place
    from repro.runtime.finish import FinishScope

_task_ids = itertools.count()


class TaskState(enum.Enum):
    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    SUSPENDED = "suspended"
    DONE = "done"
    FAILED = "failed"


class Task:
    """One schedulable unit.

    Attributes
    ----------
    place:
        The place whose deques hold this task while ready.
    created_by:
        Worker index whose deque slot the task occupies (paper §II-B2: the
        i-th deque at a place holds tasks spawned by worker i).
    scope:
        Enclosing :class:`FinishScope`, charged at spawn and discharged at
        completion (including transitive failure propagation).
    cost:
        Simulated compute seconds charged when the task body runs (on top of
        any explicit ``charge()`` calls inside the body). Ignored by the
        threaded executor.
    result_promise:
        Set for ``async_future``-style tasks; satisfied with the body's
        return value (or its exception) at completion.
    release_time:
        Virtual time at which the task became ready (set on enqueue); a
        worker popping it advances its clock to at least this time.
    """

    __slots__ = (
        "task_id", "fn", "args", "kwargs", "_name", "module", "place",
        "created_by", "scope", "cost", "result_promise", "state", "gen",
        "_send_value", "_send_exc", "release_time", "rank", "active_scope",
        "attempts", "epilogue", "slab_slot", "slab_gen",
    )

    def __init__(
        self,
        fn: Callable[..., Any],
        args: Tuple = (),
        kwargs: Optional[dict] = None,
        name: str = "",
        module: str = "core",
        place: Optional["Place"] = None,
        created_by: int = 0,
        scope: Optional["FinishScope"] = None,
        cost: float = 0.0,
        result_promise: Optional[Promise] = None,
        rank: int = 0,
    ):
        if not callable(fn):
            raise TypeError(f"task body must be callable, got {type(fn)!r}")
        if cost < 0:
            raise ValueError(f"task cost must be non-negative, got {cost}")
        self.task_id = next(_task_ids)
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self._name = name  # resolved lazily from fn when empty (hot path)
        self.module = module
        self.place = place
        self.created_by = created_by
        self.scope = scope
        self.cost = cost
        self.result_promise = result_promise
        self.state = TaskState.CREATED
        self.gen = None  # generator, once started, for coroutine tasks
        self._send_value: Any = None
        self._send_exc: Optional[BaseException] = None
        self.release_time: float = 0.0
        self.rank = rank
        #: Innermost open finish scope while this task executes; ``finish``
        #: and ``begin_finish``/``end_finish`` push/pop it. Spawns performed
        #: by this task register with this scope.
        self.active_scope = scope
        #: Execution attempts so far; > 0 marks a task replayed after a
        #: place/worker failure (resilience subsystem).
        self.attempts = 0
        #: Optional ``(task, exc_or_None)`` callback invoked after the scope
        #: is discharged — resilience telemetry, never failure routing.
        self.epilogue = None
        #: Slab bookkeeping (``TaskSlab``): -1 == not slab-managed. The
        #: generation counts tenancies of the slot, so a handle captured for
        #: one tenancy can never resolve to a recycled record.
        self.slab_slot = -1
        self.slab_gen = 0

    @property
    def name(self) -> str:
        """Task name for diagnostics/tracing; derived from the body's
        ``__name__`` on first read so unnamed hot-path spawns never pay the
        getattr."""
        n = self._name
        if not n:
            n = getattr(self.fn, "__name__", "task")
            self._name = n
        return n

    # -- coroutine plumbing (used by executors) -------------------------
    def start_body(self) -> Any:
        """Invoke the body. Returns the body's value, or the generator if the
        body is a coroutine (caller must then drive it via :meth:`step`)."""
        self.state = TaskState.RUNNING
        if self.kwargs:
            return self.fn(*self.args, **self.kwargs)
        return self.fn(*self.args)

    def step(self) -> Tuple[bool, Any]:
        """Advance a coroutine task one hop.

        Returns ``(finished, payload)``: if finished, payload is the return
        value; otherwise payload is the yielded object (a Future or ``None``).
        """
        if self.gen is None:
            raise RuntimeStateError(f"task {self.name} is not a coroutine task")
        self.state = TaskState.RUNNING
        try:
            if self._send_exc is not None:
                exc, self._send_exc = self._send_exc, None
                yielded = self.gen.throw(exc)
            else:
                value, self._send_value = self._send_value, None
                yielded = self.gen.send(value)
        except StopIteration as stop:
            return True, stop.value
        return False, yielded

    def prepare_resume(self, fut: Future) -> None:
        """Capture the satisfied future's value/exception for the next step."""
        try:
            self._send_value = fut.value()
        except BaseException as exc:
            self._send_exc = exc

    def describe(self) -> str:
        where = self.place.name if self.place is not None else "?"
        return f"task#{self.task_id} {self.name!r} [{self.module}] at {where} (rank {self.rank})"

    def __repr__(self) -> str:
        return f"<{self.describe()} {self.state.value}>"


class TaskSlab:
    """Recycling pool of :class:`Task` records (the BufferPool idiom applied
    to tasks; flat-engine counterpart of the event slab in
    ``repro.exec.eventq``).

    The deterministic simulator churns through one short-lived ``Task``
    object per spawn; at paper-scale rank counts the allocator traffic is a
    measurable slice of the dispatch hot path. The slab keeps every record
    it ever created in ``_records`` (indexed by the record's permanent
    ``slab_slot``) and reuses completed ones: :meth:`acquire` re-initializes
    a pooled record in place — with a *fresh* ``task_id``, so traces,
    digests, and diagnostics are indistinguishable from freshly-constructed
    tasks — and bumps its ``slab_gen`` tenancy counter.

    Release discipline (enforced by the caller, ``SimExecutor._run_task``):
    only DONE/FAILED tasks whose execution just returned may be released —
    suspended coroutines, re-enqueued tasks, and tasks failed outside the
    run path are still referenced elsewhere and simply fall out of the
    slab's working set (their slots are never pooled).

    :meth:`get` resolves a generation-tagged handle
    (``(slab_gen << 32) | slab_slot``) to the record iff the tenancy that
    produced the handle is still live — a recycled or stale handle returns
    None instead of aliasing an unrelated task.
    """

    __slots__ = ("_records", "_free", "acquired", "recycled", "released")

    def __init__(self) -> None:
        self._records: list = []
        self._free: list = []
        self.acquired = 0
        self.recycled = 0
        self.released = 0

    def acquire(
        self,
        fn: Callable[..., Any],
        args: Tuple = (),
        kwargs: Optional[dict] = None,
        name: str = "",
        module: str = "core",
        place: Optional["Place"] = None,
        created_by: int = 0,
        scope: Optional["FinishScope"] = None,
        cost: float = 0.0,
        result_promise: Optional[Promise] = None,
        rank: int = 0,
    ) -> Task:
        """A ready-to-enqueue Task record, pooled if one is free."""
        self.acquired += 1
        free = self._free
        if not free:
            t = Task(fn, args, kwargs, name, module, place, created_by,
                     scope, cost, result_promise, rank)
            t.slab_slot = len(self._records)
            self._records.append(t)
            return t
        t = self._records[free.pop()]
        self.recycled += 1
        t.slab_gen += 1
        # Field-for-field mirror of Task.__init__ (kept inline: a shared
        # re-init helper would put an extra call on the spawn hot path).
        if not callable(fn):
            raise TypeError(f"task body must be callable, got {type(fn)!r}")
        if cost < 0:
            raise ValueError(f"task cost must be non-negative, got {cost}")
        t.task_id = next(_task_ids)
        t.fn = fn
        t.args = args
        t.kwargs = kwargs
        t._name = name
        t.module = module
        t.place = place
        t.created_by = created_by
        t.scope = scope
        t.cost = cost
        t.result_promise = result_promise
        t.state = TaskState.CREATED
        t.gen = None
        t._send_value = None
        t._send_exc = None
        t.release_time = 0.0
        t.rank = rank
        t.active_scope = scope
        t.attempts = 0
        t.epilogue = None
        return t

    def release(self, task: Task) -> None:
        """Return a finished record to the pool and drop its references."""
        if task.slab_slot < 0 or task.fn is None:
            # Not slab-managed, or already released (fn is never None on a
            # live record — Task.__init__/acquire validate it's callable).
            return
        self.released += 1
        task.fn = None
        task.args = ()
        task.kwargs = None
        task.gen = None
        task.scope = None
        task.active_scope = None
        task.result_promise = None
        task.epilogue = None
        task.place = None
        task._send_value = None
        task._send_exc = None
        self._free.append(task.slab_slot)

    def get(self, handle: int) -> Optional[Task]:
        """Resolve a generation-tagged handle; None if stale or released."""
        slot = handle & 0xFFFFFFFF
        records = self._records
        if not 0 <= slot < len(records):
            return None
        t = records[slot]
        if t.slab_gen != (handle >> 32) or t.fn is None:
            return None
        return t

    @staticmethod
    def handle_of(task: Task) -> int:
        """The generation-tagged handle for a slab-managed record."""
        return (task.slab_gen << 32) | task.slab_slot

    def __len__(self) -> int:
        return len(self._records)
