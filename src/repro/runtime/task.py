"""Tasks: suspendable single-threaded streams of execution (paper §II-B1).

A task wraps a Python callable. If the callable returns a *generator*, the
task is a *coroutine task*: the worker drives it with ``send`` and the task
may suspend by yielding a :class:`~repro.runtime.future.Future` (the value
sent back on resume is the future's value). Yielding ``None`` is a
cooperative re-schedule. This is the reproduction's substitute for the
paper's Boost.Context call-stack swapping: a coroutine task that blocks
releases its worker entirely.

Plain callables may still block (``future.wait()``, ``finish``); the executor
then keeps the worker useful via help-until-ready (see ``Executor.block_until``).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

from repro.runtime.future import Future, Promise
from repro.util.errors import RuntimeStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.place import Place
    from repro.runtime.finish import FinishScope

_task_ids = itertools.count()


class TaskState(enum.Enum):
    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    SUSPENDED = "suspended"
    DONE = "done"
    FAILED = "failed"


class Task:
    """One schedulable unit.

    Attributes
    ----------
    place:
        The place whose deques hold this task while ready.
    created_by:
        Worker index whose deque slot the task occupies (paper §II-B2: the
        i-th deque at a place holds tasks spawned by worker i).
    scope:
        Enclosing :class:`FinishScope`, charged at spawn and discharged at
        completion (including transitive failure propagation).
    cost:
        Simulated compute seconds charged when the task body runs (on top of
        any explicit ``charge()`` calls inside the body). Ignored by the
        threaded executor.
    result_promise:
        Set for ``async_future``-style tasks; satisfied with the body's
        return value (or its exception) at completion.
    release_time:
        Virtual time at which the task became ready (set on enqueue); a
        worker popping it advances its clock to at least this time.
    """

    __slots__ = (
        "task_id", "fn", "args", "kwargs", "_name", "module", "place",
        "created_by", "scope", "cost", "result_promise", "state", "gen",
        "_send_value", "_send_exc", "release_time", "rank", "active_scope",
        "attempts", "epilogue",
    )

    def __init__(
        self,
        fn: Callable[..., Any],
        args: Tuple = (),
        kwargs: Optional[dict] = None,
        name: str = "",
        module: str = "core",
        place: Optional["Place"] = None,
        created_by: int = 0,
        scope: Optional["FinishScope"] = None,
        cost: float = 0.0,
        result_promise: Optional[Promise] = None,
        rank: int = 0,
    ):
        if not callable(fn):
            raise TypeError(f"task body must be callable, got {type(fn)!r}")
        if cost < 0:
            raise ValueError(f"task cost must be non-negative, got {cost}")
        self.task_id = next(_task_ids)
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self._name = name  # resolved lazily from fn when empty (hot path)
        self.module = module
        self.place = place
        self.created_by = created_by
        self.scope = scope
        self.cost = cost
        self.result_promise = result_promise
        self.state = TaskState.CREATED
        self.gen = None  # generator, once started, for coroutine tasks
        self._send_value: Any = None
        self._send_exc: Optional[BaseException] = None
        self.release_time: float = 0.0
        self.rank = rank
        #: Innermost open finish scope while this task executes; ``finish``
        #: and ``begin_finish``/``end_finish`` push/pop it. Spawns performed
        #: by this task register with this scope.
        self.active_scope = scope
        #: Execution attempts so far; > 0 marks a task replayed after a
        #: place/worker failure (resilience subsystem).
        self.attempts = 0
        #: Optional ``(task, exc_or_None)`` callback invoked after the scope
        #: is discharged — resilience telemetry, never failure routing.
        self.epilogue = None

    @property
    def name(self) -> str:
        """Task name for diagnostics/tracing; derived from the body's
        ``__name__`` on first read so unnamed hot-path spawns never pay the
        getattr."""
        n = self._name
        if not n:
            n = getattr(self.fn, "__name__", "task")
            self._name = n
        return n

    # -- coroutine plumbing (used by executors) -------------------------
    def start_body(self) -> Any:
        """Invoke the body. Returns the body's value, or the generator if the
        body is a coroutine (caller must then drive it via :meth:`step`)."""
        self.state = TaskState.RUNNING
        if self.kwargs:
            return self.fn(*self.args, **self.kwargs)
        return self.fn(*self.args)

    def step(self) -> Tuple[bool, Any]:
        """Advance a coroutine task one hop.

        Returns ``(finished, payload)``: if finished, payload is the return
        value; otherwise payload is the yielded object (a Future or ``None``).
        """
        if self.gen is None:
            raise RuntimeStateError(f"task {self.name} is not a coroutine task")
        self.state = TaskState.RUNNING
        try:
            if self._send_exc is not None:
                exc, self._send_exc = self._send_exc, None
                yielded = self.gen.throw(exc)
            else:
                value, self._send_value = self._send_value, None
                yielded = self.gen.send(value)
        except StopIteration as stop:
            return True, stop.value
        return False, yielded

    def prepare_resume(self, fut: Future) -> None:
        """Capture the satisfied future's value/exception for the next step."""
        try:
            self._send_value = fut.value()
        except BaseException as exc:
            self._send_exc = exc

    def describe(self) -> str:
        where = self.place.name if self.place is not None else "?"
        return f"task#{self.task_id} {self.name!r} [{self.module}] at {where} (rank {self.rank})"

    def __repr__(self) -> str:
        return f"<{self.describe()} {self.state.value}>"
