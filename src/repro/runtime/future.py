"""Promises and futures (paper §II-B4).

A promise is a single-assignment, thread-safe container for a value; a future
is a read-only handle on it. Futures are the framework's only inter-task
synchronization primitive besides ``finish``: tasks may block on them
(``wait``/``get``) or predicate new tasks on them (``async_await``).

Implementation notes
--------------------
- ``put`` runs registered callbacks *outside* the internal lock, in
  registration order, exactly once each.
- A promise may be satisfied with an exception (``put_exception``); ``get``
  then re-raises it in every consumer. This is how task failures propagate
  through ``async_future``.
- ``put`` records the *virtual timestamp* of satisfaction when called inside
  an executor context, which the simulated executor uses to advance a blocked
  worker's clock to the satisfaction time.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Sequence

from repro.runtime import instrument
from repro.runtime.context import current_context, require_context
from repro.util.errors import PromiseError

_UNSET = object()


class Promise:
    """Single-assignment, thread-safe value container."""

    __slots__ = ("_lock", "_value", "_exception", "_satisfied", "_callbacks",
                 "_put_time", "_future", "name")

    def __init__(self, name: str = ""):
        self._lock = threading.Lock()
        self._value: Any = _UNSET
        self._exception: Optional[BaseException] = None
        self._satisfied = False
        self._callbacks: List[Callable[["Future"], None]] = []
        self._put_time: float = 0.0
        self._future: Optional[Future] = None
        self.name = name

    # -- producer side -------------------------------------------------
    def put(self, value: Any = None) -> None:
        """Satisfy the promise. A second put raises :class:`PromiseError`."""
        self._resolve(value, None)

    def put_exception(self, exc: BaseException) -> None:
        """Satisfy the promise with a failure; consumers re-raise on ``get``."""
        if not isinstance(exc, BaseException):
            raise TypeError("put_exception expects an exception instance")
        self._resolve(_UNSET, exc)

    def _resolve(self, value: Any, exc: Optional[BaseException]) -> None:
        ctx = current_context()
        now = ctx.executor.now() if ctx is not None else 0.0
        with self._lock:
            if self._satisfied:
                raise PromiseError(
                    f"promise {self.name or id(self)} satisfied twice "
                    "(promises are single-assignment)"
                )
            self._value = value
            self._exception = exc
            self._put_time = now
            self._satisfied = True
            callbacks, self._callbacks = self._callbacks, []
        p = instrument.PROBE
        if p is not None:
            # Happens-before source: everything the producer did is ordered
            # before any consumer that observes satisfaction.
            p.on_sync_release(("promise", id(self)))
        fut = self.get_future()
        for cb in callbacks:
            cb(fut)

    # -- consumer side ---------------------------------------------------
    def get_future(self) -> "Future":
        # Futures are cheap handles; share one per promise.
        if self._future is None:
            self._future = Future(self)
        return self._future

    @property
    def satisfied(self) -> bool:
        return self._satisfied

    def _add_callback(self, cb: Callable[["Future"], None]) -> None:
        run_now = False
        with self._lock:
            if self._satisfied:
                run_now = True
            else:
                self._callbacks.append(cb)
        if run_now:
            cb(self.get_future())

    def _remove_callback(self, cb: Callable[["Future"], None]) -> bool:
        """Detach a registered callback; returns whether it was present.

        Used by combinators (``when_any``'s losers, ``when_all``'s
        fail-fast) to drop dead continuations from long-lived promises —
        a promise that outlives many combinator rounds must not
        accumulate callbacks that can never fire again.
        """
        with self._lock:
            try:
                self._callbacks.remove(cb)
                return True
            except ValueError:
                return False

    def __repr__(self) -> str:
        state = "satisfied" if self._satisfied else "pending"
        return f"Promise({self.name or hex(id(self))}, {state})"


class Future:
    """Read-only handle on a :class:`Promise`."""

    __slots__ = ("_promise",)

    def __init__(self, promise: Promise):
        self._promise = promise

    @property
    def satisfied(self) -> bool:
        return self._promise._satisfied

    @property
    def name(self) -> str:
        return self._promise.name

    def value(self) -> Any:
        """The satisfied value; raises if unsatisfied or satisfied with error."""
        p = self._promise
        if not p._satisfied:
            raise PromiseError(
                f"future {self.name or hex(id(self))} read before satisfaction; "
                "call wait()/get() from a task instead"
            )
        if p._exception is not None:
            raise p._exception
        return p._value

    def on_ready(self, cb: Callable[["Future"], None]) -> None:
        """Run ``cb(self)`` when satisfied (immediately if already). Internal
        building block for continuations and ``async_await``."""
        self._promise._add_callback(cb)

    def wait(self) -> Any:
        """Block the calling task until satisfied; return the value.

        Never blocks the underlying worker: the executor runs other ready
        tasks (help-until-ready) or parks until the satisfying event. This is
        the reproduction's analogue of the paper's call-stack suspension.
        """
        p = self._promise
        if not p._satisfied:
            ctx = require_context()
            ctx.executor.block_until(
                lambda: p._satisfied,
                description=f"future {self.name or hex(id(self))}",
                time_source=lambda: p._put_time,
            )
        probe = instrument.PROBE
        if probe is not None:
            probe.on_sync_acquire(("promise", id(p)))
        return self.value()

    def get(self) -> Any:
        """Paper spelling: ``f->get()`` — wait then fetch."""
        return self.wait()

    def then(self, fn: Callable[[Any], Any], name: str = "then") -> "Future":
        """UPC++-style chaining: a future of ``fn(value)``, applied when this
        future is satisfied. Exceptions — from this future or from ``fn`` —
        propagate into the returned future."""
        out = Promise(name=name)

        def _apply(f: "Future") -> None:
            try:
                out.put(fn(f.value()))
            except BaseException as exc:  # noqa: BLE001
                out.put_exception(exc)

        self.on_ready(_apply)
        return out.get_future()

    def done_time(self) -> float:
        """Virtual time at which the promise was satisfied (sim executor)."""
        if not self._promise._satisfied:
            raise PromiseError("done_time() on an unsatisfied future")
        return self._promise._put_time

    def __repr__(self) -> str:
        state = "satisfied" if self.satisfied else "pending"
        return f"Future({self.name or hex(id(self._promise))}, {state})"


def satisfied_future(value: Any = None, name: str = "") -> Future:
    """A future that is already satisfied (handy for uniform APIs)."""
    p = Promise(name)
    with p._lock:
        p._value = value
        p._satisfied = True
    return p.get_future()


def when_all(futures: Sequence[Future], name: str = "when_all") -> Future:
    """A future satisfied when *all* inputs are, with the list of values.

    Fails fast: the first input to carry an exception (in completion order)
    fails the combined future immediately, exactly once — without it, one
    failed input plus one never-satisfied input would deadlock every waiter.
    """
    futures = list(futures)
    out = Promise(name)
    if not futures:
        out.put([])
        return out.get_future()
    remaining = [len(futures)]
    fired = [False]
    lock = threading.Lock()

    def _one_done(f: Future) -> None:
        exc = f._promise._exception
        with lock:
            if fired[0]:
                return
            remaining[0] -= 1
            fire = exc is not None or remaining[0] == 0
            if fire:
                fired[0] = True
        if not fire:
            return
        if exc is not None:
            out.put_exception(exc)
            # Fail-fast fired with inputs still pending: detach from them,
            # or a long-lived unsatisfied input would pin this closure (and
            # every value reachable from `futures`) for its whole lifetime.
            for g in futures:
                g._promise._remove_callback(_one_done)
            return
        try:
            out.put([g.value() for g in futures])
        except BaseException as e:  # pragma: no cover - inputs all clean here
            out.put_exception(e)

    for f in futures:
        f.on_ready(_one_done)
    return out.get_future()


def when_any(futures: Sequence[Future], name: str = "when_any") -> Future:
    """A future satisfied when *any* input is, with ``(index, value)``.

    The winner detaches the losers' callbacks: a long-lived input (a warm
    pool's shutdown future, a shared timer) raced against per-job futures
    must not accumulate one dead callback per race for the daemon's
    lifetime.
    """
    futures = list(futures)
    if not futures:
        raise PromiseError("when_any requires at least one future")
    out = Promise(name)
    lock = threading.Lock()
    fired = [False]
    registered: List[tuple] = []

    def _make(i: int) -> Callable[[Future], None]:
        def _cb(f: Future) -> None:
            with lock:
                if fired[0]:
                    return
                fired[0] = True
            try:
                out.put((i, f.value()))
            except BaseException as exc:
                out.put_exception(exc)
            for j, (g, cb) in enumerate(registered):
                if j != i:
                    g._promise._remove_callback(cb)

        return _cb

    for i, f in enumerate(futures):
        registered.append((f, _make(i)))
    for f, cb in registered:
        f.on_ready(cb)
    if fired[0]:
        # The winner fired while we were still registering: sweep every
        # callback (removing the winner's is a no-op — resolution already
        # drained its list).
        for g, cb in registered:
            g._promise._remove_callback(cb)
    return out.get_future()
