"""Worker state and the pop-path/steal-path search policy (paper §II-B3).

A worker's scheduling logic is exactly the paper's three steps:

1. search its *pop path* for work it created itself (LIFO, locality);
2. failing that, search its *steal path* for work created by others (FIFO);
3. repeat until work is found or shutdown.

Step 3 (the retry/park loop) belongs to the executor; this module implements
one search round, shared verbatim by the simulated and threaded executors.

The search round is occupancy-driven: each worker precomputes the
:class:`~repro.runtime.deques.PlaceDeques` sequence of its two paths plus two
bitmasks (its own slot bit for the pop path, everyone-else's bits for the
steal path) so one ``mask & bits`` test per place decides whether the place
can possibly yield work. Empty places cost an AND instead of a lock acquire
per slot, and the victim permutation is drawn once per search round (and only
when some steal-path place actually shows stealable occupancy) instead of
reshuffled per place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.place import Place
    from repro.runtime.runtime import HiperRuntime
    from repro.runtime.task import Task


class WorkerState:
    """Per-worker mutable state: identity, paths, virtual clock, RNG."""

    __slots__ = ("wid", "rank", "runtime", "pop_path", "steal_path", "clock",
                 "_rng", "_victims", "idle_time", "tasks_run", "steals",
                 "own_bit", "steal_mask", "_pop_pairs", "_steal_deques",
                 "_counters")

    def __init__(
        self,
        wid: int,
        rank: int,
        runtime: "HiperRuntime",
        pop_path: Sequence["Place"],
        steal_path: Sequence["Place"],
        rng: np.random.Generator,
    ):
        self.wid = wid
        self.rank = rank
        self.runtime = runtime
        self.pop_path: List["Place"] = list(pop_path)
        self.steal_path: List["Place"] = list(steal_path)
        #: Virtual clock (simulated executor); unused by the threaded executor.
        self.clock = 0.0
        self._rng = rng
        self._victims = np.arange(runtime.num_workers)
        self.idle_time = 0.0
        self.tasks_run = 0
        self.steals = 0
        #: Occupancy-mask bits: this worker's slot, and every other slot.
        self.own_bit = 1 << wid
        self.steal_mask = ((1 << runtime.num_workers) - 1) & ~self.own_bit
        # Resolve each path place to its PlaceDeques (and, for the pop path,
        # this worker's slot) once; paths and the deque table are both fixed
        # for the runtime's lifetime.
        deques = runtime.deques
        self._pop_pairs = [
            (deques.at(p), deques.at(p).slots[wid]) for p in self.pop_path
        ]
        self._steal_deques = [deques.at(p) for p in self.steal_path]
        # Direct counter dict (None when stats are disabled — the flag is
        # fixed at RuntimeStats construction): a subscript increment beats a
        # stats.count() call on the once-per-dispatch pop/steal tallies.
        stats = runtime.stats
        self._counters = stats.counters if stats.config.enabled else None

    def victim_order(self) -> List[int]:
        """A fresh random permutation of worker ids, for steal fairness.
        Drawn at most once per search round (see :func:`find_task`)."""
        self._rng.shuffle(self._victims)
        return self._victims.tolist()

    def advance_clock_to(self, t: float) -> None:
        if t > self.clock:
            self.idle_time += t - self.clock
            self.clock = t

    def describe(self) -> str:
        return f"worker {self.wid} (rank {self.rank})"

    def __repr__(self) -> str:
        return f"<WorkerState r{self.rank}w{self.wid} clock={self.clock:.6f}>"


#: Counter keys for the per-dispatch tallies (built once, not per dispatch).
_POP_KEY = ("core", "pop")
_STEAL_KEY = ("core", "steal")


def find_task(worker: WorkerState) -> Optional["Task"]:
    """One search round over the worker's pop path then steal path.

    Returns a ready task or ``None``. Mirrors paper §II-B3: the pop path only
    yields tasks this worker created; the steal path only yields tasks other
    workers created. Places whose occupancy mask shows nothing this worker
    could take are skipped without touching their deques.
    """
    own_bit = worker.own_bit
    for pd, slot in worker._pop_pairs:
        if pd.mask & own_bit:
            task = slot.pop()
            if task is not None:
                counters = worker._counters
                if counters is not None:
                    counters[_POP_KEY] += 1
                return task
    steal_mask = worker.steal_mask
    if steal_mask:  # zero iff there is a single worker: nobody to steal from
        order = None
        for pd in worker._steal_deques:
            if pd.mask & steal_mask:
                if order is None:
                    order = worker.victim_order()
                task = pd.steal_from_others(worker.wid, order)
                if task is not None:
                    counters = worker._counters
                    if counters is not None:
                        counters[_STEAL_KEY] += 1
                    worker.steals += 1
                    return task
    return None


def has_visible_work(worker: WorkerState) -> bool:
    """Cheap check whether a search round *could* succeed (used by executors
    to decide whether to park): one occupancy-mask AND per path place, zero
    lock traffic. May return true spuriously (racy in the threaded executor),
    never falsely negative at the instant of the check."""
    own_bit = worker.own_bit
    for pd, _slot in worker._pop_pairs:
        if pd.mask & own_bit:
            return True
    steal_mask = worker.steal_mask
    for pd in worker._steal_deques:
        if pd.mask & steal_mask:
            return True
    return False
