"""Worker state and the pop-path/steal-path search policy (paper §II-B3).

A worker's scheduling logic is exactly the paper's three steps:

1. search its *pop path* for work it created itself (LIFO, locality);
2. failing that, search its *steal path* for work created by others (FIFO);
3. repeat until work is found or shutdown.

Step 3 (the retry/park loop) belongs to the executor; this module implements
one search round, shared verbatim by the simulated and threaded executors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.place import Place
    from repro.runtime.runtime import HiperRuntime
    from repro.runtime.task import Task


class WorkerState:
    """Per-worker mutable state: identity, paths, virtual clock, RNG."""

    __slots__ = ("wid", "rank", "runtime", "pop_path", "steal_path", "clock",
                 "_rng", "_victims", "idle_time", "tasks_run", "steals")

    def __init__(
        self,
        wid: int,
        rank: int,
        runtime: "HiperRuntime",
        pop_path: Sequence["Place"],
        steal_path: Sequence["Place"],
        rng: np.random.Generator,
    ):
        self.wid = wid
        self.rank = rank
        self.runtime = runtime
        self.pop_path: List["Place"] = list(pop_path)
        self.steal_path: List["Place"] = list(steal_path)
        #: Virtual clock (simulated executor); unused by the threaded executor.
        self.clock = 0.0
        self._rng = rng
        self._victims = np.arange(runtime.num_workers)
        self.idle_time = 0.0
        self.tasks_run = 0
        self.steals = 0

    def victim_order(self) -> np.ndarray:
        """A fresh random permutation of worker ids, for steal fairness."""
        self._rng.shuffle(self._victims)
        return self._victims

    def advance_clock_to(self, t: float) -> None:
        if t > self.clock:
            self.idle_time += t - self.clock
            self.clock = t

    def describe(self) -> str:
        return f"worker {self.wid} (rank {self.rank})"

    def __repr__(self) -> str:
        return f"<WorkerState r{self.rank}w{self.wid} clock={self.clock:.6f}>"


def find_task(worker: WorkerState) -> Optional["Task"]:
    """One search round over the worker's pop path then steal path.

    Returns a ready task or ``None``. Mirrors paper §II-B3: the pop path only
    yields tasks this worker created; the steal path only yields tasks other
    workers created.
    """
    deques = worker.runtime.deques
    stats = worker.runtime.stats
    for place in worker.pop_path:
        task = deques.at(place).pop_own(worker.wid)
        if task is not None:
            stats.count("core", "pop")
            return task
    num_workers = worker.runtime.num_workers
    for place in worker.steal_path:
        if num_workers == 1:
            break  # nobody to steal from
        task = deques.at(place).steal_from_others(worker.wid, worker.victim_order())
        if task is not None:
            stats.count("core", "steal")
            worker.steals += 1
            return task
    return None


def has_visible_work(worker: WorkerState) -> bool:
    """Cheap check whether a search round *could* succeed (used by executors
    to decide whether to park). May return true spuriously (racy in the
    threaded executor), never falsely negative at the instant of the check."""
    deques = worker.runtime.deques
    for place in worker.pop_path:
        if len(deques.at(place).slots[worker.wid]):
            return True
    for place in worker.steal_path:
        pd = deques.at(place)
        for wid, slot in enumerate(pd.slots):
            if wid != worker.wid and len(slot):
                return True
    return False
