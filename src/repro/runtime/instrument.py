"""Concurrency instrumentation hooks (no-op by default).

The verification harness (:mod:`repro.verify`) observes the policy core's
shared-state accesses — deque occupancy mask/counter updates, finish-scope
pending counts, promise state transitions — through a single module-global
*probe*. Production runs never install one, so the entire cost at every hook
site is one module-attribute load plus a ``None`` test, the same idiom as
:attr:`repro.exec.base.Executor.task_fault_hook`. The simulated executor's
lock-free fast paths (``UnsyncWorkerDeque``, lock-free ``FinishScope``) carry
no hook sites at all: probes live only on the locked variants, which the
single-threaded engine never instantiates.

A probe is any object implementing (a subset of) the :class:`Probe` protocol.
Hook sites fetch ``instrument.PROBE`` once and call it only when non-None::

    p = instrument.PROBE
    if p is not None:
        p.on_access(("place", name, "mask"), True)

Thread identity is *not* passed down: probes resolve the current logical
worker from :func:`repro.runtime.context.current_context`, which works for
both real OS threads and the cooperative interleaving executor.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Tuple

#: Location key: (kind, object-name, field), e.g. ("place", "sysmem", "mask").
Location = Tuple[str, Any, str]

#: The installed probe, or None (production default).
PROBE: Optional["Probe"] = None


class Probe:
    """Protocol (and no-op base) for concurrency probes.

    Subclass and override what you need; every method defaults to a no-op so
    probes stay forward-compatible with new hook sites.
    """

    def on_access(self, loc: Location, is_write: bool,
                  benign: bool = False) -> None:
        """A shared-state access. ``benign=True`` marks the documented
        lock-free reads (occupancy mask/counter snapshots) whose staleness
        is bounded-safe by design — detectors whitelist them."""

    def on_lock_acquire(self, lock: "TrackedLock") -> None:
        """``lock`` is now held by the current logical thread."""

    def on_lock_release(self, lock: "TrackedLock") -> None:
        """``lock`` is about to be released by the current logical thread."""

    def on_sync_release(self, key: Any) -> None:
        """A happens-before *source*: promise satisfaction, scope join."""

    def on_sync_acquire(self, key: Any) -> None:
        """A happens-before *sink*: observing a satisfied promise/join."""

    def on_scope_created(self, scope: Any) -> None:
        """A FinishScope was constructed (leak tracking)."""

    def on_scope_closed(self, scope: Any) -> None:
        """A FinishScope dropped its opener hold."""


def set_probe(probe: Optional[Probe]) -> Optional[Probe]:
    """Install ``probe`` globally; returns the previously installed one."""
    global PROBE
    prev = PROBE
    PROBE = probe
    return prev


@contextmanager
def probed(probe: Probe) -> Iterator[Probe]:
    """``with probed(detector): ...`` — install/uninstall around a run."""
    prev = set_probe(probe)
    try:
        yield probe
    finally:
        set_probe(prev)


_tracked_ids = itertools.count()


class TrackedLock:
    """A real lock that reports acquire/release to the installed probe.

    The interleaving executor plugs this in as its
    :attr:`~repro.exec.base.Executor.lock_class`, so every pluggable lock in
    the policy core (deque slot locks, occupancy index locks, finish-scope
    locks) feeds the race detector's lockset analysis. Under the cooperative
    single-OS-thread engine the lock is never contended; it exists to carry
    identity, not exclusion.
    """

    __slots__ = ("_lock", "lid", "label")

    def __init__(self):
        self._lock = threading.Lock()
        self.lid = next(_tracked_ids)
        #: Optional human-readable tag set by whoever created the lock.
        self.label = ""

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            p = PROBE
            if p is not None:
                p.on_lock_acquire(self)
        return ok

    def release(self) -> None:
        p = PROBE
        if p is not None:
            p.on_lock_release(self)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        return f"TrackedLock(#{self.lid}{', ' + self.label if self.label else ''})"
