"""Finish scopes: bulk task synchronization (paper §II-B4).

``finish(body)`` runs ``body`` and then blocks the calling task until every
task transitively spawned inside the scope has completed. Exceptions raised
by tasks in the scope are collected and re-raised at the join point (wrapped
in :class:`TaskGroupError` when more than one).

Coroutine tasks cannot call the blocking ``finish`` (a generator cannot yield
across the body callable's frame), so the runtime also exposes the split form
``begin_finish()`` / ``end_finish()`` where the latter returns a future to
``yield`` on.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Type

from repro.runtime import instrument
from repro.runtime.deques import NullLock
from repro.runtime.future import Future, Promise
from repro.util.errors import HiperError


class TaskGroupError(HiperError):
    """Raised at a finish join when more than one task in the scope failed."""

    def __init__(self, exceptions: List[BaseException]):
        self.exceptions = exceptions
        msgs = "; ".join(f"{type(e).__name__}: {e}" for e in exceptions[:5])
        extra = f" (+{len(exceptions) - 5} more)" if len(exceptions) > 5 else ""
        super().__init__(f"{len(exceptions)} tasks failed in finish scope: {msgs}{extra}")


class FinishScope:
    """Counts live tasks registered under it; satisfies a promise at zero.

    The scope starts *open* with a count of one held by the opener (the body
    itself); :meth:`close` drops that hold. The all-done promise fires when
    the count reaches zero after close.

    ``lock_cls`` follows the executor's pluggable lock discipline
    (:attr:`repro.exec.base.Executor.lock_class`): under the single-threaded
    simulated engine (:class:`~repro.runtime.deques.NullLock`) the scope skips
    locking entirely — spawn/complete bump the counter twice per task, making
    the lock traffic a measurable dispatch cost.
    """

    __slots__ = ("parent", "name", "_lock", "_count", "_closed", "_promise",
                 "_exceptions", "_end_time")

    def __init__(
        self,
        parent: Optional["FinishScope"] = None,
        name: str = "finish",
        lock_cls: Type = threading.Lock,
    ):
        self.parent = parent
        self.name = name
        # None (not a NullLock instance) when lock-free: a no-op context
        # manager would cost two Python calls — more than the C lock it
        # replaces — so the hot methods branch on None instead.
        self._lock = None if lock_cls is NullLock else lock_cls()
        self._count = 1  # the opener's hold
        self._closed = False
        self._promise = Promise(name=f"{name}-done")
        self._exceptions: List[BaseException] = []
        self._end_time = 0.0
        p = instrument.PROBE
        if p is not None:
            p.on_scope_created(self)

    # -- task registration ------------------------------------------------
    def task_spawned(self) -> None:
        lock = self._lock
        if lock is None:
            if self._closed and self._count == 0:
                raise HiperError(
                    f"finish scope {self.name!r} already joined; cannot spawn into it"
                )
            self._count += 1
            return
        with lock:
            p = instrument.PROBE
            if p is not None:
                p.on_access(("scope", id(self), "count"), True)
            if self._closed and self._count == 0:
                raise HiperError(
                    f"finish scope {self.name!r} already joined; cannot spawn into it"
                )
            self._count += 1

    def task_completed(self, exc: Optional[BaseException] = None) -> None:
        lock = self._lock
        if lock is None:
            if exc is not None:
                self._exceptions.append(exc)
            self._count -= 1
            if self._closed and self._count == 0:
                self._promise.put(None)
            return
        with lock:
            p = instrument.PROBE
            if p is not None:
                p.on_access(("scope", id(self), "count"), True)
            if exc is not None:
                self._exceptions.append(exc)
            self._count -= 1
            fire = self._closed and self._count == 0
        if fire:
            self._promise.put(None)

    def close(self) -> None:
        """Drop the opener's hold (body finished executing)."""
        lock = self._lock
        if lock is None:
            if self._closed:
                raise HiperError(f"finish scope {self.name!r} closed twice")
            self._closed = True
            self._count -= 1
            fire = self._count == 0
        else:
            with lock:
                p = instrument.PROBE
                if p is not None:
                    p.on_access(("scope", id(self), "count"), True)
                if self._closed:
                    raise HiperError(f"finish scope {self.name!r} closed twice")
                self._closed = True
                self._count -= 1
                fire = self._count == 0
        p = instrument.PROBE
        if p is not None:
            p.on_scope_closed(self)
        if fire:
            self._promise.put(None)

    # -- join side ----------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        return self._promise.satisfied

    @property
    def pending(self) -> int:
        return self._count

    def all_done_future(self) -> Future:
        return self._promise.get_future()

    def raise_collected(self) -> None:
        """Re-raise exceptions gathered from tasks in this scope, if any."""
        if self._lock is None:
            excs, self._exceptions = self._exceptions, []
        else:
            with self._lock:
                excs, self._exceptions = self._exceptions, []
        if len(excs) == 1:
            raise excs[0]
        if excs:
            raise TaskGroupError(excs)

    def __repr__(self) -> str:
        return (
            f"FinishScope({self.name!r}, pending={self._count}, "
            f"closed={self._closed})"
        )
