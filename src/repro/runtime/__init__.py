"""The generalized work-stealing runtime (paper §II-B): tasks, futures,
finish scopes, deques, workers, and the task-creation APIs."""

from repro.runtime.api import (
    async_,
    async_at,
    async_await,
    async_copy,
    async_copy_await,
    async_future,
    async_future_await,
    begin_finish,
    charge,
    current_runtime,
    end_finish,
    finish,
    forasync,
    forasync_chunked,
    forasync_future,
    now,
    timer_future,
    yield_now,
)
from repro.runtime.context import ExecContext, current_context, require_context
from repro.runtime.finish import FinishScope, TaskGroupError
from repro.runtime.future import Future, Promise, satisfied_future, when_all, when_any
from repro.runtime.polling import PollingService
from repro.runtime.runtime import HiperRuntime
from repro.runtime.task import Task, TaskState
from repro.runtime.worker import WorkerState, find_task

__all__ = [
    "async_",
    "async_at",
    "async_await",
    "async_copy",
    "async_copy_await",
    "async_future",
    "async_future_await",
    "begin_finish",
    "charge",
    "current_runtime",
    "end_finish",
    "finish",
    "forasync",
    "forasync_chunked",
    "forasync_future",
    "now",
    "timer_future",
    "yield_now",
    "ExecContext",
    "current_context",
    "require_context",
    "FinishScope",
    "TaskGroupError",
    "Future",
    "Promise",
    "satisfied_future",
    "when_all",
    "when_any",
    "PollingService",
    "HiperRuntime",
    "Task",
    "TaskState",
    "WorkerState",
    "find_task",
]
