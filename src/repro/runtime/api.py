"""User-facing task APIs with the paper's spellings (§II-B4).

``async`` is a Python keyword, so the paper's ``async([]{...})`` is spelled
``async_`` here; everything else keeps its name (``async_at``,
``async_future``, ``async_await``, ``async_future_await``, ``finish``,
``async_copy``, ``forasync``...).

All functions resolve the ambient runtime from the execution context, so
application code reads like the paper's listings:

    def main():
        fut = async_future(lambda: expensive())
        async_await(lambda: consume(fut.value()), fut)
        finish(lambda: forasync(range(n), body))

Coroutine tasks (generator bodies) use ``yield fut`` instead of blocking
waits, and the split ``begin_finish()``/``end_finish()`` pair instead of
``finish``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.platform.place import Place
from repro.runtime.context import _tls, require_context
from repro.runtime.finish import FinishScope
from repro.runtime.future import Future, Promise, when_all
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import ConfigError, HiperError, RuntimeStateError

__all__ = [
    "async_", "async_at", "async_future", "async_await", "async_future_await",
    "finish", "begin_finish", "end_finish", "forasync", "forasync_future",
    "forasync_chunked", "async_copy", "async_copy_await", "charge", "now",
    "timer_future", "current_runtime", "yield_now",
]

#: Fallback host copy bandwidth when places declare none (bytes/s).
DEFAULT_HOST_COPY_BW = 10e9


def current_runtime() -> HiperRuntime:
    ctx = require_context()
    if ctx.runtime is None:
        raise RuntimeStateError("no runtime bound to the current context")
    return ctx.runtime


def _resolve_rt(runtime: Optional[HiperRuntime]) -> HiperRuntime:
    return runtime if runtime is not None else current_runtime()


def _combine_awaits(
    await_future: Optional[Future], await_futures: Optional[Sequence[Future]]
) -> Optional[Future]:
    futs: List[Future] = []
    if await_future is not None:
        futs.append(await_future)
    if await_futures:
        futs.extend(await_futures)
    if not futs:
        return None
    if len(futs) == 1:
        return futs[0]
    return when_all(futs)


# ----------------------------------------------------------------------
# core spawns
# ----------------------------------------------------------------------
def async_(
    body: Callable[[], Any],
    *,
    name: str = "",
    cost: float = 0.0,
    runtime: Optional[HiperRuntime] = None,
) -> None:
    """Create a task executing ``body`` at the place closest to the current
    worker (paper: ``async([] { body; })``)."""
    if runtime is None:
        # Inlined _resolve_rt: plain async_ is the hottest spawn spelling,
        # so read the ambient context stack directly; fall back to
        # current_runtime() only to raise its descriptive errors.
        stack = _tls.stack
        runtime = stack[-1].runtime if stack else None
        if runtime is None:
            runtime = current_runtime()
    runtime.spawn(body, name=name, cost=cost)


def async_at(
    body: Callable[[], Any],
    place: Place,
    *,
    name: str = "",
    cost: float = 0.0,
    runtime: Optional[HiperRuntime] = None,
) -> None:
    """Create a task executing ``body`` at a specific place."""
    _resolve_rt(runtime).spawn(body, place=place, name=name, cost=cost)


def async_future(
    body: Callable[[], Any],
    *,
    place: Optional[Place] = None,
    name: str = "",
    cost: float = 0.0,
    runtime: Optional[HiperRuntime] = None,
) -> Future:
    """Create a task and return a future satisfied with its return value."""
    fut = _resolve_rt(runtime).spawn(
        body, place=place, name=name, cost=cost, return_future=True
    )
    assert fut is not None
    return fut


def async_await(
    body: Callable[[], Any],
    future: Union[Future, Sequence[Future]],
    *,
    place: Optional[Place] = None,
    name: str = "",
    cost: float = 0.0,
    runtime: Optional[HiperRuntime] = None,
) -> None:
    """Create a task whose execution is predicated on ``future`` (or on all
    of a sequence of futures)."""
    dep = future if isinstance(future, Future) else when_all(list(future))
    _resolve_rt(runtime).spawn(
        body, place=place, name=name, cost=cost, await_future=dep
    )


def async_future_await(
    body: Callable[[], Any],
    future: Union[Future, Sequence[Future]],
    *,
    place: Optional[Place] = None,
    name: str = "",
    cost: float = 0.0,
    runtime: Optional[HiperRuntime] = None,
) -> Future:
    """Combined variant (paper §II-B4): predicated on ``future``, returns a
    future satisfied at completion."""
    dep = future if isinstance(future, Future) else when_all(list(future))
    fut = _resolve_rt(runtime).spawn(
        body, place=place, name=name, cost=cost, await_future=dep,
        return_future=True,
    )
    assert fut is not None
    return fut


# ----------------------------------------------------------------------
# finish scopes
# ----------------------------------------------------------------------
def finish(body: Callable[[], Any], *, name: str = "finish") -> Any:
    """Run ``body``; block until all tasks transitively created inside have
    completed; re-raise their failures. Returns ``body``'s value.

    Must be called from a plain-callable task (coroutine tasks use
    ``begin_finish``/``end_finish``).
    """
    ctx = require_context()
    if ctx.task is None:
        raise RuntimeStateError("finish() must be called from inside a task")
    task = ctx.task
    scope = FinishScope(parent=task.active_scope, name=name,
                        lock_cls=ctx.executor.lock_class)
    task.active_scope = scope
    body_exc: Optional[BaseException] = None
    result = None
    try:
        result = body()
    except BaseException as exc:  # noqa: BLE001 - re-raised after the join
        body_exc = exc
    finally:
        task.active_scope = scope.parent
    scope.close()
    # Join even when the body failed: spawned tasks are not orphaned.
    # The predicate runs once per engine step while joining, so bind the
    # scope's promise and read its flag directly (vs. the quiescent property
    # -> Future.satisfied property chain: three calls per step).
    promise = scope._promise
    ctx.executor.block_until(
        lambda: promise._satisfied,
        description=f"finish scope {name!r}",
        time_source=lambda: scope.all_done_future().done_time(),
    )
    if body_exc is not None:
        raise body_exc
    scope.raise_collected()
    return result


def begin_finish(name: str = "finish") -> FinishScope:
    """Open a finish scope in a coroutine task. Pair with ``end_finish``."""
    ctx = require_context()
    if ctx.task is None:
        raise RuntimeStateError("begin_finish() must be called from inside a task")
    scope = FinishScope(parent=ctx.task.active_scope, name=name,
                        lock_cls=ctx.executor.lock_class)
    ctx.task.active_scope = scope
    return scope


def end_finish(scope: FinishScope) -> Future:
    """Close a scope opened by ``begin_finish``; returns a future to yield on.

    The future carries the scope's collected task failures (yielding on it
    re-raises them in the coroutine).
    """
    ctx = require_context()
    if ctx.task is None or ctx.task.active_scope is not scope:
        raise RuntimeStateError(
            "end_finish() must be called from the task that opened the scope, "
            "with properly nested scopes"
        )
    ctx.task.active_scope = scope.parent
    scope.close()
    out = Promise(name=f"{scope.name}-join")

    def _joined(_f: Future) -> None:
        try:
            scope.raise_collected()
        except BaseException as exc:
            out.put_exception(exc)
            return
        out.put(None)

    scope.all_done_future().on_ready(_joined)
    return out.get_future()


# ----------------------------------------------------------------------
# parallel loops
# ----------------------------------------------------------------------
def _normalize_domain(domain: Union[int, range]) -> range:
    if isinstance(domain, int):
        if domain < 0:
            raise ConfigError(f"forasync over negative count {domain}")
        return range(domain)
    if isinstance(domain, range):
        return domain
    raise ConfigError(f"forasync domain must be int or range, got {type(domain)!r}")


def forasync_chunked(
    domain: Union[int, range],
    body: Callable[[int, int], Any],
    *,
    chunks: Optional[int] = None,
    place: Optional[Place] = None,
    cost_per_item: float = 0.0,
    name: str = "forasync",
    runtime: Optional[HiperRuntime] = None,
) -> None:
    """Spawn ``body(lo, hi)`` over contiguous index blocks (vectorizable form).

    Registers with the caller's current finish scope — wrap in ``finish`` (or
    use :func:`forasync_future`) to wait.
    """
    rt = _resolve_rt(runtime)
    dom = _normalize_domain(domain)
    n = len(dom)
    if n == 0:
        return
    nchunks = chunks if chunks is not None else min(n, rt.num_workers * 4)
    if nchunks < 1:
        raise ConfigError(f"chunks must be >= 1, got {nchunks}")
    nchunks = min(nchunks, n)
    step = dom.step
    base, extra = divmod(n, nchunks)
    start_idx = 0
    for c in range(nchunks):
        size = base + (1 if c < extra else 0)
        lo = dom.start + start_idx * step
        hi = dom.start + (start_idx + size) * step
        rt.spawn(
            body, (lo, hi), place=place, name=f"{name}[{c}]",
            cost=cost_per_item * size,
        )
        start_idx += size


def forasync(
    domain: Union[int, range],
    body: Callable[[int], Any],
    *,
    chunks: Optional[int] = None,
    place: Optional[Place] = None,
    cost_per_item: float = 0.0,
    name: str = "forasync",
    runtime: Optional[HiperRuntime] = None,
) -> None:
    """Spawn ``body(i)`` for every index in ``domain`` (chunked under the hood)."""
    dom = _normalize_domain(domain)
    step = dom.step

    def _chunk(lo: int, hi: int) -> None:
        for i in range(lo, hi, step):
            body(i)

    forasync_chunked(
        dom, _chunk, chunks=chunks, place=place,
        cost_per_item=cost_per_item, name=name, runtime=runtime,
    )


def forasync_future(
    domain: Union[int, range],
    body: Callable[[int], Any],
    *,
    chunks: Optional[int] = None,
    place: Optional[Place] = None,
    cost_per_item: float = 0.0,
    name: str = "forasync",
    runtime: Optional[HiperRuntime] = None,
) -> Future:
    """Like :func:`forasync` but returns a future satisfied when every
    iteration has completed (paper's ``forasync_future`` in §II-D)."""
    ctx = require_context()
    if ctx.task is None:
        raise RuntimeStateError("forasync_future must be called from inside a task")
    scope = begin_finish(name=f"{name}-scope")
    try:
        forasync(
            domain, body, chunks=chunks, place=place,
            cost_per_item=cost_per_item, name=name, runtime=runtime,
        )
    finally:
        fut = end_finish(scope)
    return fut


# ----------------------------------------------------------------------
# data movement
# ----------------------------------------------------------------------
def _as_byte_view(buf: Any, nbytes: int, role: str) -> np.ndarray:
    if not isinstance(buf, np.ndarray):
        raise ConfigError(
            f"{role} buffer for a host-side async_copy must be a numpy array, "
            f"got {type(buf)!r} (device buffers need their module's copy handler)"
        )
    if not buf.flags["C_CONTIGUOUS"]:
        raise ConfigError(f"{role} buffer must be C-contiguous")
    if buf.dtype == np.uint8 and buf.ndim == 1:
        flat = buf  # already a flat byte view: no re-wrap on the hot path
    else:
        flat = buf.reshape(-1).view(np.uint8)
    if flat.nbytes < nbytes:
        raise ConfigError(
            f"{role} buffer holds {flat.nbytes} bytes but copy needs {nbytes}"
        )
    return flat[:nbytes]


def async_copy(
    dst_buf: Any,
    dst_place: Place,
    src_buf: Any,
    src_place: Place,
    nbytes: int,
    *,
    runtime: Optional[HiperRuntime] = None,
) -> Future:
    """Asynchronously transfer ``nbytes`` from ``src_buf``@``src_place`` to
    ``dst_buf``@``dst_place``; returns a completion future (paper §II-B4).

    Dispatch: if a module registered a copy handler for
    ``(src_place.kind, dst_place.kind)`` — e.g. the CUDA module for GPU
    places (paper §II-C3) — the copy is handed off to it. Otherwise the core
    host-copy path runs: a task at the destination place moves the bytes and
    charges ``nbytes / bandwidth`` per graph hop.
    """
    rt = _resolve_rt(runtime)
    if nbytes < 0:
        raise ConfigError(f"nbytes must be non-negative, got {nbytes}")
    for p, role in ((src_place, "source"), (dst_place, "destination")):
        if p not in rt.model:
            raise ConfigError(f"{role} place {p.name!r} is not in this runtime's model")
        if not p.is_memory:
            raise ConfigError(
                f"{role} place {p.name!r} ({p.kind.value}) is not a memory place"
            )

    handler = rt.copy_handler(src_place.kind, dst_place.kind)
    if handler is not None:
        return handler(rt, dst_buf, dst_place, src_buf, src_place, nbytes)

    hops = max(1, len(rt.model.shortest_path(src_place, dst_place)) - 1)

    def _bw(p: Place) -> float:
        return float(p.properties.get("bandwidth_bytes_per_s", DEFAULT_HOST_COPY_BW))

    seconds = sum(
        nbytes / min(_bw(src_place), _bw(dst_place)) for _ in range(hops)
    )

    def _do_copy() -> None:
        if nbytes:
            dst = _as_byte_view(dst_buf, nbytes, "destination")
            src = _as_byte_view(src_buf, nbytes, "source")
            np.copyto(dst, src)
        charge(seconds)

    fut = rt.spawn(
        _do_copy, place=dst_place, name="async_copy", module="core",
        return_future=True,
    )
    assert fut is not None
    rt.stats.count("core", "async_copy")
    return fut


def async_copy_await(
    dst_buf: Any,
    dst_place: Place,
    src_buf: Any,
    src_place: Place,
    nbytes: int,
    futures: Sequence[Future],
    *,
    runtime: Optional[HiperRuntime] = None,
) -> Future:
    """``async_copy`` predicated on prior futures (paper §II-D listing)."""
    rt = _resolve_rt(runtime)
    dep = _combine_awaits(None, list(futures))
    out = Promise(name="async_copy_await-done")

    def _launch() -> None:
        inner = async_copy(dst_buf, dst_place, src_buf, src_place, nbytes, runtime=rt)
        inner.on_ready(
            lambda f: out.put_exception(_exc_of(f)) if _exc_of(f) else out.put(None)
        )

    if dep is None:
        _launch()
    else:
        # Spawn with a future so a failed dependency lands in OUR promise
        # (not the enclosing finish scope) and the caller sees it on wait.
        launch_fut = rt.spawn(_launch, await_future=dep,
                              name="async_copy_await", return_future=True)

        def _forward_failure(f: Future) -> None:
            exc = _exc_of(f)
            if exc is not None:
                out.put_exception(exc)

        launch_fut.on_ready(_forward_failure)
    return out.get_future()


def _exc_of(fut: Future) -> Optional[BaseException]:
    try:
        fut.value()
        return None
    except BaseException as exc:  # noqa: BLE001
        return exc


# ----------------------------------------------------------------------
# time
# ----------------------------------------------------------------------
def charge(seconds: float) -> None:
    """Account ``seconds`` of simulated compute to the current worker.

    The simulated executor advances the worker's virtual clock; the threaded
    executor ignores it (real work takes real time there). Raises outside a
    task context.
    """
    if seconds < 0:
        raise ConfigError(f"cannot charge negative time {seconds}")
    require_context().executor.charge(seconds)


def now() -> float:
    """Current virtual (sim) or wall (threads) time for the caller."""
    return require_context().executor.now()


def timer_future(delay: float, *, name: str = "timer") -> Future:
    """A future satisfied ``delay`` seconds from now (virtual or wall)."""
    if delay < 0:
        raise ConfigError(f"timer delay must be non-negative, got {delay}")
    ctx = require_context()
    p = Promise(name=name)
    ctx.executor.call_later(delay, lambda: p.put(None))
    return p.get_future()


def yield_now() -> None:
    """Plain-callable cooperative yield: run other ready work, then return.

    In a coroutine task, prefer ``yield None``.
    """
    ctx = require_context()
    # block_until probes the predicate once before looping and once per
    # round; stay False through both initial probes so exactly one
    # scheduling step runs.
    calls = [0]

    def _after_one_round() -> bool:
        calls[0] += 1
        return calls[0] > 2

    try:
        ctx.executor.block_until(_after_one_round, description="yield_now")
    except HiperError:
        # Nothing else to run — that's fine for a cooperative yield.
        pass
