"""Per-place, per-worker task deques with an occupancy index (paper §II-B2).

Each place holds *N* deques, one per worker. The i-th deque at a place
contains only ready tasks spawned by worker *i*, which makes it trivial for a
searching worker to distinguish its own work (pop: LIFO, locality) from other
workers' work (steal: FIFO, load balancing) — exactly the Chase–Lev access
discipline.

Two things make the search hot path cheap here:

1. **Occupancy index.** Every :class:`PlaceDeques` maintains a bitmask of
   non-empty slots (``mask``, bit *i* set iff worker *i*'s deque holds work)
   and an exact ready-task count (``ready``), both updated on every
   push/pop/steal. ``find_task`` and ``has_visible_work`` test the mask and
   skip empty places/victims without touching a single deque or lock, and
   ``total_ready`` (polling / deadlock-report path) reads counters instead of
   summing ``len()`` across W slots per place.

2. **Pluggable locking.** The executor supplies a lock class
   (:attr:`repro.exec.base.Executor.lock_class`): ``threading.Lock`` under
   the threaded engine, :class:`NullLock` under the single-threaded simulated
   engine. When the lock class is ``NullLock`` the table instantiates
   :class:`UnsyncWorkerDeque` slots whose methods carry no lock operations at
   all — the Chase–Lev-cheap access the paper assumes (§II-B2/B3), rather
   than paying an uncontended-but-real lock acquire per deque op.

Under the threaded engine the per-place index is guarded by one index lock
(same pluggable class) nested inside the slot lock, so counters stay exact;
*readers* of ``mask``/``ready`` are deliberately lock-free, which is racy but
safe: a stale mask can only cause a missed steal in one search round or a
spurious wake, both bounded by the executor's park timeout.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Type

from repro.runtime import instrument
from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.model import PlatformModel
    from repro.platform.place import Place
    from repro.runtime.task import Task


class NullLock:
    """A lock-shaped no-op for single-threaded engines (pluggable locking)."""

    __slots__ = ()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return True

    def release(self) -> None:
        pass

    def __enter__(self) -> "NullLock":
        return self

    def __exit__(self, *exc) -> bool:
        return False


class WorkerDeque:
    """One worker's deque at one place. Owner pops newest; thieves steal
    oldest. Thread-safe variant: a lock per deque plus the owning place's
    index lock for occupancy updates (slot lock -> index lock, always in that
    order)."""

    __slots__ = ("_lock", "_items", "_place", "_bit")

    def __init__(self, place: Optional["PlaceDeques"] = None, bit: int = 0,
                 lock_cls: Type = threading.Lock):
        self._lock = lock_cls()
        self._items: deque = deque()
        self._place = place
        self._bit = bit

    def _loc(self, field: str):
        pd = self._place
        pname = pd.place.name if pd is not None else "?"
        if field == "items":
            return ("slot", (pname, self._bit.bit_length() - 1), "items")
        return ("place", pname, field)

    def push(self, task: "Task") -> bool:
        """Append a task; returns True iff the slot was empty before (its
        occupancy bit flipped on) — the signal engines use to elide wakes."""
        with self._lock:
            items = self._items
            newly = not items
            items.append(task)
            pd = self._place
            p = instrument.PROBE
            if p is not None:
                p.on_access(self._loc("items"), True)
            if pd is not None:
                with pd.index_lock:
                    if p is not None:
                        p.on_access(self._loc("mask"), True)
                        p.on_access(self._loc("ready"), True)
                    pd.mask |= self._bit
                    pd.ready += 1
            return newly

    def pop(self) -> Optional["Task"]:
        """LIFO end — owner's access."""
        with self._lock:
            items = self._items
            if not items:
                return None
            task = items.pop()
            pd = self._place
            p = instrument.PROBE
            if p is not None:
                p.on_access(self._loc("items"), True)
            if pd is not None:
                with pd.index_lock:
                    if p is not None:
                        p.on_access(self._loc("mask"), True)
                        p.on_access(self._loc("ready"), True)
                    pd.ready -= 1
                    if not items:
                        pd.mask &= ~self._bit
            return task

    def steal(self) -> Optional["Task"]:
        """FIFO end — thief's access."""
        with self._lock:
            items = self._items
            if not items:
                return None
            task = items.popleft()
            pd = self._place
            p = instrument.PROBE
            if p is not None:
                p.on_access(self._loc("items"), True)
            if pd is not None:
                with pd.index_lock:
                    if p is not None:
                        p.on_access(self._loc("mask"), True)
                        p.on_access(self._loc("ready"), True)
                    pd.ready -= 1
                    if not items:
                        pd.mask &= ~self._bit
            return task

    def drain(self) -> List["Task"]:
        """Remove and return every task (oldest first), fixing the occupancy
        index. Resilience path: evacuating a failed place/worker slot."""
        with self._lock:
            items = self._items
            if not items:
                return []
            out = list(items)
            items.clear()
            pd = self._place
            p = instrument.PROBE
            if p is not None:
                p.on_access(self._loc("items"), True)
            if pd is not None:
                with pd.index_lock:
                    if p is not None:
                        p.on_access(self._loc("mask"), True)
                        p.on_access(self._loc("ready"), True)
                    pd.ready -= len(out)
                    pd.mask &= ~self._bit
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def peek_names(self) -> List[str]:
        """Snapshot of task names, oldest first (diagnostics only)."""
        with self._lock:
            return [t.name for t in self._items]


class UnsyncWorkerDeque(WorkerDeque):
    """Lock-free slot for single-threaded engines: identical semantics to
    :class:`WorkerDeque`, zero lock traffic, exact occupancy updates."""

    __slots__ = ()

    def push(self, task: "Task") -> bool:
        items = self._items
        newly = not items
        items.append(task)
        pd = self._place
        if pd is not None:
            pd.mask |= self._bit
            pd.ready += 1
        return newly

    def pop(self) -> Optional["Task"]:
        items = self._items
        if not items:
            return None
        task = items.pop()
        pd = self._place
        if pd is not None:
            pd.ready -= 1
            if not items:
                pd.mask &= ~self._bit
        return task

    def steal(self) -> Optional["Task"]:
        items = self._items
        if not items:
            return None
        task = items.popleft()
        pd = self._place
        if pd is not None:
            pd.ready -= 1
            if not items:
                pd.mask &= ~self._bit
        return task

    def drain(self) -> List["Task"]:
        items = self._items
        if not items:
            return []
        out = list(items)
        items.clear()
        pd = self._place
        if pd is not None:
            pd.ready -= len(out)
            pd.mask &= ~self._bit
        return out

    def __len__(self) -> int:
        return len(self._items)

    def peek_names(self) -> List[str]:
        return [t.name for t in self._items]


class PlaceDeques:
    """The N deques of one place, plus its occupancy index.

    ``mask`` bit *i* is set iff slot *i* is non-empty; ``ready`` is the exact
    number of ready tasks across all slots. Both are maintained by the slots
    themselves on every push/pop/steal.
    """

    __slots__ = ("place", "slots", "mask", "ready", "index_lock")

    def __init__(
        self,
        place: "Place",
        num_workers: int,
        *,
        lock_cls: Type = threading.Lock,
    ):
        if num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        self.place = place
        self.mask = 0
        self.ready = 0
        self.index_lock = lock_cls()
        slot_cls = UnsyncWorkerDeque if lock_cls is NullLock else WorkerDeque
        self.slots: List[WorkerDeque] = [
            slot_cls(self, 1 << w, lock_cls) for w in range(num_workers)
        ]

    def push(self, task: "Task") -> bool:
        """Push to the creator's slot; True iff the slot flipped non-empty."""
        return self.slots[task.created_by].push(task)

    def pop_own(self, worker_id: int) -> Optional["Task"]:
        return self.slots[worker_id].pop()

    def steal_from_others(
        self, worker_id: int, victim_order: Sequence[int]
    ) -> Optional["Task"]:
        """Try to steal from each victim slot in the given order, skipping
        slots the occupancy mask shows empty (the mask snapshot may go stale
        under the threaded engine; the per-slot ``steal`` resolves that)."""
        mask = self.mask
        if not mask:
            return None
        slots = self.slots
        for v in victim_order:
            if v == worker_id or not (mask >> v) & 1:
                continue
            task = slots[v].steal()
            if task is not None:
                return task
        return None

    def total(self) -> int:
        """Ready tasks at this place — O(1) occupancy-counter read."""
        return self.ready

    def drain(self) -> List["Task"]:
        """Evacuate every slot (slot order, oldest first within a slot)."""
        out: List["Task"] = []
        for slot in self.slots:
            out.extend(slot.drain())
        return out


class DequeTable:
    """All deques of one runtime: ``table[place] -> PlaceDeques``."""

    def __init__(self, model: "PlatformModel", *, lock_cls: Type = threading.Lock):
        self._by_place_id: Dict[int, PlaceDeques] = {
            p.place_id: PlaceDeques(p, model.num_workers, lock_cls=lock_cls)
            for p in model
        }
        self.num_workers = model.num_workers

    def at(self, place: "Place") -> PlaceDeques:
        return self._by_place_id[place.place_id]

    def push(self, task: "Task") -> bool:
        """Push a task; True iff its slot flipped from empty to non-empty.
        (Reaches into the slot directly — one call instead of two on the
        per-spawn hot path.)"""
        place = task.place
        if place is None:
            raise ConfigError(f"task {task.name!r} has no target place")
        return self._by_place_id[place.place_id].slots[task.created_by].push(task)

    def total_ready(self) -> int:
        """Ready tasks runtime-wide: an O(places) sum over the maintained
        per-place counters — no slot walks, no lock traffic."""
        return sum(pd.ready for pd in self._by_place_id.values())

    def snapshot(self) -> Dict[str, int]:
        """Place name -> ready-task count (diagnostics, deadlock reports).

        Reads each place's occupancy counter exactly once: a single int read
        per place, so there is no check-then-recount TOCTOU window under the
        threaded executor.
        """
        out: Dict[str, int] = {}
        for pd in self._by_place_id.values():
            n = pd.ready
            if n:
                out[pd.place.name] = n
        return out
