"""Per-place, per-worker task deques (paper §II-B2).

Each place holds *N* deques, one per worker. The i-th deque at a place
contains only ready tasks spawned by worker *i*, which makes it trivial for a
searching worker to distinguish its own work (pop: LIFO, locality) from other
workers' work (steal: FIFO, load balancing) — exactly the Chase–Lev access
discipline, realised here with a lock per deque (contention is irrelevant
under the GIL and absent in the simulated executor).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.model import PlatformModel
    from repro.platform.place import Place
    from repro.runtime.task import Task


class WorkerDeque:
    """One worker's deque at one place. Owner pops newest; thieves steal oldest."""

    __slots__ = ("_lock", "_items")

    def __init__(self):
        self._lock = threading.Lock()
        self._items: deque = deque()

    def push(self, task: "Task") -> None:
        with self._lock:
            self._items.append(task)

    def pop(self) -> Optional["Task"]:
        """LIFO end — owner's access."""
        with self._lock:
            return self._items.pop() if self._items else None

    def steal(self) -> Optional["Task"]:
        """FIFO end — thief's access."""
        with self._lock:
            return self._items.popleft() if self._items else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def peek_names(self) -> List[str]:
        """Snapshot of task names, oldest first (diagnostics only)."""
        with self._lock:
            return [t.name for t in self._items]


class PlaceDeques:
    """The N deques of one place."""

    __slots__ = ("place", "slots")

    def __init__(self, place: "Place", num_workers: int):
        if num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        self.place = place
        self.slots: List[WorkerDeque] = [WorkerDeque() for _ in range(num_workers)]

    def push(self, task: "Task") -> None:
        self.slots[task.created_by].push(task)

    def pop_own(self, worker_id: int) -> Optional["Task"]:
        return self.slots[worker_id].pop()

    def steal_from_others(self, worker_id: int, victim_order) -> Optional["Task"]:
        """Try to steal from each victim slot in the given order."""
        for v in victim_order:
            if v == worker_id:
                continue
            task = self.slots[v].steal()
            if task is not None:
                return task
        return None

    def total(self) -> int:
        return sum(len(s) for s in self.slots)


class DequeTable:
    """All deques of one runtime: ``table[place] -> PlaceDeques``."""

    def __init__(self, model: "PlatformModel"):
        self._by_place_id: Dict[int, PlaceDeques] = {
            p.place_id: PlaceDeques(p, model.num_workers) for p in model
        }
        self.num_workers = model.num_workers

    def at(self, place: "Place") -> PlaceDeques:
        return self._by_place_id[place.place_id]

    def push(self, task: "Task") -> None:
        if task.place is None:
            raise ConfigError(f"task {task.name!r} has no target place")
        self._by_place_id[task.place.place_id].push(task)

    def total_ready(self) -> int:
        return sum(pd.total() for pd in self._by_place_id.values())

    def snapshot(self) -> Dict[str, int]:
        """Place name -> ready-task count (diagnostics, deadlock reports).

        Each place's count is read exactly once: calling ``total()`` twice
        per place (once to filter, once for the value) was both redundant
        lock traffic and a TOCTOU race under the threaded executor — the
        count could change between the check and the read.
        """
        out: Dict[str, int] = {}
        for pd in self._by_place_id.values():
            n = pd.total()
            if n:
                out[pd.place.name] = n
        return out
