"""Periodically-polling asynchronous completion tasks (paper §II-C1, steps 1-4
of the async-MPI flow; reused verbatim by the CUDA module, §II-C3).

A :class:`PollingService` owns a list of pending operations, each a
``poll() -> (done, value)`` callable paired with the promise to satisfy. When
the first watcher is added, the service spawns ONE polling task at its place
("a polling task is not created if one already exists"). Each execution of
the polling task sweeps the pending list, satisfies promises of completed
operations, and — if operations remain — re-arms itself after
``interval`` seconds of virtual time, yielding the worker to useful work in
between, exactly as the paper describes.

Event-driven backends (the simulated fabric, the simulated GPU) additionally
call :meth:`kick` when an operation completes so the sweep happens
immediately instead of waiting out the interval; the paper's real MPI had no
such signal, hence the interval. The ``eager_kick=False`` ablation reproduces
pure interval polling.

``adaptive=True`` (opt-in) adds exponential interval backoff: every sweep
that completes nothing doubles the re-arm interval up to ``max_interval``;
any sign of life — a kick, a new watcher, a sweep that completed something —
snaps it back to the base ``interval``. This trades polling-task overhead
against completion latency during quiet stretches. The default
(``adaptive=False``) is the paper's fixed-interval behavior and keeps sim
schedules bit-for-bit identical to earlier builds; flip the flag for the
ablation.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.platform.place import Place
from repro.runtime.future import Promise
from repro.runtime.runtime import HiperRuntime

PollFn = Callable[[], Tuple[bool, Any]]


class PollingService:
    """One module's pending-operation poller at one place."""

    def __init__(
        self,
        runtime: HiperRuntime,
        place: Place,
        *,
        module: str,
        interval: float = 2e-6,
        sweep_cost: float = 1e-7,
        eager_kick: bool = True,
        adaptive: bool = False,
        max_interval: Optional[float] = None,
        name: str = "poll",
    ):
        self.runtime = runtime
        self.place = place
        self.module = module
        self.interval = float(interval)
        self.sweep_cost = float(sweep_cost)
        self.eager_kick = eager_kick
        self.adaptive = adaptive
        #: Backoff ceiling for adaptive mode (default 64x the base interval).
        self.max_interval = (
            float(max_interval) if max_interval is not None
            else self.interval * 64.0
        )
        if self.max_interval < self.interval:
            raise ValueError(
                f"max_interval {self.max_interval} < interval {self.interval}")
        self.name = name
        # Pluggable lock discipline: a no-op lock under the single-threaded
        # simulated executor, a real threading.Lock under the threaded one.
        self._lock = runtime.executor.lock_class()
        self._pending: List[Tuple[PollFn, Promise]] = []
        self._task_live = False  # a polling task is scheduled or armed
        #: Arm generation. Every spawned sweep bumps it (under the lock), so
        #: an interval timer scheduled before an eager kick carries a stale
        #: epoch and becomes a no-op — previously that stale timer could run
        #: a second sweep for the same completion, charging ``sweep_cost``
        #: twice.
        self._epoch = 0
        self.sweeps = 0
        #: Current re-arm interval; equals ``interval`` unless adaptive
        #: backoff has widened it.
        self._cur_interval = self.interval
        self.backoffs = 0

    # -- public -----------------------------------------------------------
    def watch(self, poll_fn: PollFn, promise: Promise) -> None:
        """Register a pending operation; ensures a polling task exists."""
        with self._lock:
            self._pending.append((poll_fn, promise))
            self._cur_interval = self.interval  # new op: poll promptly again
            need_spawn = self._arm_locked()
        if need_spawn:
            self._spawn_sweep()

    def kick(self) -> None:
        """Ask for an immediate sweep (event-driven completion signal)."""
        if not self.eager_kick:
            return
        with self._lock:
            self._cur_interval = self.interval  # something happened: reset
            if not self._pending:
                return
            need_spawn = self._arm_locked()
        if need_spawn:
            self.runtime.stats.count(self.module, "poll_kicks")
            self._spawn_sweep()

    def _arm_locked(self) -> bool:
        """With the lock held: claim the (single) live polling task slot.
        Bumping the epoch invalidates any outstanding interval timer."""
        if self._task_live:
            return False
        self._task_live = True
        self._epoch += 1
        return True

    @property
    def outstanding(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- internals --------------------------------------------------------
    def _spawn_sweep(self) -> None:
        self.runtime.spawn(
            self._sweep, place=self.place, module=self.module,
            name=f"{self.module}-{self.name}", cost=self.sweep_cost,
            scope=self.runtime._poll_scope(),
        )

    def _sweep(self) -> None:
        self.sweeps += 1
        stats = self.runtime.stats
        stats.count(self.module, "poll_sweeps")
        with self._lock:
            pending, self._pending = self._pending, []
        still = []
        completed = []
        for poll_fn, promise in pending:
            done, value = poll_fn()
            if done:
                completed.append((promise, value))
            else:
                still.append((poll_fn, promise))
        if completed:
            stats.count(self.module, "futures_satisfied", len(completed))
        with self._lock:
            self._pending = still + self._pending  # keep ops registered mid-sweep
            remain = bool(self._pending)
            # While waiting out the interval no sweep task is live, so an
            # eager kick (event-driven completion) can schedule one early.
            self._task_live = False
            epoch = self._epoch
            if self.adaptive:
                if completed:
                    self._cur_interval = self.interval
                elif remain:
                    widened = min(self._cur_interval * 2.0, self.max_interval)
                    if widened > self._cur_interval:
                        self._cur_interval = widened
                        self.backoffs += 1
                        stats.count(self.module, "poll_backoffs")
            rearm_after = self._cur_interval
        # Satisfy outside the lock: callbacks may spawn or re-watch.
        for promise, value in completed:
            promise.put(value)
        if remain:
            # Re-arm after the (possibly backed-off) poll interval, yielding
            # the worker meanwhile. The timer carries the current epoch: if a
            # kick (or a re-watch from a completion callback) spawns a sweep
            # first, the epoch moves on and this timer becomes a no-op
            # instead of running a duplicate sweep.
            self.runtime.executor.call_later(
                rearm_after, lambda: self._rearm(epoch)
            )

    def _rearm(self, epoch: int) -> None:
        with self._lock:
            if epoch != self._epoch:
                return  # a kick/re-watch superseded this timer
            if not self._pending or not self._arm_locked():
                return  # drained meanwhile, or a sweep is already live
        self._spawn_sweep()

    def __repr__(self) -> str:
        return (
            f"PollingService({self.module}/{self.name}@{self.place.name}, "
            f"pending={self.outstanding}, sweeps={self.sweeps})"
        )
