"""The HiPER runtime facade: one instance per rank.

Owns the platform model copy, the deque table, worker states, installed
modules, the module-extensible operation namespace (paper §II-C item 4), and
copy-handler registrations (item 3). Task-creation APIs with the paper's
spellings live in :mod:`repro.runtime.api`; they resolve the ambient runtime
from the execution context and delegate to :meth:`HiperRuntime.spawn`.
"""

from __future__ import annotations

import types
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.platform.model import PlatformModel
from repro.platform.paths import WorkerPaths, make_paths
from repro.platform.place import Place, PlaceType
from repro.runtime.context import _tls, current_context
from repro.runtime.deques import DequeTable
from repro.runtime.finish import FinishScope
from repro.runtime.future import Future, Promise
from repro.runtime.task import Task, TaskState
from repro.runtime.worker import WorkerState
from repro.util.errors import (ConfigError, ModuleError, PlaceFailure,
                               RuntimeStateError)
from repro.util.rng import RngFactory
from repro.util.stats import RuntimeStats, StatsConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.base import Executor
    from repro.modules.base import HiperModule

CopyHandler = Callable[..., Future]


class HiperRuntime:
    """Generalized work-stealing runtime over a platform model (paper §II-B)."""

    def __init__(
        self,
        model: PlatformModel,
        executor: "Executor",
        paths: Union[str, WorkerPaths] = "default",
        rank: int = 0,
        nranks: int = 1,
        seed: int = 0,
        stats_config: Optional[StatsConfig] = None,
        path_kwargs: Optional[dict] = None,
    ):
        model.validate()
        self.model = model.freeze()
        self.executor = executor
        self.rank = rank
        self.nranks = nranks
        self.rng_factory = RngFactory(seed).spawn("rank", rank)
        self.stats = RuntimeStats(stats_config)
        #: Pre-bound counter hook — spawn/dispatch call this per task.
        self._count = self.stats.count
        #: Direct counter dict for the per-spawn/per-completion tallies
        #: (None when stats are disabled; the flag is fixed at construction).
        self._counters = self.stats.counters if self.stats.config.enabled else None
        self.num_workers = model.num_workers

        if isinstance(paths, str):
            paths = make_paths(model, paths, **(path_kwargs or {}))
        paths.validate(model)
        if paths.num_workers != model.num_workers:
            raise ConfigError(
                f"paths for {paths.num_workers} workers but model declares "
                f"{model.num_workers}"
            )
        self.paths = paths

        # The executor supplies the lock discipline: real locks under the
        # threaded engine, no-op locks (and lock-free deque slots) under the
        # single-threaded simulated engine.
        self.deques = DequeTable(model, lock_cls=executor.lock_class)
        self._notify_every_push = executor.notify_on_every_push
        self.workers: List[WorkerState] = [
            WorkerState(
                w, rank, self, paths.pop[w], paths.steal[w],
                self.rng_factory.stream("steal", w),
            )
            for w in range(model.num_workers)
        ]

        self.modules: Dict[str, "HiperModule"] = {}
        #: Module-injected user-facing functions: ``rt.ops.MPI_Send(...)``.
        self.ops = types.SimpleNamespace()
        self._copy_handlers: Dict[Tuple[PlaceType, PlaceType], CopyHandler] = {}
        self._started = False
        self._shutdown = False
        self._daemon_scope: Optional[FinishScope] = None
        # Resilience redirect tables — empty in healthy runs; _enqueue pays
        # one flag test until a failure is injected (repro.resilience).
        self._redirects_active = False
        self._dead_places: Dict[int, Place] = {}   # place_id -> fallback
        self._worker_redirect: Dict[int, int] = {}  # dead wid -> live wid

        executor.register_runtime(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, modules: Sequence["HiperModule"] = ()) -> "HiperRuntime":
        """Initialize the runtime and its pluggable modules (paper §II-C)."""
        if self._started:
            raise RuntimeStateError("runtime already started")
        self._started = True
        for mod in modules:
            self.install(mod)
        return self

    def install(self, module: "HiperModule") -> None:
        if self._shutdown:
            raise RuntimeStateError("cannot install a module after shutdown")
        if module.name in self.modules:
            raise ModuleError(f"module {module.name!r} installed twice")
        self.modules[module.name] = module
        try:
            module.initialize(self)
        except Exception:
            del self.modules[module.name]
            raise

    def module(self, name: str) -> "HiperModule":
        try:
            return self.modules[name]
        except KeyError:
            raise ModuleError(
                f"module {name!r} is not installed on rank {self.rank}; "
                f"installed: {sorted(self.modules)}"
            ) from None

    def query_modules(self, capability: str) -> List["HiperModule"]:
        """Installed modules advertising ``capability`` (paper §IV future
        direction: modules discovering integration partners), in install
        order."""
        return [m for m in self.modules.values() if capability in m.capabilities]

    def shutdown(self) -> None:
        """Finalize modules in reverse install order. Idempotent."""
        if self._shutdown:
            return
        self._shutdown = True
        for name in reversed(list(self.modules)):
            self.modules[name].finalize(self)

    @property
    def started(self) -> bool:
        return self._started

    @property
    def is_shutdown(self) -> bool:
        return self._shutdown

    # ------------------------------------------------------------------
    # places
    # ------------------------------------------------------------------
    def place(self, name: str) -> Place:
        return self.model.place(name)

    @property
    def interconnect(self) -> Place:
        return self.model.first_of_type(PlaceType.INTERCONNECT)

    @property
    def sysmem(self) -> Place:
        return self.model.first_of_type(PlaceType.SYSTEM_MEM)

    def default_place(self) -> Place:
        """The place "closest to the current runtime thread" (paper: the
        target of plain ``async``): the first place on the current worker's
        pop path, or system memory outside worker context."""
        ctx = current_context()
        if ctx is not None and ctx.worker is not None and ctx.runtime is self:
            return ctx.worker.pop_path[0]
        return self.sysmem

    # ------------------------------------------------------------------
    # task creation (the engine room behind repro.runtime.api)
    # ------------------------------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Any],
        args: Tuple = (),
        *,
        place: Optional[Place] = None,
        name: str = "",
        module: str = "core",
        cost: float = 0.0,
        await_future: Optional[Future] = None,
        return_future: bool = False,
        scope: Optional[FinishScope] = None,
        kwargs: Optional[dict] = None,
    ) -> Optional[Future]:
        """Create a task. Returns its completion future iff ``return_future``.

        The task registers with ``scope`` (default: the spawning task's
        innermost open finish scope) immediately, even when its execution is
        predicated on ``await_future`` — so enclosing ``finish`` scopes
        correctly wait for dependent tasks that have not become ready yet.
        """
        if self._shutdown:
            raise RuntimeStateError("cannot spawn after runtime shutdown")
        if not self._started:
            raise RuntimeStateError("runtime not started; call start() first")

        # current_context() inlined — spawn is the framework's hottest entry.
        stack = _tls.stack
        ctx = stack[-1] if stack else None
        in_ctx = ctx is not None and ctx.runtime is self and ctx.worker is not None
        created_by = ctx.worker.wid if in_ctx else 0

        if scope is None:
            if ctx is not None and ctx.task is not None and ctx.runtime is self:
                scope = ctx.task.active_scope
            if scope is None:
                raise RuntimeStateError(
                    "spawn outside a task requires an explicit scope= "
                    "(use HiperRuntime.run for the root of a computation)"
                )
        if place is None:
            # Inline default_place(): we already resolved the context, and
            # this runs on every plain async_ spawn.
            place = ctx.worker.pop_path[0] if in_ctx else self.sysmem
        elif place not in self.model:
            raise ConfigError(f"place {place.name!r} belongs to a different model")

        promise = (
            Promise(name=f"{name or getattr(fn, '__name__', 'task')}-done")
            if return_future else None
        )
        # Positional args (matching Task.__init__'s order): keyword passing
        # costs noticeably more per call, and this runs once per task.
        slab = self.executor.task_slab
        if slab is None:
            task = Task(fn, args, kwargs, name, module, place,
                        created_by, scope, cost, promise, self.rank)
        else:  # flat sim engine: recycle a completed record
            task = slab.acquire(fn, args, kwargs, name, module, place,
                                created_by, scope, cost, promise, self.rank)
        scope.task_spawned()
        counters = self._counters
        if counters is not None:
            counters[(module, "tasks_spawned")] += 1
        tracer = self.executor.tracer
        if tracer is not None:
            tracer.record_spawn(self.rank, created_by, task.task_id,
                                task.name, self.executor.now())

        if await_future is not None and not await_future.satisfied:
            task.state = TaskState.CREATED

            def _on_dep_ready(fut: Future) -> None:
                try:
                    fut.value()
                except BaseException as exc:
                    # Dependency failed: fail the task without running it.
                    self.executor._fail(self, task, exc)
                    return
                self._enqueue(task)

            await_future.on_ready(_on_dep_ready)
        else:
            if await_future is not None:
                try:
                    await_future.value()
                except BaseException as exc:
                    self.executor._fail(self, task, exc)
                    return promise.get_future() if promise else None
            self._enqueue(task)
        return promise.get_future() if promise else None

    def _enqueue(self, task: Task) -> None:
        if self._redirects_active and not self._redirect(task):
            return  # task was killed instead of enqueued
        task.state = TaskState.READY
        task.release_time = self.executor.now()
        newly_occupied = self.deques.push(task)
        # Engines that track exact occupancy (the simulated executor) only
        # need a wake when a slot flips non-empty: while a slot is occupied,
        # every worker able to take from it provably stays maybe-ready.
        if newly_occupied or self._notify_every_push:
            self.executor.notify(self, task.place, task.created_by)

    def reenqueue(self, task: Task) -> None:
        """Put a resumed/yielded task back on its deque (continuations)."""
        self._enqueue(task)

    # ------------------------------------------------------------------
    # failure redirection (repro.resilience; see SimExecutor.fail_place)
    # ------------------------------------------------------------------
    def _redirect(self, task: Task) -> bool:
        """Reroute a task away from failed places/worker slots.

        Returns False when the task was killed instead: a partially-executed
        coroutine resuming onto a dead place lost its affine state with the
        place, so it fails with :class:`PlaceFailure` rather than silently
        migrating. Never-started tasks are safe to re-place and are simply
        redirected.
        """
        if task.place is not None:
            fb = self._dead_places.get(task.place.place_id)
            if fb is not None:
                if task.gen is not None:
                    self.stats.count("resilience", "tasks_killed")
                    self.executor._fail(self, task, PlaceFailure(
                        f"place {task.place.name!r} on rank {self.rank} "
                        f"failed while task {task.name!r} was suspended",
                        place=task.place.name))
                    return False
                task.place = fb
        nw = self._worker_redirect.get(task.created_by)
        if nw is not None:
            task.created_by = nw
        return True

    def mark_place_failed(self, place: Place, fallback: Place) -> None:
        """Redirect all future enqueues for ``place`` to ``fallback``."""
        self._dead_places[place.place_id] = fallback
        # Re-point earlier failures that were falling back onto this place.
        for pid, fb in list(self._dead_places.items()):
            if fb is place:
                self._dead_places[pid] = fallback
        self._redirects_active = True

    def mark_worker_failed(self, wid: int, target: int) -> None:
        """Credit future pushes into dead slot ``wid`` to worker ``target``."""
        self._worker_redirect[wid] = target
        for k, v in list(self._worker_redirect.items()):
            if v == wid:
                self._worker_redirect[k] = target
        self._redirects_active = True

    def _poll_scope(self) -> FinishScope:
        """The daemon scope for module polling tasks (paper §II-C1 step 3).

        Never closed: polling tasks must not hold user ``finish`` scopes open,
        and they re-arm from timer context where no task scope is ambient.
        """
        if self._daemon_scope is None:
            self._daemon_scope = FinishScope(
                name=f"daemon-r{self.rank}",
                lock_cls=self.executor.lock_class,
            )
        return self._daemon_scope

    # ------------------------------------------------------------------
    # root entry
    # ------------------------------------------------------------------
    def run(self, fn: Callable[[], Any], *, name: str = "root") -> Any:
        """Execute ``fn`` as a root task; drive to quiescence; return its value."""
        if not self._started:
            raise RuntimeStateError("runtime not started; call start() first")
        return self.executor.run_root(self, fn, name=name)

    # ------------------------------------------------------------------
    # copy handlers (paper §II-C item 3; used by async_copy)
    # ------------------------------------------------------------------
    def register_copy_handler(
        self, src_kind: PlaceType, dst_kind: PlaceType, handler: CopyHandler
    ) -> None:
        key = (src_kind, dst_kind)
        if key in self._copy_handlers:
            raise ModuleError(
                f"copy handler for {src_kind.value}->{dst_kind.value} already registered"
            )
        self._copy_handlers[key] = handler

    def copy_handler(self, src_kind: PlaceType, dst_kind: PlaceType) -> Optional[CopyHandler]:
        return self._copy_handlers.get((src_kind, dst_kind))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"HiperRuntime(rank={self.rank}/{self.nranks}, "
            f"workers={self.num_workers}, model={self.model.name!r}, "
            f"modules={sorted(self.modules)})"
        )
