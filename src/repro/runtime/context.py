"""Current-execution context: which (executor, runtime, worker, task) is
running on this OS thread right now.

Both executors maintain this context:

- the threaded executor has one OS thread per worker, so the context is a
  plain thread-local;
- the simulated executor multiplexes every simulated worker onto one OS
  thread and *stacks* contexts when it context-switches mid-``block_until``
  (help-first blocking re-enters the engine loop).

User-facing API functions (:mod:`repro.runtime.api`) resolve the current
context to know where to spawn, charge, and block.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator, Optional

from repro.util.errors import RuntimeStateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.base import Executor
    from repro.runtime.runtime import HiperRuntime
    from repro.runtime.task import Task
    from repro.runtime.worker import WorkerState


class ExecContext:
    """Immutable-ish snapshot of who is executing."""

    __slots__ = ("executor", "runtime", "worker", "task")

    def __init__(
        self,
        executor: "Executor",
        runtime: Optional["HiperRuntime"] = None,
        worker: Optional["WorkerState"] = None,
        task: Optional["Task"] = None,
    ):
        self.executor = executor
        self.runtime = runtime
        self.worker = worker
        self.task = task


class _ContextStack(threading.local):
    def __init__(self):
        self.stack = []


_tls = _ContextStack()


def push_context(ctx: ExecContext) -> None:
    _tls.stack.append(ctx)


def pop_context() -> ExecContext:
    if not _tls.stack:
        raise RuntimeStateError("context stack underflow (internal error)")
    return _tls.stack.pop()


def current_context() -> Optional[ExecContext]:
    """The innermost active context on this OS thread, or ``None``."""
    return _tls.stack[-1] if _tls.stack else None


def require_context() -> ExecContext:
    ctx = current_context()
    if ctx is None:
        raise RuntimeStateError(
            "this API must be called from inside a HiPER task or rank main "
            "(no active runtime context on this thread)"
        )
    return ctx


def context_depth() -> int:
    return len(_tls.stack)


class scoped_context:
    """``with scoped_context(ctx): ...`` — push/pop with exception safety.

    Inlines the stack access (rather than calling push_context/pop_context):
    this wraps every task segment, so two saved function calls per task are
    measurable on the dispatch hot path.
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: ExecContext):
        self._ctx = ctx

    def __enter__(self) -> ExecContext:
        ctx = self._ctx
        _tls.stack.append(ctx)
        return ctx

    def __exit__(self, *exc) -> None:
        _tls.stack.pop()


def iter_contexts() -> Iterator[ExecContext]:  # pragma: no cover - debug aid
    return iter(reversed(_tls.stack))
