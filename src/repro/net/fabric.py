"""The simulated interconnect fabric: timestamped message delivery between
ranks, with per-node NIC contention and non-overtaking pairwise order.

The fabric is communication-library-agnostic: MPI matching, OpenSHMEM
symmetric-memory operations, and UPC++ RPCs are all payloads to it. Each rank
registers one *sink* callable; deliveries invoke it from event context at the
delivery timestamp.

Guarantees:

- **pairwise FIFO**: messages from rank s to rank d are delivered in the
  order `transmit` was called (MPI non-overtaking; SHMEM put ordering per
  target under the default context).
- **determinism**: identical call sequences produce identical timestamps.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.exec.sim import SimExecutor
from repro.net.costmodel import NetworkModel
from repro.net.topology import FlatTopology, Topology
from repro.util.errors import CommError, ConfigError

Sink = Callable[[int, Any, float], None]  # (src_rank, payload, time) -> None


class SimFabric:
    """Cluster-wide message transport in virtual time."""

    def __init__(
        self,
        executor: SimExecutor,
        nranks: int,
        network: NetworkModel,
        ranks_per_node: int = 1,
        topology: Optional[Topology] = None,
    ):
        if nranks < 1:
            raise ConfigError(f"nranks must be >= 1, got {nranks}")
        if ranks_per_node < 1:
            raise ConfigError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
        self.executor = executor
        self.nranks = nranks
        self.network = network
        self.ranks_per_node = ranks_per_node
        #: Hop-distance model refining the wire latency (paper §I-A's
        #: "non-uniform interconnect"); flat (uniform) by default.
        self.topology = topology if topology is not None else FlatTopology()
        self.nnodes = (nranks + ranks_per_node - 1) // ranks_per_node
        self._sinks: Dict[int, Sink] = {}
        # Per-node NIC availability times (the congestion state).
        self._tx_avail: List[float] = [0.0] * self.nnodes
        self._rx_avail: List[float] = [0.0] * self.nnodes
        # Pairwise FIFO: last delivery time per (src, dst).
        self._pair_last: Dict[int, float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.ranks_per_node

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise CommError(f"rank {rank} out of range [0, {self.nranks})")

    def register_sink(self, rank: int, sink: Sink) -> None:
        self._check_rank(rank)
        if rank in self._sinks:
            raise CommError(f"rank {rank} already has a registered sink")
        self._sinks[rank] = sink

    # ------------------------------------------------------------------
    def transmit(
        self,
        src: int,
        dst: int,
        nbytes: int,
        payload: Any,
        *,
        on_injected: Optional[Callable[[float], None]] = None,
    ) -> float:
        """Send ``payload`` (conceptually ``nbytes`` long) from src to dst.

        Returns the *injection-complete* time (source buffer reusable; the
        completion point of buffered/eager sends). ``on_injected`` fires as an
        event at that time. The destination sink fires at delivery time.

        Must be called from a context where ``executor.now()`` is meaningful
        (a task on the src rank, or an event callback).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if nbytes < 0:
            raise CommError(f"negative message size {nbytes}")
        net = self.network
        t = self.executor.now()
        s_node, d_node = src // self.ranks_per_node, dst // self.ranks_per_node

        if src == dst:
            inject_done = t
            delivery = t  # self-sends complete immediately (local copy)
        elif s_node == d_node:
            inject_done = t + net.intra_node_time(nbytes)
            delivery = inject_done
        else:
            ser = net.serialization_time(nbytes)
            tx_start = max(t, self._tx_avail[s_node])
            self._tx_avail[s_node] = tx_start + ser
            inject_done = tx_start + ser
            arrival = (inject_done + net.latency
                       + self.topology.extra_latency(s_node, d_node))
            rx_start = max(arrival, self._rx_avail[d_node])
            self._rx_avail[d_node] = rx_start + ser
            delivery = rx_start + ser

        # Pairwise FIFO: never deliver before an earlier message on the pair.
        key = src * self.nranks + dst
        prev = self._pair_last.get(key, 0.0)
        delivery = max(delivery, prev)
        self._pair_last[key] = delivery

        self.messages_sent += 1
        self.bytes_sent += nbytes

        tracer = self.executor.tracer
        if tracer is not None:
            # Payloads from a FabricMux arrive as (channel, inner); the
            # channel doubles as the owning module's name in the trace.
            channel = (
                payload[0]
                if isinstance(payload, tuple) and payload
                and isinstance(payload[0], str)
                else "net"
            )
            tracer.record_message(src, dst, channel, nbytes, t, delivery)

        if on_injected is not None:
            self.executor.call_at(inject_done, lambda: on_injected(inject_done))
        sink = self._sinks.get(dst)
        if sink is None:
            raise CommError(
                f"rank {dst} has no registered message sink; was its "
                "communication backend initialized?"
            )
        self.executor.call_at(delivery, lambda: sink(src, payload, delivery))
        return inject_done

    # ------------------------------------------------------------------
    def cpu_send_overhead(self) -> float:
        """CPU seconds a sending task should ``charge`` per message."""
        return self.network.cpu_overhead

    def __repr__(self) -> str:
        return (
            f"SimFabric(nranks={self.nranks}, nodes={self.nnodes}, "
            f"net={self.network.name!r}, msgs={self.messages_sent})"
        )
