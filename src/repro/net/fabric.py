"""The simulated interconnect fabric: timestamped message delivery between
ranks, with per-node NIC contention and non-overtaking pairwise order.

The fabric is communication-library-agnostic: MPI matching, OpenSHMEM
symmetric-memory operations, and UPC++ RPCs are all payloads to it. Each rank
registers one *sink* callable; deliveries invoke it from event context at the
delivery timestamp.

Guarantees:

- **pairwise FIFO**: messages from rank s to rank d are delivered in the
  order `transmit` was called (MPI non-overtaking; SHMEM put ordering per
  target under the default context).
- **determinism**: identical call sequences produce identical timestamps.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exec.sim import SimExecutor
from repro.net.costmodel import NetworkModel
from repro.net.topology import FlatTopology, Topology
from repro.util.errors import CommError, ConfigError

Sink = Callable[[int, Any, float], None]  # (src_rank, payload, time) -> None

#: Fault verdict for one transmit: ``None`` (healthy), ``("drop",)``,
#: ``("corrupt",)``, or ``("delay", extra_seconds)``.
FaultHook = Callable[[int, int, int, Any], Optional[tuple]]


class CorruptedPayload:
    """Wrapper marking a payload corrupted in flight.

    Delivered in place of the original so receivers model a checksum
    failure: :class:`~repro.net.mux.FabricMux` discards it (sender-side
    retransmission recovers); raw sinks may inspect ``original``.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any):
        self.original = original

    def __repr__(self) -> str:
        return f"CorruptedPayload({self.original!r})"


def _deliver_wave(item: tuple) -> None:
    """Delivery trampoline for :meth:`SimFabric.transmit_wave` — one shared
    function for the whole wave instead of one closure per message."""
    sink, src, payload, delivery = item
    sink(src, payload, delivery)


class SimFabric:
    """Cluster-wide message transport in virtual time."""

    def __init__(
        self,
        executor: SimExecutor,
        nranks: int,
        network: NetworkModel,
        ranks_per_node: int = 1,
        topology: Optional[Topology] = None,
        max_message_bytes: Optional[int] = None,
    ):
        if nranks < 1:
            raise ConfigError(f"nranks must be >= 1, got {nranks}")
        if ranks_per_node < 1:
            raise ConfigError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
        self.executor = executor
        self.nranks = nranks
        self.network = network
        self.ranks_per_node = ranks_per_node
        #: Hop-distance model refining the wire latency (paper §I-A's
        #: "non-uniform interconnect"); flat (uniform) by default.
        self.topology = topology if topology is not None else FlatTopology()
        self.nnodes = (nranks + ranks_per_node - 1) // ranks_per_node
        self._sinks: Dict[int, Sink] = {}
        # Per-node NIC availability times (the congestion state).
        self._tx_avail: List[float] = [0.0] * self.nnodes
        self._rx_avail: List[float] = [0.0] * self.nnodes
        # Pairwise FIFO: last delivery time per (src, dst).
        self._pair_last: Dict[int, float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        if max_message_bytes is not None and max_message_bytes < 1:
            raise ConfigError(
                f"max_message_bytes must be >= 1, got {max_message_bytes}")
        #: Optional MTU-style payload ceiling; oversized sends raise CommError.
        self.max_message_bytes = max_message_bytes
        #: Optional fault-injection hook (``repro.resilience``): called per
        #: transmit, returns a verdict tuple or None. One attribute load +
        #: None test per message is the entire no-fault cost.
        self.fault_hook: Optional[FaultHook] = None
        #: Verdict applied to the most recent transmit (None = delivered
        #: clean). Senders with retry policies read this synchronously.
        self.last_fault: Optional[tuple] = None
        self.messages_dropped = 0
        self.messages_corrupted = 0
        self.messages_delayed = 0

    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.ranks_per_node

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise CommError(f"rank {rank} out of range [0, {self.nranks})")

    def register_sink(self, rank: int, sink: Sink, *, replace: bool = False) -> None:
        """Attach ``rank``'s message sink. A rank has exactly one sink;
        re-registering raises unless ``replace=True`` (tests that rebuild a
        rank's mux, failover to a fresh endpoint)."""
        self._check_rank(rank)
        if rank in self._sinks and not replace:
            raise CommError(f"rank {rank} already has a registered sink")
        self._sinks[rank] = sink

    def unregister_sink(self, rank: int) -> None:
        """Detach ``rank``'s sink. New transmits to the rank raise
        :class:`CommError` until a replacement is registered; messages
        already in flight deliver to the sink bound at send time."""
        self._check_rank(rank)
        if rank not in self._sinks:
            raise CommError(f"rank {rank} has no registered sink")
        del self._sinks[rank]

    # ------------------------------------------------------------------
    def transmit(
        self,
        src: int,
        dst: int,
        nbytes: int,
        payload: Any,
        *,
        on_injected: Optional[Callable[[float], None]] = None,
    ) -> float:
        """Send ``payload`` (conceptually ``nbytes`` long) from src to dst.

        Returns the *injection-complete* time (source buffer reusable; the
        completion point of buffered/eager sends). ``on_injected`` fires as an
        event at that time. The destination sink fires at delivery time.

        Must be called from a context where ``executor.now()`` is meaningful
        (a task on the src rank, or an event callback).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if nbytes < 0:
            raise CommError(f"negative message size {nbytes}")
        if self.max_message_bytes is not None and nbytes > self.max_message_bytes:
            raise CommError(
                f"message of {nbytes} bytes exceeds fabric limit of "
                f"{self.max_message_bytes} bytes (fragment it)")
        hook = self.fault_hook
        verdict = hook(src, dst, nbytes, payload) if hook is not None else None
        self.last_fault = verdict
        net = self.network
        t = self.executor.now()
        s_node, d_node = src // self.ranks_per_node, dst // self.ranks_per_node

        if src == dst:
            inject_done = t
            delivery = t  # self-sends complete immediately (local copy)
        elif s_node == d_node:
            inject_done = t + net.intra_node_time(nbytes)
            delivery = inject_done
        else:
            ser = net.serialization_time(nbytes)
            tx_start = max(t, self._tx_avail[s_node])
            self._tx_avail[s_node] = tx_start + ser
            inject_done = tx_start + ser
            arrival = (inject_done + net.latency
                       + self.topology.extra_latency(s_node, d_node))
            rx_start = max(arrival, self._rx_avail[d_node])
            self._rx_avail[d_node] = rx_start + ser
            delivery = rx_start + ser

        kind = verdict[0] if verdict is not None else None
        if kind == "delay":
            # Extra in-flight latency, applied before the FIFO clamp so later
            # messages on the pair cannot overtake the delayed one.
            delivery += verdict[1]
            self.messages_delayed += 1

        self.messages_sent += 1
        self.bytes_sent += nbytes

        sink = self._sinks.get(dst)
        if sink is None:
            raise CommError(
                f"rank {dst} has no registered message sink; was its "
                "communication backend initialized?"
            )

        if on_injected is not None:
            self.executor.call_at(inject_done, lambda: on_injected(inject_done))

        if kind == "drop":
            # Lost in flight: injection completed (the source buffer is
            # reusable) but nothing arrives and the pairwise-FIFO clamp does
            # not advance — later messages legitimately overtake a lost one.
            self.messages_dropped += 1
            return inject_done

        # Pairwise FIFO: never deliver before an earlier message on the pair.
        key = src * self.nranks + dst
        prev = self._pair_last.get(key, 0.0)
        delivery = max(delivery, prev)
        self._pair_last[key] = delivery

        tracer = self.executor.tracer
        if tracer is not None:
            # Payloads from a FabricMux arrive as (channel, inner); the
            # channel doubles as the owning module's name in the trace.
            channel = (
                payload[0]
                if isinstance(payload, tuple) and payload
                and isinstance(payload[0], str)
                else "net"
            )
            tracer.record_message(src, dst, channel, nbytes, t, delivery)

        if kind == "corrupt":
            self.messages_corrupted += 1
            payload = CorruptedPayload(payload)
        self.executor.call_at(delivery, lambda: sink(src, payload, delivery))
        return inject_done

    # ------------------------------------------------------------------
    def transmit_wave(
        self,
        src: int,
        dsts: Sequence[int],
        nbytes,
        payloads: Sequence[Any],
        *,
        ts: Optional[Sequence[float]] = None,
    ) -> List[float]:
        """Price and post a whole wave of messages from ``src`` in one call.

        Semantically a loop of :meth:`transmit` over ``(dsts[i], nbytes[i],
        payloads[i])`` issued at times ``ts[i]`` (default: ``executor.now()``
        for every message) — and *bit-for-bit* so: the per-message costs come
        from the same IEEE operations in the same order, the sequential NIC
        availability and pairwise-FIFO recurrences run per message, and the
        delivery events are posted in loop order so same-timestamp cohorts
        dispatch identically. What the wave saves is the per-message call
        chain: one pass computes vectorized serialization costs (``nbytes``
        may be a scalar or an array), and all deliveries are posted with a
        single ``call_at_batch``.

        Fault injection is inherently per-message (verdicts feed retry
        state), so waves refuse to run with a ``fault_hook`` installed —
        callers check :meth:`FabricMux.wave_capable` and fall back to the
        scalar loop. Returns the per-message injection-complete times.
        """
        if self.fault_hook is not None:
            raise CommError(
                "transmit_wave does not support fault injection; check "
                "wave_capable() and fall back to per-message transmit")
        self._check_rank(src)
        n = len(dsts)
        if len(payloads) != n:
            raise CommError(
                f"wave length mismatch: {n} destinations, "
                f"{len(payloads)} payloads")
        net = self.network
        if np.isscalar(nbytes):
            if nbytes < 0:
                raise CommError(f"negative message size {nbytes}")
            if (self.max_message_bytes is not None
                    and nbytes > self.max_message_bytes):
                raise CommError(
                    f"message of {nbytes} bytes exceeds fabric limit of "
                    f"{self.max_message_bytes} bytes (fragment it)")
            # Constant wire size: the scalar costs are shared by every
            # message (same inputs -> same floats as per-message calls).
            ser_all = net.serialization_time(nbytes)
            intra_all = net.intra_node_time(nbytes)
            sizes = [nbytes] * n
            sers = intras = None
            total_bytes = nbytes * n
        else:
            sizes = [int(b) for b in nbytes]
            for b in sizes:
                if b < 0:
                    raise CommError(f"negative message size {b}")
                if (self.max_message_bytes is not None
                        and b > self.max_message_bytes):
                    raise CommError(
                        f"message of {b} bytes exceeds fabric limit of "
                        f"{self.max_message_bytes} bytes (fragment it)")
            arr = np.asarray(sizes, dtype=np.float64)
            sers = net.serialization_time_vec(arr).tolist()
            intras = net.intra_node_time_vec(arr).tolist()
            ser_all = intra_all = 0.0
            total_bytes = sum(sizes)
        if ts is None:
            t_now = self.executor.now()
            ts = [t_now] * n

        rpn = self.ranks_per_node
        s_node = src // rpn
        lat = net.latency
        topo = self.topology
        tx_avail = self._tx_avail
        rx_avail = self._rx_avail
        pair_last = self._pair_last
        sinks = self._sinks
        nranks = self.nranks
        tracer = self.executor.tracer
        self.last_fault = None

        injects: List[float] = []
        deliveries: List[float] = []
        items: List[tuple] = []
        for i in range(n):
            dst = dsts[i]
            if not (0 <= dst < nranks):
                raise CommError(f"rank {dst} out of range [0, {nranks})")
            t = ts[i]
            payload = payloads[i]
            if sers is None:
                ser = ser_all
                intra = intra_all
            else:
                ser = sers[i]
                intra = intras[i]
            if src == dst:
                inject_done = t
                delivery = t
            elif dst // rpn == s_node:
                inject_done = t + intra
                delivery = inject_done
            else:
                avail = tx_avail[s_node]
                tx_start = avail if avail > t else t
                tx_avail[s_node] = inject_done = tx_start + ser
                d_node = dst // rpn
                arrival = inject_done + lat + topo.extra_latency(s_node, d_node)
                avail = rx_avail[d_node]
                rx_start = avail if avail > arrival else arrival
                rx_avail[d_node] = delivery = rx_start + ser

            sink = sinks.get(dst)
            if sink is None:
                raise CommError(
                    f"rank {dst} has no registered message sink; was its "
                    "communication backend initialized?"
                )
            key = src * nranks + dst
            prev = pair_last.get(key, 0.0)
            if prev > delivery:
                delivery = prev
            pair_last[key] = delivery
            if tracer is not None:
                channel = (
                    payload[0]
                    if isinstance(payload, tuple) and payload
                    and isinstance(payload[0], str)
                    else "net"
                )
                tracer.record_message(src, dst, channel, sizes[i], t, delivery)
            injects.append(inject_done)
            deliveries.append(delivery)
            items.append((sink, src, payload, delivery))

        self.messages_sent += n
        self.bytes_sent += total_bytes
        self.executor.call_at_batch(deliveries, _deliver_wave, items)
        return injects

    # ------------------------------------------------------------------
    def cpu_send_overhead(self) -> float:
        """CPU seconds a sending task should ``charge`` per message."""
        return self.network.cpu_overhead

    def __repr__(self) -> str:
        return (
            f"SimFabric(nranks={self.nranks}, nodes={self.nnodes}, "
            f"net={self.network.name!r}, msgs={self.messages_sent})"
        )
