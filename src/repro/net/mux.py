"""Per-rank protocol multiplexer over the fabric.

A rank registers exactly one sink with the fabric; multiple communication
modules (MPI, OpenSHMEM, UPC++) coexist in one process in the paper, so each
module claims a named *channel* on its rank's mux. Payloads travel as
``(channel, inner_payload)`` and are dispatched to the owning module's
handler at delivery time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.net.fabric import SimFabric
from repro.util.errors import CommError

ChannelHandler = Callable[[int, Any, float], None]  # (src, payload, time)


class FabricMux:
    """One per rank; shared by every communication module on that rank.

    With a :class:`~repro.util.stats.RuntimeStats` attached, the mux accounts
    per-module communication volume — every channel is a module name, so
    ``stats.counter("mpi", "bytes_sent")`` etc. come for free for all
    communication modules (paper §V: the unified runtime sees all work,
    including every message each module moves).
    """

    def __init__(self, fabric: SimFabric, rank: int, *, stats=None):
        self.fabric = fabric
        self.rank = rank
        self.stats = stats
        self._handlers: Dict[str, ChannelHandler] = {}
        fabric.register_sink(rank, self._dispatch)

    def register_channel(self, name: str, handler: ChannelHandler) -> None:
        if name in self._handlers:
            raise CommError(
                f"channel {name!r} already registered on rank {self.rank}"
            )
        self._handlers[name] = handler

    def transmit(
        self,
        dst: int,
        channel: str,
        payload: Any,
        nbytes: int,
        *,
        on_injected: Optional[Callable[[float], None]] = None,
    ) -> float:
        if channel not in self._handlers:
            # Channels are registered symmetrically during module init, so a
            # send on an unknown channel is a local registration bug.
            raise CommError(
                f"rank {self.rank} sending on unregistered channel {channel!r}"
            )
        if self.stats is not None:
            self.stats.count(channel, "msgs_sent")
            self.stats.count(channel, "bytes_sent", nbytes)
            self.stats.observe(channel, "msg_size", nbytes)
        return self.fabric.transmit(
            self.rank, dst, nbytes, (channel, payload), on_injected=on_injected
        )

    def _dispatch(self, src: int, wrapped: Any, time: float) -> None:
        channel, payload = wrapped
        handler = self._handlers.get(channel)
        if handler is None:
            raise CommError(
                f"rank {self.rank} received message on unregistered channel "
                f"{channel!r} from rank {src}"
            )
        if self.stats is not None:
            self.stats.count(channel, "msgs_received")
        handler(src, payload, time)

    @property
    def nranks(self) -> int:
        return self.fabric.nranks

    def __repr__(self) -> str:
        return f"FabricMux(rank={self.rank}, channels={sorted(self._handlers)})"
