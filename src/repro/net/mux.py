"""Per-rank protocol multiplexer over the fabric.

A rank registers exactly one sink with the fabric; multiple communication
modules (MPI, OpenSHMEM, UPC++) coexist in one process in the paper, so each
module claims a named *channel* on its rank's mux. Payloads travel as
``(channel, inner_payload)`` and are dispatched to the owning module's
handler at delivery time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.net.coalesce import ChannelCoalescer, CoalescedBatch, CoalescePolicy
from repro.net.fabric import CorruptedPayload, SimFabric
from repro.util.errors import CommError

ChannelHandler = Callable[[int, Any, float], None]  # (src, payload, time)


class FabricMux:
    """One per rank; shared by every communication module on that rank.

    With a :class:`~repro.util.stats.RuntimeStats` attached, the mux accounts
    per-module communication volume — every channel is a module name, so
    ``stats.counter("mpi", "bytes_sent")`` etc. come for free for all
    communication modules (paper §V: the unified runtime sees all work,
    including every message each module moves).
    """

    def __init__(self, fabric: SimFabric, rank: int, *, stats=None):
        self.fabric = fabric
        self.rank = rank
        self.stats = stats
        self._handlers: Dict[str, ChannelHandler] = {}
        #: channel -> RetryPolicy; dropped/corrupted sends on these channels
        #: are retransmitted with backoff instead of silently vanishing.
        self._retry: Dict[str, Any] = {}
        #: channel -> ChannelCoalescer; sends on these channels are buffered
        #: per destination and transmitted as CoalescedBatch envelopes.
        self._coalescers: Dict[str, ChannelCoalescer] = {}
        fabric.register_sink(rank, self._dispatch)

    def register_channel(self, name: str, handler: ChannelHandler) -> None:
        if name in self._handlers:
            raise CommError(
                f"channel {name!r} already registered on rank {self.rank}"
            )
        self._handlers[name] = handler

    def unregister_channel(self, name: str) -> None:
        """Tear down ``name``: pending coalesced messages are flushed first,
        then the handler, retry policy, and coalescer are dropped. Messages
        still in flight to this channel raise at delivery — unregister at
        quiesce points."""
        if name not in self._handlers:
            raise CommError(
                f"channel {name!r} not registered on rank {self.rank}"
            )
        co = self._coalescers.pop(name, None)
        if co is not None:
            co.flush(reason="teardown")
        del self._handlers[name]
        self._retry.pop(name, None)

    def close(self) -> None:
        """Tear down every channel and detach this mux from the fabric, so
        a replacement mux can claim the rank without ``replace=True``."""
        for name in list(self._handlers):
            self.unregister_channel(name)
        self.fabric.unregister_sink(self.rank)

    def channels(self) -> List[str]:
        """Registered channel names (registration order)."""
        return list(self._handlers)

    # ------------------------------------------------------------------
    def enable_coalescing(
        self, channel: str, policy: Optional[CoalescePolicy] = None,
    ) -> ChannelCoalescer:
        """Buffer sends on ``channel`` per destination and transmit packed
        :class:`CoalescedBatch` envelopes per ``policy`` (default
        :class:`CoalescePolicy`). Opt-in: virtual-time schedules change (for
        the better, usually) when enabled. Returns the coalescer."""
        if channel not in self._handlers:
            raise CommError(
                f"cannot coalesce unregistered channel {channel!r} "
                f"(rank {self.rank})"
            )
        if channel in self._coalescers:
            raise CommError(
                f"coalescing already enabled on channel {channel!r} "
                f"(rank {self.rank})"
            )
        co = ChannelCoalescer(self, channel,
                              policy if policy is not None else CoalescePolicy())
        self._coalescers[channel] = co
        return co

    def disable_coalescing(self, channel: str) -> None:
        """Flush any pending buffers and route ``channel`` sends per-message
        again."""
        co = self._coalescers.pop(channel, None)
        if co is not None:
            co.flush(reason="teardown")

    def coalescer(self, channel: str) -> Optional[ChannelCoalescer]:
        return self._coalescers.get(channel)

    def flush(self, channel: Optional[str] = None,
              dst: Optional[int] = None) -> int:
        """Explicitly flush coalescing buffers (one channel or all; one
        destination or all). Ordering points — SHMEM ``quiet``, MPI waits on
        buffered sends, barriers — call this. Returns batches transmitted."""
        if channel is not None:
            co = self._coalescers.get(channel)
            return co.flush(dst) if co is not None else 0
        return sum(co.flush(dst) for co in self._coalescers.values())

    def set_retry_policy(self, channel: str, policy) -> None:
        """Retransmit dropped/corrupted messages on ``channel`` per
        ``policy`` (a :class:`repro.resilience.RetryPolicy`). The fabric
        reports a fault verdict synchronously at send time
        (:attr:`SimFabric.last_fault`), so retransmission is deterministic
        and requires no acknowledgement protocol. Retransmits relax the
        pairwise-FIFO guarantee for the retried message (as on real
        networks); see ``docs/resilience.md`` for the ordering caveats."""
        if channel not in self._handlers:
            raise CommError(
                f"cannot set a retry policy on unregistered channel "
                f"{channel!r} (rank {self.rank})"
            )
        self._retry[channel] = policy

    def transmit(
        self,
        dst: int,
        channel: str,
        payload: Any,
        nbytes: int,
        *,
        on_injected: Optional[Callable[[float], None]] = None,
    ) -> float:
        if channel not in self._handlers:
            # Channels are registered symmetrically during module init, so a
            # send on an unknown channel is a local registration bug.
            raise CommError(
                f"rank {self.rank} sending on unregistered channel {channel!r}"
            )
        if self.stats is not None:
            self.stats.count(channel, "msgs_sent")
            self.stats.count(channel, "bytes_sent", nbytes)
            self.stats.observe(channel, "msg_size", nbytes)
        co = self._coalescers.get(channel)
        if co is not None:
            # Buffered: the envelope transmits at a flush point, but local
            # completion (on_injected) fires at buffer time — the caller
            # snapshotted the payload, so its buffer is already reusable.
            co.send(dst, payload, nbytes, on_injected)
            return self.fabric.executor.now()
        return self._transmit_attempt(dst, channel, payload, nbytes,
                                      on_injected, 0)

    def wave_capable(self, channel: str) -> bool:
        """True when sends on ``channel`` can use :meth:`transmit_wave`:
        the channel is registered without a coalescer (waves are already
        batches; buffering them per-destination would double-batch), the
        fabric prices waves, and no fault hook is installed (verdicts feed
        per-message retry state). Callers that fall back to a per-message
        loop get bit-identical schedules — the wave is an amortization of
        Python-level call overhead, not a timing change."""
        return (
            channel in self._handlers
            and channel not in self._coalescers
            and self.fabric.fault_hook is None
            and hasattr(self.fabric, "transmit_wave")
        )

    def transmit_wave(
        self,
        dsts: List[int],
        channel: str,
        payloads: List[Any],
        nbytes,
        *,
        ts: Optional[List[float]] = None,
    ) -> List[float]:
        """Send one message per ``(dsts[i], payloads[i])`` as a priced wave
        (see :meth:`SimFabric.transmit_wave`). ``nbytes`` is a scalar wire
        size shared by every message or a per-message sequence; ``ts`` gives
        per-message issue times (callers that charge CPU per message pass
        the post-charge timestamps). Only valid when :meth:`wave_capable`
        holds for ``channel``."""
        if channel not in self._handlers:
            raise CommError(
                f"rank {self.rank} sending on unregistered channel {channel!r}"
            )
        n = len(dsts)
        if self.stats is not None:
            self.stats.count(channel, "msgs_sent", n)
            if isinstance(nbytes, (list, tuple)):
                self.stats.count(channel, "bytes_sent", sum(nbytes))
                for b in nbytes:
                    self.stats.observe(channel, "msg_size", b)
            else:
                self.stats.count(channel, "bytes_sent", nbytes * n)
                for _ in range(n):
                    self.stats.observe(channel, "msg_size", nbytes)
        wrapped = [(channel, p) for p in payloads]
        return self.fabric.transmit_wave(self.rank, dsts, nbytes, wrapped,
                                         ts=ts)

    def _transmit_attempt(
        self, dst: int, channel: str, payload: Any, nbytes: int,
        on_injected: Optional[Callable[[float], None]], attempt: int,
    ) -> float:
        fab = self.fabric
        # on_injected fires on the first attempt only: injection-complete
        # means "source buffer reusable", which stays true across retransmits.
        inject = fab.transmit(self.rank, dst, nbytes, (channel, payload),
                              on_injected=on_injected if attempt == 0 else None)
        verdict = fab.last_fault
        if verdict is not None and verdict[0] in ("drop", "corrupt"):
            policy = self._retry.get(channel)
            if policy is not None:
                if attempt + 1 < policy.max_attempts:
                    if self.stats is not None:
                        self.stats.count(channel, "retries")
                    fab.executor.call_later(
                        policy.backoff.delay(attempt),
                        lambda: self._transmit_attempt(
                            dst, channel, payload, nbytes, None, attempt + 1),
                    )
                elif self.stats is not None:
                    self.stats.count(channel, "retries_exhausted")
        return inject

    def _dispatch(self, src: int, wrapped: Any, time: float) -> None:
        if type(wrapped) is CorruptedPayload:
            # Models a receiver-side checksum failure: the message is
            # discarded; sender-side retransmission (set_retry_policy) is
            # what recovers it.
            if self.stats is not None:
                self.stats.count("net", "msgs_corrupt_discarded")
            return
        channel, payload = wrapped
        handler = self._handlers.get(channel)
        if handler is None:
            raise CommError(
                f"rank {self.rank} received message on unregistered channel "
                f"{channel!r} from rank {src}"
            )
        if type(payload) is CoalescedBatch:
            # Unpack and dispatch each inner payload in send order (FIFO
            # within the batch, and batches obey the fabric's pairwise FIFO).
            if self.stats is not None:
                self.stats.count(channel, "batches_received")
                self.stats.count(channel, "msgs_received", len(payload))
            for inner in payload.payloads:
                handler(src, inner, time)
            return
        if self.stats is not None:
            self.stats.count(channel, "msgs_received")
        handler(src, payload, time)

    @property
    def nranks(self) -> int:
        return self.fabric.nranks

    def __repr__(self) -> str:
        return f"FabricMux(rank={self.rank}, channels={sorted(self._handlers)})"
