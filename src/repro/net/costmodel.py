"""LogGP-style interconnect cost model (DESIGN.md §2 substitution for the
Cray Aries/Gemini networks of Edison/Titan).

A message of ``n`` bytes from rank *s* to rank *d*:

- **intra-node** (same node): shared-memory copy — ``intra_latency + n /
  intra_bandwidth``; no NIC involvement.
- **inter-node**: the *sender's node NIC* serializes the message
  (``inj_overhead + n / bandwidth``), the wire adds ``latency``, and the
  *receiver's node NIC* serializes it again on the way in. NICs are per-NODE
  resources shared by every rank on the node — this is what makes flat
  (process-per-core) all-to-alls collapse at scale while hybrid
  (process-per-node) runs survive, the central shape of the paper's Fig. 5.

Incast and outcast congestion emerge from NIC availability times rather than
an explicit congestion term, keeping the model deterministic and composable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.util.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """Interconnect parameters (seconds / bytes-per-second)."""

    name: str = "generic"
    latency: float = 1.5e-6          # wire latency, one way
    bandwidth: float = 8e9           # per-NIC serialization bandwidth
    inj_overhead: float = 1.0e-6     # per-message overhead at each NIC
    intra_latency: float = 4e-7      # same-node rank-to-rank latency
    intra_bandwidth: float = 3e10    # same-node copy bandwidth
    cpu_overhead: float = 4e-7       # CPU time charged to the sending task
    #: Wire framing of a coalesced envelope: one batch header plus a small
    #: per-message header. A batch of n messages pays ``inj_overhead`` ONCE
    #: (that is the amortization coalescing buys) but still carries
    #: ``batch_header_bytes + n * msg_header_bytes`` of framing.
    batch_header_bytes: int = 32
    msg_header_bytes: int = 8

    def __post_init__(self):
        for field in ("latency", "bandwidth", "inj_overhead", "intra_latency",
                      "intra_bandwidth", "cpu_overhead", "batch_header_bytes",
                      "msg_header_bytes"):
            if getattr(self, field) < 0:
                raise ConfigError(f"network parameter {field} must be non-negative")
        if self.bandwidth == 0 or self.intra_bandwidth == 0:
            raise ConfigError("bandwidths must be positive")

    def intra_node_time(self, nbytes: int) -> float:
        return self.intra_latency + nbytes / self.intra_bandwidth

    def serialization_time(self, nbytes: int) -> float:
        """Time one NIC is busy with this message (either direction)."""
        return self.inj_overhead + nbytes / self.bandwidth

    # -- vectorized forms ----------------------------------------------
    # One array op prices a whole wave (an all-to-all's worth of messages
    # from one PE, or a coalesced flush across destinations). Elementwise
    # IEEE arithmetic on float64 is bit-identical to the scalar methods,
    # which is what lets SimFabric.transmit_wave keep schedule digests
    # unchanged relative to a loop of transmit() calls.

    def intra_node_time_vec(self, nbytes: np.ndarray) -> np.ndarray:
        return self.intra_latency + np.asarray(nbytes, dtype=np.float64) \
            / self.intra_bandwidth

    def serialization_time_vec(self, nbytes: np.ndarray) -> np.ndarray:
        return self.inj_overhead + np.asarray(nbytes, dtype=np.float64) \
            / self.bandwidth

    def batch_wire_bytes(self, payload_bytes: int, count: int) -> int:
        """Wire size of a coalesced envelope carrying ``count`` messages
        totalling ``payload_bytes`` of payload."""
        return payload_bytes + self.batch_header_bytes + count * self.msg_header_bytes

    def lookahead(self, topology=None) -> float:
        """Minimum wire time between ranks on *different* nodes — the
        conservative-window lookahead of the sharded DES engine.

        Every inter-node message, coalesced or not, is serialized by the
        sending NIC and again by the receiving NIC (``>= inj_overhead``
        each — a coalesced envelope is still one message and pays both),
        plus the one-way wire ``latency``; a ``topology`` adds its minimum
        extra hop latency between distinct nodes. Nothing sent at virtual
        time ``t`` can therefore be *delivered* before ``t + lookahead``,
        which is the bound that makes windowed shard execution safe.

        Raises :class:`ConfigError` when the bound is not strictly positive:
        a zero lookahead would let cross-shard messages take effect inside
        the window they were sent in, livelocking the protocol.
        """
        extra = topology.min_extra_latency() if topology is not None else 0.0
        bound = 2.0 * self.inj_overhead + self.latency + extra
        if not bound > 0.0:
            raise ConfigError(
                f"network {self.name!r} reports non-positive lookahead "
                f"{bound}; the conservative window protocol needs a positive "
                "minimum wire time (set latency or inj_overhead > 0)")
        return bound


#: Interconnects of the paper's evaluation machines (§III-A). Parameters are
#: public rough figures for Aries (XC30) and Gemini (XK7); the reproduction
#: needs relative magnitudes, not exact values.
NETWORKS: Dict[str, NetworkModel] = {
    "aries": NetworkModel(
        name="aries", latency=1.3e-6, bandwidth=8e9, inj_overhead=8e-7
    ),
    "gemini": NetworkModel(
        name="gemini", latency=1.5e-6, bandwidth=5e9, inj_overhead=1.2e-6
    ),
    "generic": NetworkModel(),
}


def network(name: str) -> NetworkModel:
    try:
        return NETWORKS[name]
    except KeyError:
        raise ConfigError(
            f"unknown network {name!r}; known: {sorted(NETWORKS)}"
        ) from None
