"""Message coalescing for the comm stack (opt-in, per channel).

Fine-grained PGAS communication — ISx's bucket exchange, Graph500's frontier
pushes — pays one :meth:`SimFabric.transmit` event, one mux dispatch, and one
injection overhead *per message*. Classic aggregation designs (UPC++/GASNet
conduits) batch small messages per destination and flush on a watermark or
timeout, amortizing the per-message injection cost across the batch. This
module is that layer for :class:`~repro.net.mux.FabricMux`:

- :class:`CoalescePolicy` — the flush rules: message-count watermark, byte
  watermark, and a virtual-time timeout bounding how long a lone message may
  sit buffered.
- :class:`ChannelCoalescer` — per-(channel) aggregation state with one
  pending buffer per destination. ``send`` appends; a flush packs the
  buffered payloads into ONE :class:`CoalescedBatch` envelope and hands it to
  the mux's retry-aware transmit path.
- :class:`CoalescedBatch` — the wire format. The receiving mux unpacks it
  and dispatches each inner payload to the channel handler in FIFO order.

Determinism contract (see ``docs/comm-internals.md``):

- Coalescing **disabled** (the default) leaves every code path untouched —
  sim schedules are bit-for-bit identical to a build without this module.
- Coalescing **enabled** is itself deterministic: watermarks are exact
  counts, timeouts are virtual-time events, and flush order is the arrival
  order of the first buffered message per destination.
- Fault injection applies to the *envelope*: a dropped or corrupted batch
  loses/discards every message in it, and a per-channel retry policy
  retransmits the WHOLE batch — exactly once per attempt, replayed
  deterministically through the same :meth:`FabricMux._transmit_attempt`
  path as single messages.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.util.errors import ConfigError

#: Per-message record buffered by the coalescer: (payload, nbytes).
_Pending = Tuple[Any, int]


@dataclasses.dataclass(frozen=True)
class CoalescePolicy:
    """Flush rules for one coalesced channel.

    A destination's buffer is flushed when it reaches ``max_msgs`` messages
    or ``max_bytes`` of payload, when ``flush_interval`` virtual seconds pass
    since its first buffered message, or when the owner flushes explicitly
    (quiet/fence/barrier ordering points).
    """

    max_msgs: int = 32
    max_bytes: int = 1 << 15
    flush_interval: float = 5e-6

    def __post_init__(self):
        if self.max_msgs < 1:
            raise ConfigError(f"max_msgs must be >= 1, got {self.max_msgs}")
        if self.max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {self.max_bytes}")
        if self.flush_interval <= 0:
            raise ConfigError(
                f"flush_interval must be positive, got {self.flush_interval}")


class CoalescedBatch:
    """Wire envelope carrying several same-channel payloads to one rank."""

    __slots__ = ("payloads", "payload_bytes")

    def __init__(self, payloads: List[Any], payload_bytes: int):
        self.payloads = payloads
        self.payload_bytes = payload_bytes

    def __len__(self) -> int:
        return len(self.payloads)

    def __repr__(self) -> str:
        return (f"CoalescedBatch(n={len(self.payloads)}, "
                f"bytes={self.payload_bytes})")


class _DestBuffer:
    """Pending messages for one destination, plus the timer epoch guarding
    its timeout flush (a flush bumps the epoch, so stale timers no-op)."""

    __slots__ = ("pending", "payload_bytes", "epoch")

    def __init__(self):
        self.pending: List[_Pending] = []
        self.payload_bytes = 0
        self.epoch = 0


class ChannelCoalescer:
    """Aggregation buffers for one (rank, channel) pair."""

    def __init__(self, mux, channel: str, policy: CoalescePolicy):
        self.mux = mux
        self.channel = channel
        self.policy = policy
        self._dests: Dict[int, _DestBuffer] = {}
        self.batches_sent = 0
        self.msgs_coalesced = 0

    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        payload: Any,
        nbytes: int,
        on_injected: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Buffer one message; flush if a watermark trips, else ensure a
        timeout timer is armed for this destination.

        ``on_injected`` (local completion: "source buffer reusable") fires
        synchronously at *buffer* time, not at envelope injection — the
        caller snapshotted the payload before transmitting, so its buffer is
        already reusable the moment it is buffered. Deferring it to the
        flush would stall tasks blocking on a put's local completion until
        an unrelated flush trigger.
        """
        buf = self._dests.get(dst)
        if buf is None:
            buf = self._dests[dst] = _DestBuffer()
        first = not buf.pending
        buf.pending.append((payload, nbytes))
        buf.payload_bytes += nbytes
        if on_injected is not None:
            on_injected(self.mux.fabric.executor.now())
        self.msgs_coalesced += 1
        pol = self.policy
        if len(buf.pending) >= pol.max_msgs:
            self._flush_dest(dst, buf, "watermark_msgs")
        elif buf.payload_bytes >= pol.max_bytes:
            self._flush_dest(dst, buf, "watermark_bytes")
        elif first:
            epoch = buf.epoch
            self.mux.fabric.executor.call_later(
                pol.flush_interval, lambda: self._timeout_flush(dst, epoch))

    def flush(self, dst: Optional[int] = None, *, reason: str = "explicit") -> int:
        """Flush one destination's buffer (or all of them); returns the
        number of batches transmitted. Flush order for ``dst=None`` is
        destination-id order, which is deterministic."""
        sent = 0
        if dst is not None:
            buf = self._dests.get(dst)
            if buf is not None and buf.pending:
                self._flush_dest(dst, buf, reason)
                sent += 1
            return sent
        for d in sorted(self._dests):
            buf = self._dests[d]
            if buf.pending:
                self._flush_dest(d, buf, reason)
                sent += 1
        return sent

    @property
    def pending_msgs(self) -> int:
        return sum(len(b.pending) for b in self._dests.values())

    # ------------------------------------------------------------------
    def _timeout_flush(self, dst: int, epoch: int) -> None:
        buf = self._dests.get(dst)
        if buf is None or epoch != buf.epoch or not buf.pending:
            return  # a watermark/explicit flush superseded this timer
        self._flush_dest(dst, buf, "timeout")

    def _flush_dest(self, dst: int, buf: _DestBuffer, reason: str) -> None:
        pending, buf.pending = buf.pending, []
        payload_bytes, buf.payload_bytes = buf.payload_bytes, 0
        buf.epoch += 1
        batch = CoalescedBatch([p for p, _ in pending], payload_bytes)
        wire = self.mux.fabric.network.batch_wire_bytes(
            payload_bytes, len(pending))
        self.batches_sent += 1
        stats = self.mux.stats
        if stats is not None:
            stats.count(self.channel, "batches_sent")
            stats.count(self.channel, f"flush_{reason}")
            stats.observe(self.channel, "batch_occupancy", len(pending))
        # Route through the mux's retry-aware path: a dropped/corrupted
        # envelope retransmits the WHOLE batch per the channel's policy.
        # (Local-completion callbacks already fired at buffer time.)
        self.mux._transmit_attempt(dst, self.channel, batch, wire, None, 0)

    def __repr__(self) -> str:
        return (f"ChannelCoalescer({self.channel!r}, "
                f"pending={self.pending_msgs}, batches={self.batches_sent})")
