"""Simulated interconnect: LogGP-style cost model and the message fabric."""

from repro.net.coalesce import ChannelCoalescer, CoalescedBatch, CoalescePolicy
from repro.net.costmodel import NETWORKS, NetworkModel, network
from repro.net.fabric import SimFabric
from repro.net.mux import FabricMux
from repro.net.procfabric import ProcFabric
from repro.net.topology import (
    TOPOLOGIES,
    DragonflyTopology,
    FlatTopology,
    Topology,
    TorusTopology,
)

__all__ = [
    "NETWORKS", "NetworkModel", "network", "SimFabric", "FabricMux",
    "ProcFabric",
    "ChannelCoalescer", "CoalescedBatch", "CoalescePolicy",
    "TOPOLOGIES", "DragonflyTopology", "FlatTopology", "Topology",
    "TorusTopology",
]
