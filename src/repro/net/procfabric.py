"""Real multiprocess fabric: Unix-domain sockets between rank processes.

One :class:`ProcFabric` instance lives in each rank's process and implements
the same duck-typed surface as :class:`repro.net.fabric.SimFabric` — so
:class:`repro.net.mux.FabricMux` and every protocol backend above it (SHMEM,
MPI control channel, coalescing, buffer pool) run unchanged over real wires:

- ``register_sink(rank, sink)`` / ``unregister_sink(rank)`` (local rank only)
- ``transmit(src, dst, nbytes, payload, on_injected=) -> inject_time``
- ``nranks`` / ``node_of`` / ``cpu_send_overhead`` / ``last_fault``

Wire protocol: each rank binds ``fab-<rank>.sock`` in the run's rendezvous
directory; connections are opened lazily (first send to a peer) with a
retry loop that tolerates peers still binding. Exactly one connection
carries each ordered (src → dst) pair, so the pairwise-FIFO guarantee the
protocol layers rely on holds by TCP-like stream ordering. Frames are
length-prefixed pickles of ``(src, payload)``; a reader thread per inbound
connection dispatches frames straight into the local mux sink (the protocol
backends were made thread-safe for exactly this).

Injection semantics mirror the simulator's eager model: ``on_injected``
fires once the frame is serialized and handed to the kernel — the source
buffer is reusable — and pooled payload snapshots are released back to
their :class:`~repro.util.bufpool.BufferPool` at that point (the receiving
process gets its own copy from the pickle, so sender-side recycling is
safe).

Fault injection is not supported on this fabric (``last_fault`` is always
``None``); the simulator remains the chaos/verify engine of record.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.util.errors import CommError

_HDR = struct.Struct(">I")

#: Sub-second backoff while waiting for a peer's socket to appear.
_CONNECT_POLL = 0.01


def send_frame(sock: socket.socket, obj: Any) -> int:
    """Write one length-prefixed pickled frame (the procfabric wire format).

    Shared with the sharded DES engine's coordinator links, which speak the
    same framing over socketpairs. Returns the frame's payload length.
    """
    frame = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HDR.pack(len(frame)) + frame)
    return len(frame)


def recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF (peer closed)."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Any:
    """Read one length-prefixed pickled frame; None on clean EOF."""
    hdr = recv_exact(sock, _HDR.size)
    if hdr is None:
        return None
    (length,) = _HDR.unpack(hdr)
    body = recv_exact(sock, length)
    if body is None:
        return None
    return pickle.loads(body)


def _release_pooled_deep(obj: Any, _depth: int = 0) -> None:
    """Release every pooled snapshot reachable inside a wire payload.

    Payload shapes are shallow — protocol tuples, MPI envelopes (``.data``),
    coalesced batches (``.payloads``) — so a bounded recursive walk finds
    every :class:`PooledArray` that was serialized into the frame.
    """
    if _depth > 4:
        return
    if isinstance(obj, np.ndarray):
        release = getattr(obj, "release", None)
        if release is not None:
            release()
        return
    if isinstance(obj, (tuple, list)):
        for item in obj:
            _release_pooled_deep(item, _depth + 1)
        return
    payloads = getattr(obj, "payloads", None)
    if payloads is not None:
        for item in payloads:
            _release_pooled_deep(item, _depth + 1)
        return
    data = getattr(obj, "data", None)
    if isinstance(data, np.ndarray):
        _release_pooled_deep(data, _depth + 1)


class ProcFabric:
    """One rank's endpoint of the socket mesh (SimFabric duck-type)."""

    #: Protocol layers key on this to select process-safe strategies
    #: (e.g. ShmemModule picks the wire-ack backend).
    process_spmd = True

    #: SimFabric API parity: no fault injection on the real fabric.
    last_fault = None
    fault_hook = None

    def __init__(
        self,
        executor,
        nranks: int,
        rank: int,
        sockdir: str,
        *,
        ranks_per_node: int = 1,
        connect_timeout: float = 30.0,
        send_overhead: float = 0.0,
    ):
        if not (0 <= rank < nranks):
            raise CommError(f"rank {rank} out of range [0, {nranks})")
        self.executor = executor
        self.nranks = nranks
        self.rank = rank
        self.sockdir = sockdir
        self.ranks_per_node = max(1, ranks_per_node)
        self.connect_timeout = connect_timeout
        self._send_overhead = send_overhead
        self._sink: Optional[Callable[[int, Any, float], None]] = None
        # Frames that arrive before the local sink registers are parked here
        # and replayed at registration (startup race: a fast peer's first
        # message can beat this rank's module init). After the sink has been
        # unregistered (teardown), late frames are counted as drops instead.
        self._pending: List[Any] = []
        self._sink_lock = threading.Lock()
        self._had_sink = False
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._readers: List[threading.Thread] = []
        self._out: Dict[int, socket.socket] = {}
        self._out_locks: Dict[int, threading.Lock] = {}
        self._conn_lock = threading.Lock()
        self._closing = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped_at_teardown = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def sock_path(self, rank: int) -> str:
        return os.path.join(self.sockdir, f"fab-{rank}.sock")

    def start(self) -> None:
        """Bind this rank's socket and start accepting peers."""
        path = self.sock_path(self.rank)
        lst = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            lst.bind(path)
        except OSError as exc:
            lst.close()
            raise CommError(
                f"rank {self.rank} failed to bind fabric socket {path}: {exc}"
            ) from exc
        lst.listen(self.nranks + 2)
        self._listener = lst
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"procfab-accept-r{self.rank}",
            daemon=True,
        )
        self._accept_thread.start()

    def close(self) -> None:
        """Tear the endpoint down: stop accepting, close every connection,
        join reader threads, remove the socket file. Safe to call twice."""
        if self._closing:
            return
        self._closing = True
        lst, self._listener = self._listener, None
        if lst is not None:
            try:
                # Unblock accept() with a self-connection, then close.
                poke = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                poke.settimeout(0.2)
                try:
                    poke.connect(self.sock_path(self.rank))
                except OSError:
                    pass
                finally:
                    poke.close()
                lst.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._out.values())
            self._out.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for th in list(self._readers):
            th.join(timeout=2.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        try:
            os.unlink(self.sock_path(self.rank))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # SimFabric surface
    # ------------------------------------------------------------------
    def register_sink(self, rank: int, sink, replace: bool = False) -> None:
        if rank != self.rank:
            raise CommError(
                f"ProcFabric endpoint of rank {self.rank} cannot register a "
                f"sink for rank {rank}: peers live in other processes"
            )
        with self._sink_lock:
            if self._sink is not None and not replace:
                raise CommError(f"rank {rank} already has a registered sink")
            self._sink = sink
            self._had_sink = True
            backlog, self._pending = self._pending, []
        for src, payload, t in backlog:
            sink(src, payload, t)

    def unregister_sink(self, rank: int) -> None:
        if rank != self.rank:
            raise CommError(
                f"ProcFabric endpoint of rank {self.rank} cannot unregister "
                f"rank {rank}")
        self._sink = None

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def cpu_send_overhead(self) -> float:
        return self._send_overhead

    def transmit(
        self,
        src: int,
        dst: int,
        nbytes: int,
        payload: Any,
        on_injected: Optional[Callable[[float], None]] = None,
    ) -> float:
        """Ship ``payload`` to ``dst``; returns the (wall-clock) inject time.

        Thread-safe: workers and delivery threads may transmit concurrently;
        a per-destination lock keeps each stream's frames intact (and
        ordered, preserving pairwise FIFO).
        """
        if src != self.rank:
            raise CommError(
                f"ProcFabric endpoint of rank {self.rank} asked to send "
                f"as rank {src}")
        if not (0 <= dst < self.nranks):
            raise CommError(f"dst rank {dst} out of range [0, {self.nranks})")
        if dst == self.rank:
            # Loopback: no serialization, no socket — deliver inline exactly
            # like the simulator's zero-copy self-send. Ordering with respect
            # to socket traffic is irrelevant (single endpoint).
            t = self.executor.now()
            self.messages_sent += 1
            self.bytes_sent += int(nbytes)
            if on_injected is not None:
                on_injected(t)
            self._deliver(src, payload, t)
            return t
        frame = pickle.dumps((src, payload), protocol=pickle.HIGHEST_PROTOCOL)
        conn, lock = self._connection(dst)
        try:
            with lock:
                conn.sendall(_HDR.pack(len(frame)) + frame)
        except OSError as exc:
            if self._closing:
                self.messages_dropped_at_teardown += 1
                return self.executor.now()
            raise CommError(
                f"rank {self.rank} -> {dst} send failed: {exc}") from exc
        t = self.executor.now()
        self.messages_sent += 1
        self.bytes_sent += int(nbytes)
        if on_injected is not None:
            on_injected(t)
        # The receiver unpickles its own copies; recycle our snapshots now.
        _release_pooled_deep(payload)
        return t

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _connection(self, dst: int):
        with self._conn_lock:
            conn = self._out.get(dst)
            if conn is not None:
                return conn, self._out_locks[dst]
        # Connect outside the registry lock (may block while the peer is
        # still binding); only one winner is kept if two threads race.
        conn = self._dial(dst)
        with self._conn_lock:
            existing = self._out.get(dst)
            if existing is not None:
                conn.close()
                return existing, self._out_locks[dst]
            self._out[dst] = conn
            lock = self._out_locks[dst] = threading.Lock()
        return conn, lock

    def _dial(self, dst: int) -> socket.socket:
        path = self.sock_path(dst)
        deadline = time.monotonic() + self.connect_timeout
        while True:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.connect(path)
                hello = pickle.dumps(("hello", self.rank))
                sock.sendall(_HDR.pack(len(hello)) + hello)
                return sock
            except OSError as exc:
                sock.close()
                if self._closing:
                    raise CommError(
                        f"rank {self.rank} dialing rank {dst} during "
                        "teardown") from exc
                if time.monotonic() > deadline:
                    raise CommError(
                        f"rank {self.rank} could not reach rank {dst} at "
                        f"{path} within {self.connect_timeout}s: {exc}"
                    ) from exc
                time.sleep(_CONNECT_POLL)

    def _accept_loop(self) -> None:
        lst = self._listener
        while lst is not None and not self._closing:
            try:
                conn, _ = lst.accept()
            except OSError:
                return
            if self._closing:
                conn.close()
                return
            th = threading.Thread(
                target=self._reader_loop, args=(conn,),
                name=f"procfab-reader-r{self.rank}", daemon=True,
            )
            self._readers.append(th)
            th.start()

    def _reader_loop(self, conn: socket.socket) -> None:
        src = -1
        try:
            while True:
                frame = self._read_frame(conn)
                if frame is None:
                    return
                kind, body = frame
                if kind == "hello":
                    src = body
                    continue
                self._deliver(kind, body, self.executor.now())
        except OSError:
            return  # peer closed mid-read during teardown
        except pickle.UnpicklingError:
            if not self._closing:
                raise
        finally:
            conn.close()
            _ = src

    def _read_frame(self, conn: socket.socket):
        return recv_frame(conn)

    @staticmethod
    def _read_exact(conn: socket.socket, n: int):
        return recv_exact(conn, n)

    def _deliver(self, src: int, payload: Any, t: float) -> None:
        sink = self._sink
        if sink is None:
            with self._sink_lock:
                if self._sink is None:
                    if not self._had_sink and not self._closing:
                        # Startup race: our modules haven't registered yet;
                        # park the frame for replay at registration.
                        self._pending.append((src, payload, t))
                        return
                    # Late frame during teardown: the protocol layers quiesce
                    # before close, so anything arriving now is a stray ack.
                    self.messages_dropped_at_teardown += 1
                    return
                sink = self._sink
        sink(src, payload, t)

    def __repr__(self) -> str:
        return (f"ProcFabric(rank={self.rank}/{self.nranks}, "
                f"sent={self.messages_sent})")
