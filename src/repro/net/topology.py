"""Interconnect topologies: hop distances refining the wire latency.

The paper's abstract platform model (§I-A) calls for "a high-performance,
non-uniform interconnect"; the base cost model charges a flat wire latency.
A :class:`Topology` adds the non-uniformity: per-hop latency between nodes at
topological distance > 1. Three families cover the evaluation platforms:

- :class:`FlatTopology` — every pair one hop (the base model's behaviour);
- :class:`TorusTopology` — k-ary n-dimensional torus (Titan's Gemini is a
  3-D torus);
- :class:`DragonflyTopology` — groups of nodes, all-to-all between groups
  (Edison's Aries network), max 3 hops (in-group, global, in-group).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.util.errors import ConfigError


class Topology:
    """Interface: hop count between two node ids."""

    #: extra wire latency per hop beyond the first, seconds
    per_hop_latency: float = 3e-7

    def hops(self, a: int, b: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def extra_latency(self, a: int, b: int) -> float:
        """Latency added on top of the base one-hop wire latency."""
        if a == b:
            return 0.0
        return max(0, self.hops(a, b) - 1) * self.per_hop_latency

    def min_extra_latency(self) -> float:
        """Infimum of :meth:`extra_latency` over *distinct* node pairs.

        Feeds :meth:`repro.net.costmodel.NetworkModel.lookahead`: the
        conservative window protocol needs a lower bound on inter-node wire
        time, so this must never exceed the true minimum. All three built-in
        families contain an adjacent (one-hop) pair — extra latency 0 — so
        the base default is exact for them; a topology whose *closest*
        distinct pair is more than one hop apart should override this to
        tighten the sharded engine's lookahead.
        """
        return 0.0

    def diameter(self, nnodes: int) -> int:
        """Max hop count over all pairs in a machine of ``nnodes``."""
        return max(
            self.hops(a, b) for a in range(nnodes) for b in range(nnodes)
        ) if nnodes > 1 else 0


class FlatTopology(Topology):
    """Uniform network: one hop between any two distinct nodes."""

    def hops(self, a: int, b: int) -> int:
        return 0 if a == b else 1


class TorusTopology(Topology):
    """k-ary n-dimensional torus (e.g. Titan's 3-D Gemini torus).

    Node ids map to coordinates in row-major order over ``dims``; hop count
    is the sum of per-dimension wrap-around distances.
    """

    def __init__(self, dims: Sequence[int], per_hop_latency: float = 3e-7):
        if not dims or any(d < 1 for d in dims):
            raise ConfigError(f"torus dims must be positive, got {dims}")
        self.dims = tuple(int(d) for d in dims)
        self.per_hop_latency = per_hop_latency

    @property
    def size(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def coords(self, node: int) -> Tuple[int, ...]:
        if not (0 <= node < self.size):
            raise ConfigError(f"node {node} outside torus of {self.size}")
        out = []
        for d in reversed(self.dims):
            out.append(node % d)
            node //= d
        return tuple(reversed(out))

    def hops(self, a: int, b: int) -> int:
        ca, cb = self.coords(a), self.coords(b)
        total = 0
        for x, y, d in zip(ca, cb, self.dims):
            delta = abs(x - y)
            total += min(delta, d - delta)
        return total

    @classmethod
    def fit(cls, nnodes: int, ndims: int = 3,
            per_hop_latency: float = 3e-7) -> "TorusTopology":
        """Smallest near-cubic torus holding ``nnodes``."""
        if nnodes < 1:
            raise ConfigError("nnodes must be >= 1")
        side = 1
        while side ** ndims < nnodes:
            side += 1
        return cls([side] * ndims, per_hop_latency)


class DragonflyTopology(Topology):
    """Groups with all-to-all global links (Edison's Aries).

    Within a group: 1 hop. Across groups: in-group hop to the gateway,
    one global hop, in-group hop at the destination — up to 3 hops.
    """

    def __init__(self, group_size: int = 16, per_hop_latency: float = 3e-7):
        if group_size < 1:
            raise ConfigError("group_size must be >= 1")
        self.group_size = int(group_size)
        self.per_hop_latency = per_hop_latency

    def hops(self, a: int, b: int) -> int:
        if a == b:
            return 0
        if a // self.group_size == b // self.group_size:
            return 1
        return 3


TOPOLOGIES = {
    "flat": FlatTopology,
    "torus": TorusTopology,
    "dragonfly": DragonflyTopology,
}
