"""Shard-local view of the simulated fabric for the sharded DES engine.

A :class:`ShardFabric` is a :class:`~repro.net.fabric.SimFabric` that owns a
contiguous *node-aligned* slice of the ranks (see
:class:`repro.exec.shards.ShardPlan`). Traffic between two local ranks is
priced and delivered exactly as in the base class — same floats, same event
order — which is what keeps per-rank schedules deterministic. Traffic to a
rank owned by another shard is priced on the send side only (sender-NIC
serialization, wire latency, topology hops) and parked in a per-destination-
shard outbox; the window coordinator ferries outboxes between shards at each
window barrier and the receiving shard finishes the pricing (receiver-NIC
contention, pairwise FIFO) in a deterministic ``(arrival, src, seq)`` total
order.

The split mirrors the cost model's structure: everything the *sender's* node
contributes is known at send time, everything the *receiver's* node
contributes depends only on receiver-side state, and the wire in between is
bounded below by :meth:`NetworkModel.lookahead` — the bound that makes the
conservative window protocol safe.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.net.fabric import SimFabric, _deliver_wave
from repro.util.errors import CommError

#: A cross-shard message in flight: everything the receiving shard needs to
#: finish pricing and deliver it. ``seq`` is a per-sending-shard monotone
#: counter so same-arrival messages have a deterministic total order.
WireMsg = Tuple[float, int, int, int, int, Any]  # (arrival, src, seq, dst, nbytes, payload)


class ShardFabric(SimFabric):
    """One shard's slice of the cluster fabric."""

    #: Marks a mixed-process fabric for module backend selection (analogous
    #: to ``ProcFabric.process_spmd``): same-shard peers are in-process,
    #: cross-shard peers are not.
    shard_spmd = True

    def __init__(self, executor, nranks, network, *, plan, shard_id,
                 ranks_per_node=1, topology=None, max_message_bytes=None):
        super().__init__(executor, nranks, network,
                         ranks_per_node=ranks_per_node, topology=topology,
                         max_message_bytes=max_message_bytes)
        self.plan = plan
        self.shard_id = shard_id
        self.lo, self.hi = plan.bounds[shard_id]
        #: Cross-shard messages awaiting the next window barrier, keyed by
        #: destination shard.
        self._outboxes: Dict[int, List[WireMsg]] = {}
        self._send_seq = 0
        self.cross_shard_msgs = 0
        self.cross_shard_bytes = 0

    # ------------------------------------------------------------------
    def is_local(self, rank: int) -> bool:
        return self.lo <= rank < self.hi

    def register_sink(self, rank: int, sink, *, replace: bool = False) -> None:
        if not self.is_local(rank):
            raise CommError(
                f"rank {rank} is not owned by shard {self.shard_id} "
                f"[{self.lo}, {self.hi})")
        super().register_sink(rank, sink, replace=replace)

    # ------------------------------------------------------------------
    def transmit(self, src, dst, nbytes, payload, *, on_injected=None):
        if self.is_local(dst):
            return super().transmit(src, dst, nbytes, payload,
                                    on_injected=on_injected)
        return self._transmit_remote(
            self.executor.now(), src, dst, nbytes, payload, on_injected)

    def _transmit_remote(self, t, src, dst, nbytes, payload, on_injected):
        """Sender-side half of a cross-shard transmit at virtual time ``t``."""
        self._check_rank(src)
        self._check_rank(dst)
        if not self.is_local(src):
            raise CommError(
                f"shard {self.shard_id} cannot send on behalf of remote "
                f"rank {src}")
        if nbytes < 0:
            raise CommError(f"negative message size {nbytes}")
        if self.max_message_bytes is not None and nbytes > self.max_message_bytes:
            raise CommError(
                f"message of {nbytes} bytes exceeds fabric limit of "
                f"{self.max_message_bytes} bytes (fragment it)")
        if self.fault_hook is not None:
            raise CommError(
                "fault injection is not supported across shards; run with "
                "shards=1")
        net = self.network
        # Node-aligned partitioning guarantees cross-shard means cross-node,
        # so this is always the inter-node branch of the cost model.
        s_node = src // self.ranks_per_node
        d_node = dst // self.ranks_per_node
        ser = net.serialization_time(nbytes)
        tx_start = max(t, self._tx_avail[s_node])
        self._tx_avail[s_node] = inject_done = tx_start + ser
        arrival = (inject_done + net.latency
                   + self.topology.extra_latency(s_node, d_node))
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.cross_shard_msgs += 1
        self.cross_shard_bytes += nbytes
        seq = self._send_seq
        self._send_seq = seq + 1
        dshard = self.plan.shard_of(dst)
        self._outboxes.setdefault(dshard, []).append(
            (arrival, src, seq, dst, nbytes, payload))
        if on_injected is not None:
            self.executor.call_at(inject_done, lambda: on_injected(inject_done))
        return inject_done

    # ------------------------------------------------------------------
    def transmit_wave(self, src, dsts, nbytes, payloads, *, ts=None):
        if all(self.lo <= d < self.hi for d in dsts):
            return super().transmit_wave(src, dsts, nbytes, payloads, ts=ts)
        if self.fault_hook is not None:
            raise CommError(
                "transmit_wave does not support fault injection; check "
                "wave_capable() and fall back to per-message transmit")
        n = len(dsts)
        if len(payloads) != n:
            raise CommError(
                f"wave length mismatch: {n} destinations, "
                f"{len(payloads)} payloads")
        sizes = [nbytes] * n if np.isscalar(nbytes) else [int(b) for b in nbytes]
        if ts is None:
            t_now = self.executor.now()
            ts = [t_now] * n
        injects: List[float] = []
        for i in range(n):
            dst = dsts[i]
            if self.is_local(dst):
                injects.append(self._transmit_local_at(
                    ts[i], src, dst, sizes[i], payloads[i]))
            else:
                injects.append(self._transmit_remote(
                    ts[i], src, dst, sizes[i], payloads[i], None))
        return injects

    def _transmit_local_at(self, t, src, dst, nbytes, payload):
        """One local message of a mixed wave, issued at virtual time ``t``.

        Mirrors :meth:`SimFabric.transmit` (no fault hook — waves refuse
        them) so the floats match the all-local wave path bit for bit.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if nbytes < 0:
            raise CommError(f"negative message size {nbytes}")
        if self.max_message_bytes is not None and nbytes > self.max_message_bytes:
            raise CommError(
                f"message of {nbytes} bytes exceeds fabric limit of "
                f"{self.max_message_bytes} bytes (fragment it)")
        net = self.network
        rpn = self.ranks_per_node
        s_node, d_node = src // rpn, dst // rpn
        if src == dst:
            inject_done = delivery = t
        elif s_node == d_node:
            inject_done = delivery = t + net.intra_node_time(nbytes)
        else:
            ser = net.serialization_time(nbytes)
            tx_start = max(t, self._tx_avail[s_node])
            self._tx_avail[s_node] = inject_done = tx_start + ser
            arrival = (inject_done + net.latency
                       + self.topology.extra_latency(s_node, d_node))
            rx_start = max(arrival, self._rx_avail[d_node])
            self._rx_avail[d_node] = delivery = rx_start + ser
        self.messages_sent += 1
        self.bytes_sent += nbytes
        sink = self._sinks.get(dst)
        if sink is None:
            raise CommError(
                f"rank {dst} has no registered message sink; was its "
                "communication backend initialized?"
            )
        key = src * self.nranks + dst
        prev = self._pair_last.get(key, 0.0)
        delivery = max(delivery, prev)
        self._pair_last[key] = delivery
        tracer = self.executor.tracer
        if tracer is not None:
            channel = (
                payload[0]
                if isinstance(payload, tuple) and payload
                and isinstance(payload[0], str)
                else "net"
            )
            tracer.record_message(src, dst, channel, nbytes, t, delivery)
        self.executor.call_at(delivery, lambda: sink(src, payload, delivery))
        return inject_done

    # ------------------------------------------------------------------
    def take_outboxes(self) -> Dict[int, List[WireMsg]]:
        """Drain and return the per-destination-shard outboxes."""
        out, self._outboxes = self._outboxes, {}
        return out

    def inject_remote(self, msgs: Sequence[WireMsg]) -> None:
        """Finish pricing and post incoming cross-shard messages.

        Called at a window barrier with every message routed to this shard
        this round. Messages are applied in ``(arrival, src, seq)`` order —
        a total order identical on every replay, and consistent with
        per-pair send order because sender-NIC serialization makes arrivals
        monotone per source — then run through the receiver-side recurrences
        (NIC availability, pairwise FIFO) exactly as the base class would.
        """
        if not msgs:
            return
        net = self.network
        rpn = self.ranks_per_node
        deliveries: List[float] = []
        items: List[tuple] = []
        for arrival, src, _seq, dst, nb, payload in sorted(
                msgs, key=lambda m: (m[0], m[1], m[2])):
            d_node = dst // rpn
            ser = net.serialization_time(nb)
            rx_start = max(arrival, self._rx_avail[d_node])
            self._rx_avail[d_node] = delivery = rx_start + ser
            sink = self._sinks.get(dst)
            if sink is None:
                raise CommError(
                    f"rank {dst} has no registered message sink; was its "
                    "communication backend initialized?"
                )
            key = src * self.nranks + dst
            prev = self._pair_last.get(key, 0.0)
            delivery = max(delivery, prev)
            self._pair_last[key] = delivery
            deliveries.append(delivery)
            items.append((sink, src, payload, delivery))
        self.executor.call_at_batch(deliveries, _deliver_wave, items)

    def __repr__(self) -> str:
        return (
            f"ShardFabric(shard={self.shard_id}, ranks=[{self.lo}, {self.hi}), "
            f"nranks={self.nranks}, net={self.network.name!r}, "
            f"msgs={self.messages_sent}, cross={self.cross_shard_msgs})"
        )
