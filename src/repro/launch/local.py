"""Local launcher: rank processes via :mod:`multiprocessing`.

The default for single-node runs. Uses the ``fork`` start method where the
platform offers it — child processes inherit the parent's loaded modules and
the job object in memory, so startup is milliseconds and the job's module
factories need not be picklable. Falls back to ``spawn`` elsewhere, which
requires a fully picklable job (same constraint as
:class:`~repro.launch.shell.SubprocessLauncher`).
"""

from __future__ import annotations

import multiprocessing
from typing import Optional

from repro.launch import Launcher, ProcHandle, register_launcher
from repro.util.errors import ConfigError


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def fork_worker(target, args, *, name: str, rank: int = -1) -> "_MpHandle":
    """Start a fork-inherited worker process and return its handle.

    The sharded DES engine ships callable mains and module factories to its
    shard workers by fork inheritance (they need not be picklable), so unlike
    :class:`LocalLauncher` there is no ``spawn`` fallback: platforms without
    ``fork`` must run with ``shards=1``.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ConfigError(
            "sharded execution requires the 'fork' start method, which this "
            "platform does not offer; run with shards=1")
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=target, args=args, name=name, daemon=False)
    proc.start()
    return _MpHandle(proc, rank)


class _MpHandle(ProcHandle):
    def __init__(self, proc: multiprocessing.Process, rank: int):
        self._proc = proc
        self.rank = rank

    def poll(self) -> Optional[int]:
        return None if self._proc.is_alive() else self._proc.exitcode

    def terminate(self) -> None:
        if self._proc.is_alive():
            self._proc.terminate()

    def kill(self) -> None:
        if self._proc.is_alive():
            self._proc.kill()

    def join(self, timeout: Optional[float] = None) -> None:
        self._proc.join(timeout)

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid


@register_launcher
class LocalLauncher(Launcher):
    name = "local"
    aliases = ("fork", "mp")

    def launch(self, job, rank: int) -> ProcHandle:
        from repro.exec.procs import procs_child_main

        ctx = multiprocessing.get_context(_start_method())
        proc = ctx.Process(
            target=procs_child_main, args=(job, rank),
            name=f"repro-rank-{rank}", daemon=False,
        )
        proc.start()
        return _MpHandle(proc, rank)
