"""Subprocess launcher: rank processes via ``python -m repro procs-worker``.

The shape every batch-system launcher takes — a command line per rank —
exercised locally with plain :class:`subprocess.Popen`. The job spec is
pickled to the run's rendezvous directory; each worker process imports the
package fresh (no inherited state), loads the job, and runs its rank. This
requires the job to be *serializable*: apps are named by dotted factory path
(``repro.verify.spmd_workloads:isx_digest_factory``), not by closure.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from typing import Optional

import repro
from repro.launch import Launcher, ProcHandle, register_launcher
from repro.util.errors import ConfigError


class _PopenHandle(ProcHandle):
    def __init__(self, proc: subprocess.Popen, rank: int):
        self._proc = proc
        self.rank = rank

    def poll(self) -> Optional[int]:
        return self._proc.poll()

    def terminate(self) -> None:
        if self._proc.poll() is None:
            self._proc.terminate()

    def kill(self) -> None:
        if self._proc.poll() is None:
            self._proc.kill()

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid


@register_launcher
class SubprocessLauncher(Launcher):
    name = "subprocess"
    aliases = ("shell", "popen")

    def launch(self, job, rank: int) -> ProcHandle:
        job_path = os.path.join(job.rundir, "job.pkl")
        if not os.path.exists(job_path):
            try:
                with open(job_path, "wb") as fh:
                    pickle.dump(job, fh, protocol=pickle.HIGHEST_PROTOCOL)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                raise ConfigError(
                    "subprocess launcher needs a picklable job: name the app "
                    "by dotted factory path instead of passing a callable "
                    f"({exc})"
                ) from exc
        env = dict(os.environ)
        pkg_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = pkg_root + (
            os.pathsep + existing if existing else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "procs-worker",
             "--job", job_path, "--rank", str(rank)],
            env=env,
        )
        return _PopenHandle(proc, rank)
