"""Batch-system launcher stubs: Flux and PBS Pro.

These demonstrate the registry's extension point with real command shapes.
Each probes for its site CLI (``flux`` / ``qsub``); where the tool is absent
— every CI container — ``available()`` is ``False`` and ``launch`` raises
:class:`~repro.launch.LauncherUnavailable` carrying the exact command the
launcher would have run, so the integration surface is testable without a
batch system.
"""

from __future__ import annotations

import shutil
import sys
from typing import List

from repro.launch import Launcher, LauncherUnavailable, ProcHandle, \
    register_launcher


class _StubLauncher(Launcher):
    """Shared shape: compose the per-rank command, then refuse politely."""

    tool = ""

    @classmethod
    def available(cls) -> bool:
        return shutil.which(cls.tool) is not None

    def command_for(self, job, rank: int) -> List[str]:  # pragma: no cover
        raise NotImplementedError

    def launch(self, job, rank: int) -> ProcHandle:
        cmd = self.command_for(job, rank)
        raise LauncherUnavailable(
            f"{self.name} launcher is a stub (would run: {' '.join(cmd)}); "
            f"install {self.tool!r} and subclass {type(self).__name__} with "
            "a real ProcHandle to enable it"
        )


@register_launcher
class FluxLauncher(_StubLauncher):
    """`Flux <https://flux-framework.org>`_: hierarchical HPC scheduler."""

    name = "flux"
    tool = "flux"

    def command_for(self, job, rank: int) -> List[str]:
        return [
            "flux", "run", "-n", "1", "--label-io",
            sys.executable, "-m", "repro", "procs-worker",
            "--job", f"{job.rundir}/job.pkl", "--rank", str(rank),
        ]


@register_launcher
class PbsLauncher(_StubLauncher):
    """PBS Pro / OpenPBS batch scheduler."""

    name = "pbs"
    aliases = ("qsub",)
    tool = "qsub"

    def command_for(self, job, rank: int) -> List[str]:
        return [
            "qsub", "-N", f"repro-r{rank}", "-l", "select=1:ncpus=1", "--",
            sys.executable, "-m", "repro", "procs-worker",
            "--job", f"{job.rundir}/job.pkl", "--rank", str(rank),
        ]
