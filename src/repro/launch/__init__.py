"""Pluggable process launchers for the multiprocess SPMD backend.

The paper's framework composes with whatever resource manager a site runs;
RADICAL-Pilot-style pilot systems make the same split between *acquiring*
processes and *executing* work in them. This package is that seam: a
:class:`Launcher` starts one OS process per rank and hands back
:class:`ProcHandle` objects the :class:`~repro.exec.procs.ProcessExecutor`
polls, terminates, and reaps — how the processes come to exist (fork,
subprocess, a batch scheduler) is the launcher's business alone.

Discovery follows the classmethod-predicate registry idiom: a launcher
subclass registers itself and claims names via ``matches(name)``, so
``get_launcher("local")`` finds :class:`~repro.launch.local.LocalLauncher`
without a central if/elif ladder, and external code can register site
launchers without patching this package::

    @register_launcher
    class SiteLauncher(Launcher):
        name = "site"
        ...

``flux`` and ``pbs`` ship as stubs: they resolve, report availability by
probing for their CLI tools, and raise :class:`LauncherUnavailable` with the
command they *would* run — the extension point is live even where no batch
system is installed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Sequence, Type

from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.procs import ProcsJob


class LauncherUnavailable(ConfigError):
    """The named launcher exists but cannot run here (missing tool/stub)."""


class ProcHandle(ABC):
    """One launched rank process."""

    rank: int = -1

    @abstractmethod
    def poll(self) -> Optional[int]:
        """Exit code if the process has exited, else ``None``."""

    @abstractmethod
    def terminate(self) -> None:
        """Ask the process to exit (SIGTERM-equivalent)."""

    @abstractmethod
    def kill(self) -> None:
        """Force the process down (SIGKILL-equivalent)."""

    @property
    def alive(self) -> bool:
        return self.poll() is None

    @property
    @abstractmethod
    def pid(self) -> Optional[int]:
        """OS pid when known (stub launchers may not have one)."""


class Launcher(ABC):
    """Starts the rank processes of one multiprocess SPMD job."""

    #: Primary name used in CLI flags and the registry.
    name: str = ""
    #: Additional names this launcher answers to.
    aliases: Sequence[str] = ()

    @classmethod
    def matches(cls, name: str) -> bool:
        """Registry predicate: does this launcher claim ``name``?"""
        return name == cls.name or name in cls.aliases

    @classmethod
    def available(cls) -> bool:
        """Can this launcher actually start processes on this host?"""
        return True

    @abstractmethod
    def launch(self, job: "ProcsJob", rank: int) -> ProcHandle:
        """Start the process for ``rank`` of ``job``."""


#: Registration order doubles as match priority.
_LAUNCHERS: List[Type[Launcher]] = []


def register_launcher(cls: Type[Launcher]) -> Type[Launcher]:
    """Class decorator adding a launcher to the registry."""
    if not issubclass(cls, Launcher):
        raise ConfigError(f"{cls!r} is not a Launcher subclass")
    if not cls.name:
        raise ConfigError(f"launcher {cls.__name__} must set a name")
    _LAUNCHERS.append(cls)
    return cls


def get_launcher(name: str) -> Launcher:
    """Resolve ``name`` via each registered launcher's ``matches``."""
    for cls in _LAUNCHERS:
        if cls.matches(name):
            if not cls.available():
                raise LauncherUnavailable(
                    f"launcher {name!r} ({cls.__name__}) is not available on "
                    "this host"
                )
            return cls()
    known = sorted({c.name for c in _LAUNCHERS})
    raise ConfigError(f"unknown launcher {name!r}; known launchers: {known}")


def available_launchers() -> List[str]:
    """Names of launchers that can run here (registration order)."""
    return [c.name for c in _LAUNCHERS if c.available()]


def all_launchers() -> List[Type[Launcher]]:
    return list(_LAUNCHERS)


# Register the built-ins (import order = match priority).
from repro.launch.local import LocalLauncher  # noqa: E402
from repro.launch.shell import SubprocessLauncher  # noqa: E402
from repro.launch.stubs import FluxLauncher, PbsLauncher  # noqa: E402

__all__ = [
    "Launcher",
    "LauncherUnavailable",
    "LocalLauncher",
    "SubprocessLauncher",
    "FluxLauncher",
    "PbsLauncher",
    "ProcHandle",
    "register_launcher",
    "get_launcher",
    "available_launchers",
    "all_launchers",
]
