"""Fair-share admission control: per-tenant bounded queues + stride pick.

Each tenant gets its own FIFO queue with a hard depth bound: a submission
into a full queue is *rejected* (:class:`QueueFull` → HTTP 429 at the wire)
rather than buffered without bound — backpressure reaches the client that
is causing it, and one tenant flooding the gateway cannot grow service
memory or starve everyone else's latency.

Dispatch order across tenants is stride scheduling (the classic
proportional-share algorithm): every tenant carries a ``pass`` value; the
runnable tenant with the minimum pass is served next, and serving it
advances its pass by ``1 / weight``. A weight-2 tenant therefore drains
jobs twice as fast as a weight-1 tenant under contention, and an idle
tenant re-entering is clamped to the current minimum pass so banked idle
time cannot be spent as a burst that locks others out.

Pool workers call :meth:`FairShareAdmission.next_job` with the backend they
can execute; tenant FIFO order is preserved *per backend* (a tenant's
queued ``procs`` job never blocks its queued ``sim`` jobs from reaching a
sim slot — jobs are skipped, not reordered, within the scan).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.service.jobs import Job
from repro.util.errors import ConfigError, HiperError


class QueueFull(HiperError):
    """A tenant's queue is at capacity; the submission was rejected."""

    def __init__(self, tenant: str, depth: int):
        self.tenant = tenant
        self.depth = depth
        super().__init__(
            f"tenant {tenant!r} queue is full ({depth} jobs queued); "
            "retry with backoff")


class TenantQueue:
    """One tenant's FIFO plus its fair-share state."""

    __slots__ = ("name", "weight", "jobs", "pass_value", "dispatched")

    def __init__(self, name: str, weight: float = 1.0):
        if weight <= 0:
            raise ConfigError(
                f"tenant weight must be positive, got {weight} for {name!r}")
        self.name = name
        self.weight = float(weight)
        self.jobs: Deque[Job] = deque()
        self.pass_value = 0.0
        self.dispatched = 0

    @property
    def stride(self) -> float:
        return 1.0 / self.weight


class FairShareAdmission:
    """Per-tenant bounded queues with stride-scheduled dispatch."""

    def __init__(self, max_queue_per_tenant: int = 256,
                 weights: Optional[Dict[str, float]] = None):
        if max_queue_per_tenant < 1:
            raise ConfigError(
                "max_queue_per_tenant must be >= 1, got "
                f"{max_queue_per_tenant}")
        self.max_queue_per_tenant = int(max_queue_per_tenant)
        self._weights = dict(weights or {})
        self._tenants: Dict[str, TenantQueue] = {}
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)

    # -- submission ----------------------------------------------------
    def submit(self, job: Job) -> None:
        """Enqueue or raise :class:`QueueFull`."""
        with self._has_work:
            tq = self._tenants.get(job.tenant)
            if tq is None:
                tq = TenantQueue(job.tenant,
                                 self._weights.get(job.tenant, 1.0))
                self._tenants[job.tenant] = tq
            if len(tq.jobs) >= self.max_queue_per_tenant:
                raise QueueFull(job.tenant, len(tq.jobs))
            if not tq.jobs:
                # Re-entering after idle: no banked credit. Clamp to the
                # busiest floor so a long-idle tenant cannot burst.
                floor = min((t.pass_value for t in self._tenants.values()
                             if t.jobs), default=tq.pass_value)
                tq.pass_value = max(tq.pass_value, floor)
            tq.jobs.append(job)
            self._has_work.notify()

    # -- dispatch ------------------------------------------------------
    def next_job(self, backend: str, timeout: float = 0.1) -> Optional[Job]:
        """Pop the fair-share next job runnable on ``backend``.

        Blocks up to ``timeout`` seconds for work; returns ``None`` on
        timeout so pool workers can re-check lifecycle flags.
        """
        with self._has_work:
            job = self._pick(backend)
            if job is None and timeout > 0:
                self._has_work.wait(timeout)
                job = self._pick(backend)
            return job

    def _pick(self, backend: str) -> Optional[Job]:
        candidates = sorted(
            (t for t in self._tenants.values() if t.jobs),
            key=lambda t: (t.pass_value, t.name))
        for tq in candidates:
            for job in tq.jobs:
                if job.spec.backend != backend:
                    continue
                tq.jobs.remove(job)
                tq.pass_value += tq.stride
                tq.dispatched += 1
                return job
        return None

    # -- cancellation / introspection ----------------------------------
    def cancel(self, job: Job) -> bool:
        """Remove a still-queued job; False if it already left the queue."""
        with self._lock:
            tq = self._tenants.get(job.tenant)
            if tq is None:
                return False
            try:
                tq.jobs.remove(job)
                return True
            except ValueError:
                return False

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ConfigError(
                f"tenant weight must be positive, got {weight}")
        with self._lock:
            self._weights[tenant] = float(weight)
            tq = self._tenants.get(tenant)
            if tq is not None:
                tq.weight = float(weight)

    def depth(self, tenant: str) -> int:
        with self._lock:
            tq = self._tenants.get(tenant)
            return len(tq.jobs) if tq is not None else 0

    def pending(self) -> int:
        with self._lock:
            return sum(len(t.jobs) for t in self._tenants.values())

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def kick(self) -> None:
        """Wake all blocked workers (lifecycle transitions)."""
        with self._has_work:
            self._has_work.notify_all()

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                t.name: {
                    "queued": len(t.jobs),
                    "weight": t.weight,
                    "pass": t.pass_value,
                    "dispatched": t.dispatched,
                }
                for t in self._tenants.values()
            }
