"""``repro.service`` — a long-lived job gateway over the runtime.

Every other entry point in this repository is a one-shot CLI invocation:
construct an executor, run one workload, tear everything down, serve exactly
one caller. This package makes the runtime a *service*, the way RADICAL-Pilot
decouples resource acquisition from task execution and PyWPS wraps compute in
a request/response interface (see PAPERS.md): a daemon holds **warm executor
pools** whose construction cost is paid once and amortized across many
submissions, and exposes an async submit/status/result/cancel API over a
stdlib HTTP server (Unix-domain socket by default, TCP optionally).

Layers, bottom up:

- :mod:`repro.service.jobs` — :class:`JobSpec` (app + params + seed +
  backend: the unit of submission and the cache key), :class:`Job` (one
  accepted submission's lifecycle record), workload construction.
- :mod:`repro.service.cache` — :class:`ResultCache`: a bounded LRU keyed on
  the spec's deterministic cache key. Workload results are
  schedule-independent digests by construction, so a resubmission may be
  answered from cache bit-identically without re-execution.
- :mod:`repro.service.admission` — per-tenant bounded FIFO queues under
  stride-style fair-share scheduling; a full tenant queue rejects instead of
  buffering without bound (HTTP 429 at the wire).
- :mod:`repro.service.pool` — :class:`WarmRuntime` (a reusable
  executor + :class:`~repro.runtime.runtime.HiperRuntime` pair) and the
  per-backend pool bookkeeping.
- :mod:`repro.service.gateway` — :class:`JobGateway`: the scheduler *of
  jobs* sitting above the task scheduler. Owns queues, pools, the cache,
  retry policy (:mod:`repro.resilience`), per-tenant accounting
  (:mod:`repro.util.stats`), and the drain/reload lifecycle.
- :mod:`repro.service.server` / :mod:`repro.service.client` — the wire:
  JSON over HTTP/1.1 on a UDS or TCP socket, stdlib only.

Start one with ``python -m repro serve`` (see ``docs/service.md``), or embed
the pieces directly::

    from repro.service import JobGateway, ServiceConfig
    gw = JobGateway(ServiceConfig(backends=("sim",))).start()
    job = gw.submit("isx", {"keys_per_pe": 512}, seed=1, tenant="alice")
    print(gw.result(job.job_id, timeout=30.0))
    gw.drain()
"""

from repro.service.admission import FairShareAdmission, QueueFull, TenantQueue
from repro.service.cache import ResultCache
from repro.service.gateway import JobGateway, ServiceConfig, ServiceDraining
from repro.service.jobs import Job, JobSpec, JobState, build_workload
from repro.service.pool import WarmRuntime
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceServer

__all__ = [
    "FairShareAdmission",
    "QueueFull",
    "TenantQueue",
    "ResultCache",
    "JobGateway",
    "ServiceConfig",
    "ServiceDraining",
    "Job",
    "JobSpec",
    "JobState",
    "build_workload",
    "WarmRuntime",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
]
