"""The wire: JSON over HTTP/1.1 on a Unix-domain or TCP socket, stdlib only.

The server is a deliberately thin shell over :class:`JobGateway` — every
route is parse / delegate / serialize, so the whole scheduler-of-jobs stays
testable without a socket. The default listener is a Unix-domain socket
(no port allocation, filesystem permissions as access control); pass
``host``/``port`` for TCP.

Wire protocol (all bodies JSON; all responses
``{"ok": bool, ...}`` with errors as ``{"ok": false, "error": str}``):

====== ============================== ===========================================
Method Path                           Meaning
====== ============================== ===========================================
POST   /api/v1/jobs                   submit ``{app, params?, seed?, backend?,
                                      engine?, ranks?, tenant?}`` → 202 + job doc
GET    /api/v1/jobs/<id>              status → 200 + job doc
GET    /api/v1/jobs/<id>/result       long-poll result (``?timeout=<s>``):
                                      200 + doc-with-result when terminal,
                                      202 + doc while still pending
POST   /api/v1/jobs/<id>/cancel       cancel → 200 + ``{outcome}``
POST   /api/v1/drain                  ``{timeout?}`` → 200 + ``{drained}``
POST   /api/v1/reload                 rebuild warm pools → 200 + ``{generation}``
GET    /api/v1/stats                  accounting snapshot
GET    /api/v1/health                 liveness + draining flag
====== ============================== ===========================================

Error statuses follow HTTP semantics: 400 bad spec (:class:`ConfigError`),
404 unknown job, **429 tenant queue full** (:class:`QueueFull` — the
backpressure contract: clients back off and retry), 503 draining.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.admission import QueueFull
from repro.service.gateway import JobGateway, ServiceDraining
from repro.util.errors import ConfigError

__all__ = ["ServiceServer"]

_API = "/api/v1"


class _Handler(BaseHTTPRequestHandler):
    """Routes one request to the gateway. One instance per request."""

    protocol_version = "HTTP/1.1"   # keep-alive: clients reuse connections
    server_version = "repro-service/1"
    gateway: JobGateway = None  # type: ignore[assignment] - set by subclass

    # -- plumbing ------------------------------------------------------
    def address_string(self) -> str:  # AF_UNIX peers have no address tuple
        if isinstance(self.client_address, tuple) and self.client_address:
            return str(self.client_address[0])
        return "uds"

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # request logging is the embedder's business, not stderr's

    def _reply(self, status: int, doc: Dict[str, Any]) -> None:
        body = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        try:
            doc = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise ConfigError("request body must be a JSON object")
        return doc

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        return parsed.path, query

    # -- methods -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path, query = self._route()
        try:
            if path == f"{_API}/health":
                self._reply(200, {"ok": True, "status": "ok",
                                  "draining": self.gateway.draining})
            elif path == f"{_API}/stats":
                self._reply(200, {"ok": True, "stats": self.gateway.stats_dict()})
            elif path.startswith(f"{_API}/jobs/") and path.endswith("/result"):
                job_id = path[len(f"{_API}/jobs/"):-len("/result")]
                timeout = min(float(query.get("timeout", 0.0)), 60.0)
                doc = self.gateway.result(job_id, timeout=timeout)
                status = 200 if "result" in doc else 202
                self._reply(status, {"ok": True, "job": doc})
            elif path.startswith(f"{_API}/jobs/"):
                job_id = path[len(f"{_API}/jobs/"):]
                self._reply(200, {"ok": True,
                                  "job": self.gateway.status(job_id)})
            else:
                self._reply(404, {"ok": False, "error": f"no route {path}"})
        except ConfigError as exc:
            self._reply(404 if "unknown job id" in str(exc) else 400,
                        {"ok": False, "error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path, _query = self._route()
        try:
            body = self._body()
            if path == f"{_API}/jobs":
                job = self.gateway.submit(
                    body.get("app", ""), body.get("params") or {},
                    seed=body.get("seed", 0),
                    backend=body.get("backend", "sim"),
                    engine=body.get("engine", "flat"),
                    ranks=body.get("ranks", 2),
                    tenant=body.get("tenant", "default"))
                self._reply(202, {"ok": True, "job": job.to_dict(
                    with_result=job.terminal)})
            elif path.startswith(f"{_API}/jobs/") and path.endswith("/cancel"):
                job_id = path[len(f"{_API}/jobs/"):-len("/cancel")]
                self._reply(200, {"ok": True,
                                  **self.gateway.cancel(job_id)})
            elif path == f"{_API}/drain":
                drained = self.gateway.drain(timeout=body.get("timeout"))
                self._reply(200, {"ok": True, "drained": drained})
            elif path == f"{_API}/reload":
                gen = self.gateway.reload()
                self._reply(200, {"ok": True, "generation": gen})
            else:
                self._reply(404, {"ok": False, "error": f"no route {path}"})
        except QueueFull as exc:
            self._reply(429, {"ok": False, "error": str(exc),
                              "tenant": exc.tenant, "retry_after": 0.05})
        except ServiceDraining as exc:
            self._reply(503, {"ok": False, "error": str(exc)})
        except ConfigError as exc:
            self._reply(404 if "unknown job id" in str(exc) else 400,
                        {"ok": False, "error": str(exc)})


class _UdsHTTPServer(ThreadingHTTPServer):
    address_family = socket.AF_UNIX
    daemon_threads = True
    allow_reuse_address = False

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, str) and os.path.exists(path):
            os.unlink(path)
        self.socket.bind(path)

    def server_activate(self) -> None:
        self.socket.listen(256)


class _TcpHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 256


class ServiceServer:
    """Owns the listener thread and the gateway it exposes.

    Exactly one of ``uds`` or ``host``/``port`` selects the transport;
    with neither given a UDS at ``<cwd>/repro-service.sock`` is used.
    """

    def __init__(self, gateway: JobGateway, *, uds: Optional[str] = None,
                 host: Optional[str] = None, port: int = 0):
        self.gateway = gateway
        if uds is not None and host is not None:
            raise ConfigError("pass either uds= or host=/port=, not both")
        if host is None and uds is None:
            uds = os.path.join(os.getcwd(), "repro-service.sock")
        self.uds = uds
        handler = type("BoundHandler", (_Handler,), {"gateway": gateway})
        if uds is not None:
            self._httpd: ThreadingHTTPServer = _UdsHTTPServer(uds, handler)
            self.host, self.port = None, None
        else:
            self._httpd = _TcpHTTPServer((host, port), handler)
            self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        if self.uds is not None:
            return f"uds:{self.uds}"
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        if not self.gateway._started:
            self.gateway.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            name="svc-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop listening and close the gateway (hard stop — for the
        graceful path drain the gateway first, e.g. via POST /drain)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.uds is not None and os.path.exists(self.uds):
            os.unlink(self.uds)
        self.gateway.close()

    def serve_until_drained(self, poll: float = 0.2) -> None:
        """Block until the gateway has drained (used by the CLI daemon)."""
        import time as _time

        while not (self.gateway.draining and
                   self.gateway._unfinished == 0):
            _time.sleep(poll)
