"""Client for the job gateway: stdlib HTTP over a UDS or TCP socket.

One :class:`ServiceClient` wraps one persistent connection (HTTP/1.1
keep-alive) and is **not** thread-safe — give each driving thread its own
client, the way each benchmark driver thread does. The client implements
the protocol's backpressure contract: a 429 (tenant queue full) is retried
after the server's ``retry_after`` hint plus deterministic seeded jitter
from an exponential window, up to ``submit_attempts`` times before
:class:`ServiceError` propagates — the hint paces retries to the queue's
actual drain rate, and the jitter keeps a burst of rejected clients from
retrying in lockstep and re-colliding.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Callable, Dict, Mapping, Optional

from repro.util.errors import HiperError
from repro.util.rng import RngFactory

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(HiperError):
    """A request failed; carries the HTTP status and server error text."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"[{status}] {message}")


class _UdsConnection(http.client.HTTPConnection):
    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._uds_path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._uds_path)


class ServiceClient:
    """Submit/status/result/cancel against one running service."""

    def __init__(self, *, uds: Optional[str] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 timeout: float = 120.0, submit_attempts: int = 12,
                 backoff_base: float = 0.02, backoff_cap: float = 1.0,
                 seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep):
        if (uds is None) == (host is None):
            raise ValueError("pass exactly one of uds= or host=/port=")
        self.uds = uds
        self.host, self.port = host, port
        self.timeout = timeout
        self.submit_attempts = submit_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        # Deterministic per-client jitter stream: different seeds decorrelate
        # concurrent clients, the same seed replays the same delays.
        self._rng = RngFactory(seed).stream("service", "client-backoff")
        self._sleep = sleep
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self.uds is not None:
                self._conn = _UdsConnection(self.uds, timeout=self.timeout)
            else:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: Optional[Mapping[str, Any]] = None
                ) -> Dict[str, Any]:
        """One request/response cycle; reconnects once on a dropped
        keep-alive connection. Returns the decoded document with the HTTP
        status attached as ``doc["_status"]``."""
        payload = json.dumps(dict(body)).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                break
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        doc = json.loads(raw) if raw else {}
        doc["_status"] = resp.status
        return doc

    def _checked(self, method: str, path: str,
                 body: Optional[Mapping[str, Any]] = None,
                 ok_statuses: tuple = (200, 202)) -> Dict[str, Any]:
        doc = self.request(method, path, body)
        if doc["_status"] not in ok_statuses:
            raise ServiceError(doc["_status"], doc.get("error", "unknown"))
        return doc

    # -- API -----------------------------------------------------------
    def _backoff_delay(self, attempt: int,
                       retry_after: Optional[float]) -> float:
        """Delay before retrying a 429.

        Honors the server's ``retry_after`` hint as a floor (the gateway
        knows how fast its queues drain), plus seeded jitter drawn from the
        exponential window — so concurrent clients that were rejected in
        the same burst do not retry in lockstep and re-collide forever.
        """
        window = min(self.backoff_base * (2 ** attempt), self.backoff_cap)
        u = float(self._rng.random())
        if retry_after is not None and retry_after > 0:
            return float(retry_after) + u * window
        # No hint: full jitter over the window, floored at half so every
        # retry still makes progress through the exponential schedule.
        return window * (0.5 + 0.5 * u)

    def submit(self, app: str, params: Optional[Mapping[str, Any]] = None, *,
               seed: int = 0, backend: str = "sim", engine: str = "flat",
               ranks: int = 2, tenant: str = "default") -> Dict[str, Any]:
        """Submit a job; absorbs 429 backpressure with jittered backoff.

        Returns the job document (``doc["job_id"]`` is the handle).
        """
        body = {"app": app, "params": dict(params or {}), "seed": seed,
                "backend": backend, "engine": engine, "ranks": ranks,
                "tenant": tenant}
        for attempt in range(self.submit_attempts):
            doc = self.request("POST", "/api/v1/jobs", body)
            if doc["_status"] == 202:
                return doc["job"]
            if doc["_status"] != 429 or attempt + 1 >= self.submit_attempts:
                raise ServiceError(doc["_status"], doc.get("error", "unknown"))
            hint = doc.get("retry_after")
            self._sleep(self._backoff_delay(
                attempt, float(hint) if hint is not None else None))
        raise AssertionError("unreachable")  # pragma: no cover

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/api/v1/jobs/{job_id}")["job"]

    def result(self, job_id: str, timeout: float = 0.0) -> Dict[str, Any]:
        """One (long-)poll for the result; may return a non-terminal doc."""
        return self._checked(
            "GET", f"/api/v1/jobs/{job_id}/result?timeout={timeout}")["job"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 1.0) -> Dict[str, Any]:
        """Block until the job is terminal; raises :class:`ServiceError`
        (status 0) on client-side timeout."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(0, f"job {job_id} still "
                                      "running at client timeout")
            doc = self.result(job_id, timeout=min(poll, remaining))
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc

    def cancel(self, job_id: str) -> str:
        return self._checked("POST", f"/api/v1/jobs/{job_id}/cancel")["outcome"]

    def drain(self, timeout: Optional[float] = None) -> bool:
        body = {} if timeout is None else {"timeout": timeout}
        return self._checked("POST", "/api/v1/drain", body)["drained"]

    def reload(self) -> int:
        return self._checked("POST", "/api/v1/reload", {})["generation"]

    def stats(self) -> Dict[str, Any]:
        return self._checked("GET", "/api/v1/stats")["stats"]

    def health(self) -> Dict[str, Any]:
        return self._checked("GET", "/api/v1/health")
