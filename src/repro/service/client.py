"""Client for the job gateway: stdlib HTTP over a UDS or TCP socket.

One :class:`ServiceClient` wraps one persistent connection (HTTP/1.1
keep-alive) and is **not** thread-safe — give each driving thread its own
client, the way each benchmark driver thread does. The client implements
the protocol's backpressure contract: a 429 (tenant queue full) is retried
with exponential backoff up to ``submit_attempts`` times before
:class:`ServiceError` propagates, so well-behaved callers absorb transient
pressure instead of hammering a full queue.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, Mapping, Optional

from repro.util.errors import HiperError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(HiperError):
    """A request failed; carries the HTTP status and server error text."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"[{status}] {message}")


class _UdsConnection(http.client.HTTPConnection):
    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._uds_path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._uds_path)


class ServiceClient:
    """Submit/status/result/cancel against one running service."""

    def __init__(self, *, uds: Optional[str] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 timeout: float = 120.0, submit_attempts: int = 12,
                 backoff_base: float = 0.02):
        if (uds is None) == (host is None):
            raise ValueError("pass exactly one of uds= or host=/port=")
        self.uds = uds
        self.host, self.port = host, port
        self.timeout = timeout
        self.submit_attempts = submit_attempts
        self.backoff_base = backoff_base
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self.uds is not None:
                self._conn = _UdsConnection(self.uds, timeout=self.timeout)
            else:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: Optional[Mapping[str, Any]] = None
                ) -> Dict[str, Any]:
        """One request/response cycle; reconnects once on a dropped
        keep-alive connection. Returns the decoded document with the HTTP
        status attached as ``doc["_status"]``."""
        payload = json.dumps(dict(body)).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                break
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        doc = json.loads(raw) if raw else {}
        doc["_status"] = resp.status
        return doc

    def _checked(self, method: str, path: str,
                 body: Optional[Mapping[str, Any]] = None,
                 ok_statuses: tuple = (200, 202)) -> Dict[str, Any]:
        doc = self.request(method, path, body)
        if doc["_status"] not in ok_statuses:
            raise ServiceError(doc["_status"], doc.get("error", "unknown"))
        return doc

    # -- API -----------------------------------------------------------
    def submit(self, app: str, params: Optional[Mapping[str, Any]] = None, *,
               seed: int = 0, backend: str = "sim", engine: str = "objects",
               ranks: int = 2, tenant: str = "default") -> Dict[str, Any]:
        """Submit a job; absorbs 429 backpressure with exponential backoff.

        Returns the job document (``doc["job_id"]`` is the handle).
        """
        body = {"app": app, "params": dict(params or {}), "seed": seed,
                "backend": backend, "engine": engine, "ranks": ranks,
                "tenant": tenant}
        for attempt in range(self.submit_attempts):
            doc = self.request("POST", "/api/v1/jobs", body)
            if doc["_status"] == 202:
                return doc["job"]
            if doc["_status"] != 429 or attempt + 1 >= self.submit_attempts:
                raise ServiceError(doc["_status"], doc.get("error", "unknown"))
            time.sleep(min(self.backoff_base * (2 ** attempt), 1.0))
        raise AssertionError("unreachable")  # pragma: no cover

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/api/v1/jobs/{job_id}")["job"]

    def result(self, job_id: str, timeout: float = 0.0) -> Dict[str, Any]:
        """One (long-)poll for the result; may return a non-terminal doc."""
        return self._checked(
            "GET", f"/api/v1/jobs/{job_id}/result?timeout={timeout}")["job"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 1.0) -> Dict[str, Any]:
        """Block until the job is terminal; raises :class:`ServiceError`
        (status 0) on client-side timeout."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(0, f"job {job_id} still "
                                      "running at client timeout")
            doc = self.result(job_id, timeout=min(poll, remaining))
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc

    def cancel(self, job_id: str) -> str:
        return self._checked("POST", f"/api/v1/jobs/{job_id}/cancel")["outcome"]

    def drain(self, timeout: Optional[float] = None) -> bool:
        body = {} if timeout is None else {"timeout": timeout}
        return self._checked("POST", "/api/v1/drain", body)["drained"]

    def reload(self) -> int:
        return self._checked("POST", "/api/v1/reload", {})["generation"]

    def stats(self) -> Dict[str, Any]:
        return self._checked("GET", "/api/v1/stats")["stats"]

    def health(self) -> Dict[str, Any]:
        return self._checked("GET", "/api/v1/health")
