"""Deterministic result cache: spec cache-key → workload result.

The digest workloads are pure functions of their spec (app, params, seed,
backend) — that is exactly what the verify differentials gate — so the
gateway may answer a resubmission from cache bit-identically without
re-execution. The cache is a bounded LRU: ``capacity`` entries, recency
updated on hit, oldest evicted on overflow. Values are stored in their
JSON-normalized form (:func:`repro.service.jobs.normalize_result`), so a
cached answer is byte-identical on the wire to the execution that produced
it.

Only *successful* results are cached. Failures flow through the retry
policy instead — caching an exception would make a transient fault sticky.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.util.errors import ConfigError

_MISSING = object()


class ResultCache:
    """Thread-safe bounded LRU over deterministic job results."""

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ConfigError(
                f"cache capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: str, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                # Deterministic workloads: a re-execution's value equals the
                # stored one, so keep the original and refresh recency.
                self._entries.move_to_end(key)
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
