"""Warm executor pools: pay runtime construction once, serve many jobs.

A :class:`WarmRuntime` is one reusable executor + runtime pair. Cold-path
job execution (what the CLI does today) pays, per job: platform-model
discovery, deque-table and worker construction, executor setup, and —
for the threaded backend — OS thread spawning; then tears it all down.
A warm entry pays that once at pool construction and runs every subsequent
job as just another root task on the same runtime (``HiperRuntime.run`` is
re-entrant for sequential roots; the tier-1 suite exercises repeated runs
on one runtime). ``BENCH_service.json`` records the resulting speedup.

Hygiene rules that keep reuse safe:

- **One owner.** A warm entry is driven by exactly one pool worker thread;
  the simulated executor is single-threaded by design and must never see
  concurrent ``run_root`` calls. The gateway enforces this by giving each
  pool slot its own thread and its own entry.
- **Retire on failure.** If a job fails (or its runtime raises), the entry
  is discarded and the slot rebuilds fresh — a poisoned engine state must
  not leak into the next tenant's job. Failures are rare; rebuilding costs
  one cold construction.
- **Generation fencing.** ``reload`` bumps the pool generation; a worker
  rebuilds its entry before taking the next job when its entry is stale.
  In-flight jobs always finish on the entry they started on.

The ``procs`` backend is *not* warm-poolable: its unit of construction is a
tree of OS processes wired to one job's shared-memory segments, torn down by
the rank teardown protocol. Procs jobs therefore run cold per job (the pool
slot still serializes and fair-shares them).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Tuple

from repro.service.jobs import Job, JobSpec, build_workload
from repro.util.errors import ConfigError


class WarmRuntime:
    """A started, reusable (executor, runtime) pair for one pool slot."""

    def __init__(self, backend: str, *, workers: int = 4,
                 engine: str = "flat", block_timeout: float = 60.0):
        from repro.exec.sim import SimExecutor
        from repro.exec.threaded import ThreadedExecutor
        from repro.platform.hwloc import discover, machine
        from repro.runtime.runtime import HiperRuntime

        if backend not in ("sim", "threads"):
            raise ConfigError(
                f"backend {backend!r} is not warm-poolable (sim/threads only)")
        self.backend = backend
        self.engine = engine
        self.workers = workers
        t0 = time.perf_counter()
        if backend == "sim":
            self.executor = SimExecutor(engine=engine)
        else:
            self.executor = ThreadedExecutor(block_timeout=block_timeout)
        model = discover(machine("workstation"), num_workers=workers,
                         with_interconnect=False)
        self.runtime = HiperRuntime(model, self.executor).start()
        self.construction_s = time.perf_counter() - t0
        self.jobs_run = 0
        self.closed = False

    def run(self, workload: Callable[[], Any], *, name: str = "job") -> Any:
        """Execute one root body; the entry stays warm for the next one."""
        self.jobs_run += 1
        return self.runtime.run(workload, name=name)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.runtime.shutdown()
        self.executor.shutdown()


def run_job_cold(spec: JobSpec) -> Any:
    """One-shot execution: construct, run, tear down (the pre-service path).

    Used for the ``procs`` backend (never poolable), for pools configured
    with ``warm=False``, and as the cold side of the warm-vs-cold benchmark
    pair.
    """
    if spec.backend == "procs":
        from repro.verify.spmd_workloads import run_procs_workload

        digest, _res = run_procs_workload(
            spec.app, nranks=spec.ranks, workers_per_rank=1,
            seed=spec.seed, cfg_kwargs=dict(spec.params))
        return digest
    entry = WarmRuntime(spec.backend, engine=spec.engine)
    try:
        return entry.run(build_workload(spec))
    finally:
        entry.close()


def run_job_on(entry: Optional[WarmRuntime], spec: JobSpec,
               *, name: str = "job") -> Tuple[Any, bool]:
    """Execute a spec on a warm entry when possible, cold otherwise.

    Returns ``(result, used_warm)``.
    """
    if (entry is not None and not entry.closed
            and spec.backend == entry.backend
            and (spec.backend != "sim" or spec.engine == entry.engine)):
        return entry.run(build_workload(spec), name=name), True
    return run_job_cold(spec), False
