"""Job model: what a client submits and what the gateway tracks.

A :class:`JobSpec` is the immutable unit of submission — *which* workload
(``app``), *how configured* (``params`` + ``seed``), and *where to run it*
(``backend``, plus the DES ``engine`` for the simulated backend). Specs are
canonicalized to a deterministic JSON document whose SHA-256 is the result
cache key: every field that can influence the produced value is in the key,
and nothing else is (worker counts and pool sizing are service-side capacity
knobs — the digest workloads are schedule-independent by construction, so
capacity never changes results; see ``docs/service.md`` for the cache-key
discipline).

A :class:`Job` is one accepted submission's mutable lifecycle record:
``queued → running → done|failed|cancelled`` with wall-clock timestamps for
queue-wait and execution accounting. All mutation happens under the
gateway's lock; readers get consistent snapshots via :meth:`Job.to_dict`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
import time
from enum import Enum
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.util.errors import ConfigError

#: Backends a job may request. ``sim`` and ``threads`` run in warm-pooled
#: in-process runtimes; ``procs`` launches one OS process per rank per job
#: (process trees are not poolable across jobs — see docs/service.md).
BACKENDS = ("sim", "threads", "procs")
#: DES engines for the ``sim`` backend (ignored elsewhere).
ENGINES = ("objects", "flat")


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED})


def _app_configs() -> Dict[str, Any]:
    # Deferred import: repro.verify pulls in the app kernels; keep service
    # module import light for the client side.
    from repro.apps.graph500.common import Graph500Config
    from repro.apps.isx.common import IsxConfig
    from repro.apps.uts.common import UtsConfig

    return {"isx": IsxConfig, "uts": UtsConfig, "graph500": Graph500Config}


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One submission: app + params + seed + backend (+ sim engine)."""

    app: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    backend: str = "sim"
    engine: str = "flat"
    #: SPMD ranks — meaningful for the ``procs`` backend only.
    ranks: int = 2

    @classmethod
    def create(cls, app: str, params: Optional[Mapping[str, Any]] = None, *,
               seed: int = 0, backend: str = "sim", engine: str = "flat",
               ranks: int = 2) -> "JobSpec":
        """Validate and canonicalize a submission into a spec.

        Raises :class:`ConfigError` (HTTP 400 at the wire) for unknown apps,
        backends, engines, or params the app's config rejects. Validation
        constructs the app config eagerly so bad submissions fail at submit
        time, not minutes later on a pool worker.
        """
        configs = _app_configs()
        if app not in configs:
            raise ConfigError(
                f"unknown app {app!r}; choose from {sorted(configs)}")
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {backend!r}; choose from {list(BACKENDS)}")
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {engine!r}; choose from {list(ENGINES)}")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ConfigError(f"seed must be an integer, got {seed!r}")
        if not isinstance(ranks, int) or ranks < 1:
            raise ConfigError(f"ranks must be a positive integer, got {ranks!r}")
        params = dict(params or {})
        params.pop("seed", None)  # the spec's seed field is canonical
        spec = cls(app=app, params=tuple(sorted(params.items())), seed=seed,
                   backend=backend, engine=engine, ranks=ranks)
        spec.build_config()  # raises ConfigError/TypeError on bad params
        return spec

    def build_config(self) -> Any:
        """The app's config object with ``seed`` merged in."""
        cls = _app_configs()[self.app]
        kwargs = dict(self.params)
        kwargs["seed"] = self.seed
        try:
            return cls(**kwargs)
        except TypeError as exc:
            fields = sorted(f.name for f in dataclasses.fields(cls))
            raise ConfigError(
                f"bad params for app {self.app!r}: {exc}; "
                f"valid params: {fields}") from None

    def cache_key(self) -> str:
        """Deterministic key: SHA-256 of the canonical spec document.

        ``engine`` and ``ranks`` are included even though results are
        constructed to be engine/rank-count independent — the cache must
        never be in the position of *asserting* that equivalence; the verify
        differentials do. ``canonical()`` is the audited key material.
        """
        return hashlib.sha256(
            json.dumps(self.canonical(), sort_keys=True).encode()).hexdigest()

    def canonical(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "params": {k: v for k, v in self.params},
            "seed": self.seed,
            "backend": self.backend,
            "engine": self.engine if self.backend == "sim" else "n/a",
            "ranks": self.ranks if self.backend == "procs" else 0,
        }

    def to_dict(self) -> Dict[str, Any]:
        return self.canonical()


def build_workload(spec: JobSpec) -> Callable[[], Tuple]:
    """The single-runtime root body for a spec (sim/threads backends).

    Reuses the verify differential's workload factories — the same bodies
    the cross-engine digest checks pin down — so a service job's result is
    comparable against every other backend's by construction.
    """
    from repro.verify.differential import (graph500_workload, isx_workload,
                                           uts_workload)

    cfg = spec.build_config()
    factory = {"isx": isx_workload, "uts": uts_workload,
               "graph500": graph500_workload}[spec.app]
    return factory(cfg)


def normalize_result(value: Any) -> Any:
    """Canonicalize a workload result to its JSON form.

    Results cross the wire as JSON, so the cache stores the JSON-normalized
    value (tuples become lists once, here) — a cached hit and a fresh
    execution then compare bit-identically on both sides of the socket.
    """
    return json.loads(json.dumps(value))


_job_counter = [0]
_job_counter_lock = threading.Lock()


def _next_job_id() -> str:
    with _job_counter_lock:
        _job_counter[0] += 1
        return f"job-{_job_counter[0]:08d}"


class Job:
    """One accepted submission's lifecycle record (gateway-lock protected)."""

    __slots__ = (
        "job_id", "spec", "tenant", "state", "cache_hit", "cancel_requested",
        "attempts", "submitted_at", "started_at", "finished_at",
        "result", "error", "done_event",
    )

    def __init__(self, spec: JobSpec, tenant: str):
        self.job_id = _next_job_id()
        self.spec = spec
        self.tenant = tenant
        self.state = JobState.QUEUED
        self.cache_hit = False
        self.cancel_requested = False
        self.attempts = 0
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Any = None
        self.error: Optional[str] = None
        self.done_event = threading.Event()

    # -- derived accounting (wall-clock seconds) -----------------------
    @property
    def queue_wait(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def exec_time(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, with_result: bool = False) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": self.spec.to_dict(),
            "state": self.state.value,
            "cache_hit": self.cache_hit,
            "cancel_requested": self.cancel_requested,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait": self.queue_wait,
            "exec_time": self.exec_time,
            "error": self.error,
        }
        if with_result:
            doc["result"] = self.result
        return doc
