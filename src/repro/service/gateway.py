"""The job gateway: scheduler-of-jobs above the task scheduler.

:class:`JobGateway` owns the whole service core, independent of any wire
protocol (the HTTP server is a thin shell over it; tests drive it directly):

- **admission** — per-tenant bounded queues, stride fair share
  (:mod:`repro.service.admission`); a full queue rejects (:class:`QueueFull`)
  and a draining gateway rejects (:class:`ServiceDraining`).
- **pools** — one slot-thread per warm entry per backend
  (:mod:`repro.service.pool`); a failed job retires its entry.
- **cache** — deterministic results answered without execution
  (:mod:`repro.service.cache`); duplicate submissions dedupe here.
- **retries** — failed attempts re-run per the configured
  :class:`~repro.resilience.RetryPolicy` with :class:`~repro.resilience.Backoff`
  spacing; only :class:`~repro.util.errors.HiperError` failures retry
  (programming errors like a failed oracle assertion fail fast).
- **accounting** — per-tenant counters/timers in a
  :class:`~repro.util.stats.RuntimeStats` registry (module ``service`` for
  gateway-wide totals, ``tenant.<name>`` per tenant): jobs submitted /
  completed / failed / cancelled / rejected, cache hits, retries,
  ``queue_wait`` and ``exec`` timers.
- **lifecycle** — ``drain()`` stops intake and completes everything already
  accepted; ``reload()`` rebuilds warm pools between jobs without dropping
  any accepted job.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.resilience import Backoff, RetryPolicy
from repro.service.admission import FairShareAdmission, QueueFull
from repro.service.cache import ResultCache
from repro.service.jobs import (Job, JobSpec, JobState, normalize_result)
from repro.service.pool import WarmRuntime, run_job_on
from repro.util.errors import ConfigError, HiperError, RuntimeStateError
from repro.util.stats import RuntimeStats

__all__ = ["ServiceConfig", "ServiceDraining", "JobGateway"]


class ServiceDraining(HiperError):
    """The gateway is draining or stopped; submissions are not accepted."""


def _default_retry() -> RetryPolicy:
    # Service-side retry spacing is wall-clock, so keep it tight: transient
    # faults (an injected fault plan, a flaky procs launch) get two more
    # chances within ~30 ms.
    return RetryPolicy(max_attempts=3,
                       backoff=Backoff(base=1e-3, max_delay=2e-2))


@dataclasses.dataclass
class ServiceConfig:
    """Gateway capacity and policy knobs (all service-side, none in specs)."""

    #: Backends to run pool slots for. Jobs for a backend with no slots are
    #: rejected at submit.
    backends: Tuple[str, ...] = ("sim",)
    #: Warm entries (= slot threads) per backend.
    pool_size: int = 2
    #: Runtime workers per warm entry (sim/threads).
    workers: int = 4
    #: DES engine warm sim entries are built with; a job requesting the
    #: other engine still runs, cold, on its slot.
    engine: str = "flat"
    #: False = construct/tear down a runtime per job (the cold baseline the
    #: benchmark pair measures against).
    warm: bool = True
    max_queue_per_tenant: int = 256
    cache_capacity: int = 1024
    retry: RetryPolicy = dataclasses.field(default_factory=_default_retry)
    tenant_weights: Dict[str, float] = dataclasses.field(default_factory=dict)
    block_timeout: float = 60.0

    def __post_init__(self):
        from repro.service.jobs import BACKENDS

        for b in self.backends:
            if b not in BACKENDS:
                raise ConfigError(
                    f"unknown backend {b!r}; choose from {list(BACKENDS)}")
        if self.pool_size < 1:
            raise ConfigError(
                f"pool_size must be >= 1, got {self.pool_size}")


class JobGateway:
    """Long-lived job service core: submit/status/result/cancel + lifecycle."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.admission = FairShareAdmission(
            self.config.max_queue_per_tenant,
            weights=self.config.tenant_weights)
        self.cache = ResultCache(self.config.cache_capacity)
        self.stats = RuntimeStats()
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.RLock()
        self._unfinished = 0
        self._all_done = threading.Condition(self._lock)
        self._draining = False
        self._stopped = False
        self._started = False
        self._pool_gen = 0
        self._threads: List[threading.Thread] = []
        self.started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "JobGateway":
        if self._started:
            raise RuntimeStateError("gateway already started")
        self._started = True
        self.started_at = time.time()
        for backend in self.config.backends:
            for slot in range(self.config.pool_size):
                t = threading.Thread(
                    target=self._worker_loop, args=(backend, slot),
                    name=f"svc-{backend}-{slot}", daemon=True)
                t.start()
                self._threads.append(t)
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop intake; wait for every accepted job to reach a terminal
        state; stop the pool threads. Returns True when fully drained.

        Already-completed jobs remain queryable after a drain — only
        execution capacity goes away, not the job table.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._all_done:
            self._draining = True
            while self._unfinished > 0:
                wait = None if deadline is None else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    return False
                self._all_done.wait(wait if wait is None else min(wait, 1.0))
        self._stop_workers()
        return True

    def close(self) -> None:
        """Hard stop: cancel everything still queued, then drain."""
        with self._lock:
            self._draining = True
            queued = [j for j in self._jobs.values()
                      if j.state is JobState.QUEUED]
        for job in queued:
            self.cancel(job.job_id)
        self.drain(timeout=self.config.block_timeout)
        self._stop_workers()

    def _stop_workers(self) -> None:
        self._stopped = True
        self.admission.kick()
        for t in self._threads:
            t.join(timeout=self.config.block_timeout)
        self._threads = []

    def reload(self) -> int:
        """Rebuild warm pools without dropping accepted jobs.

        Bumps the pool generation; every slot discards its warm entry and
        constructs a fresh one before taking its next job. In-flight jobs
        finish on the entry they started on. Returns the new generation.
        """
        with self._lock:
            self._pool_gen += 1
            gen = self._pool_gen
        self.admission.kick()
        return gen

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pool_generation(self) -> int:
        return self._pool_gen

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(self, app: str, params: Optional[Mapping[str, Any]] = None, *,
               seed: int = 0, backend: str = "sim", engine: str = "flat",
               ranks: int = 2, tenant: str = "default") -> Job:
        """Validate, admit, and (maybe) answer from cache.

        Raises :class:`ConfigError` (bad spec → 400), :class:`QueueFull`
        (tenant backpressure → 429), :class:`ServiceDraining` (→ 503).
        """
        spec = JobSpec.create(app, params, seed=seed, backend=backend,
                              engine=engine, ranks=ranks)
        if spec.backend not in self.config.backends:
            raise ConfigError(
                f"backend {spec.backend!r} is not enabled on this service; "
                f"enabled: {list(self.config.backends)}")
        if not isinstance(tenant, str) or not tenant:
            raise ConfigError(f"tenant must be a non-empty string, got "
                              f"{tenant!r}")
        if self._draining or self._stopped:
            raise ServiceDraining(
                "service is draining; not accepting new jobs")

        job = Job(spec, tenant)
        self._count_tenant(tenant, "jobs_submitted")

        hit, value = self.cache.get(spec.cache_key())
        if hit:
            # Dedupe: answer instantly, bit-identical, without execution.
            with self._lock:
                job.cache_hit = True
                job.state = JobState.DONE
                job.started_at = job.finished_at = job.submitted_at
                job.result = value
                self._jobs[job.job_id] = job
            self._count_tenant(tenant, "cache_hits")
            self._count_tenant(tenant, "jobs_completed")
            job.done_event.set()
            return job

        with self._lock:
            self._jobs[job.job_id] = job
            self._unfinished += 1
        try:
            self.admission.submit(job)
        except QueueFull:
            with self._all_done:
                del self._jobs[job.job_id]
                self._unfinished -= 1
                self._all_done.notify_all()
            self._count_tenant(tenant, "jobs_rejected")
            raise
        self.stats.gauge("service", f"queue_depth.{tenant}",
                         float(self.admission.depth(tenant)))
        return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ConfigError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.job(job_id).to_dict()

    def result(self, job_id: str, timeout: Optional[float] = None
               ) -> Dict[str, Any]:
        """The job's terminal document (with result), waiting up to
        ``timeout`` seconds for it to finish. A non-terminal job after the
        wait returns its status document without a result field."""
        job = self.job(job_id)
        if timeout:
            job.done_event.wait(timeout)
        with self._lock:
            return job.to_dict(with_result=job.terminal)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job. Outcomes:

        - ``cancelled`` — it was still queued; it will never run.
        - ``cancelling`` — it is running; execution cannot be preempted
          mid-task, so the job is flagged and transitions to ``cancelled``
          (result discarded) when the attempt finishes.
        - the terminal state name — it had already finished; no-op.
        """
        job = self.job(job_id)
        with self._lock:
            if job.terminal:
                return {"job_id": job_id, "outcome": job.state.value}
            if job.state is JobState.QUEUED and self.admission.cancel(job):
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                self._finish(job, "jobs_cancelled")
                return {"job_id": job_id, "outcome": "cancelled"}
            job.cancel_requested = True
            return {"job_id": job_id, "outcome": "cancelling"}

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _count_tenant(self, tenant: str, op: str) -> None:
        self.stats.count("service", op)
        self.stats.count(f"tenant.{tenant}", op)

    def _time_tenant(self, tenant: str, op: str, elapsed: float) -> None:
        self.stats.time("service", op, elapsed)
        self.stats.time(f"tenant.{tenant}", op, elapsed)

    def _finish(self, job: Job, op: str) -> None:
        """Terminal-state bookkeeping; caller holds the lock and has already
        set job.state/finished_at."""
        self._count_tenant(job.tenant, op)
        self._unfinished -= 1
        self._all_done.notify_all()
        job.done_event.set()

    def stats_dict(self) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {}
            for j in self._jobs.values():
                states[j.state.value] = states.get(j.state.value, 0) + 1
            doc = {
                "uptime_s": (time.time() - self.started_at
                             if self.started_at else 0.0),
                "draining": self._draining,
                "pool_generation": self._pool_gen,
                "jobs": states,
                "unfinished": self._unfinished,
            }
        doc["tenants"] = self.admission.to_dict()
        doc["cache"] = self.cache.to_dict()
        doc["telemetry"] = self.stats.to_dict()
        return doc

    # ------------------------------------------------------------------
    # pool workers
    # ------------------------------------------------------------------
    def _make_entry(self, backend: str) -> Optional[WarmRuntime]:
        if not self.config.warm or backend == "procs":
            return None
        return WarmRuntime(backend, workers=self.config.workers,
                           engine=self.config.engine,
                           block_timeout=self.config.block_timeout)

    def _worker_loop(self, backend: str, slot: int) -> None:
        entry = self._make_entry(backend)
        entry_gen = self._pool_gen
        try:
            while not self._stopped:
                if entry_gen != self._pool_gen:
                    # reload(): rebuild the warm entry between jobs.
                    if entry is not None:
                        entry.close()
                    entry = self._make_entry(backend)
                    entry_gen = self._pool_gen
                job = self.admission.next_job(backend, timeout=0.05)
                if job is None:
                    continue
                entry = self._run_job(job, entry, backend)
        finally:
            if entry is not None:
                entry.close()

    def _run_job(self, job: Job, entry: Optional[WarmRuntime],
                 backend: str) -> Optional[WarmRuntime]:
        """Execute one job with retries. Returns the (possibly retired)
        warm entry the slot should keep using."""
        with self._lock:
            if job.terminal:   # cancelled between dequeue and here
                return entry
            job.state = JobState.RUNNING
            job.started_at = time.time()
        self._time_tenant(job.tenant, "queue_wait", job.queue_wait or 0.0)

        policy = self.config.retry
        result: Any = None
        error: Optional[BaseException] = None
        for attempt in range(policy.max_attempts):
            job.attempts = attempt + 1
            try:
                value, _warm = run_job_on(entry, job.spec,
                                          name=f"{job.job_id}-a{attempt}")
                result, error = normalize_result(value), None
                break
            except HiperError as exc:
                # Retryable per the resilience policy — but never reuse a
                # possibly-poisoned engine for the next attempt.
                error = exc
                if entry is not None:
                    entry.close()
                    entry = self._make_entry(backend)
                if attempt + 1 < policy.max_attempts:
                    self._count_tenant(job.tenant, "retries")
                    time.sleep(policy.backoff.delay(attempt))
            except BaseException as exc:  # noqa: BLE001 - fail fast
                error = exc
                if entry is not None:
                    entry.close()
                    entry = self._make_entry(backend)
                break

        with self._lock:
            job.finished_at = time.time()
            if error is None:
                self.cache.put(job.spec.cache_key(), result)
                if job.cancel_requested:
                    job.state = JobState.CANCELLED
                    self._finish(job, "jobs_cancelled")
                else:
                    job.state = JobState.DONE
                    job.result = result
                    self._finish(job, "jobs_completed")
            else:
                job.error = f"{type(error).__name__}: {error}"
                if job.cancel_requested:
                    job.state = JobState.CANCELLED
                    self._finish(job, "jobs_cancelled")
                else:
                    job.state = JobState.FAILED
                    self._finish(job, "jobs_failed")
        self._time_tenant(job.tenant, "exec", job.exec_time or 0.0)
        return entry
