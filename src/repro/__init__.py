"""pyhiper — a Python reproduction of HiPER: a Highly Pluggable, Extensible,
and Re-configurable scheduling framework for HPC (Grossman et al., IPDPSW'17).

Quick tour::

    from repro import (SimExecutor, HiperRuntime, discover, machine,
                       async_, async_future, finish)

    model = discover(machine("workstation"), num_workers=4)
    ex = SimExecutor()
    rt = HiperRuntime(model, ex).start()

    def main():
        futs = [async_future(lambda i=i: i * i, cost=1e-3) for i in range(8)]
        return sum(f.get() for f in futs)

    print(rt.run(main), ex.makespan())

See DESIGN.md for the paper-to-package map and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.exec import Executor, SimExecutor, ThreadedExecutor
from repro.io import CheckpointModule, SimStore
from repro.modules import HiperModule, create_module, register_module_class
from repro.platform import (
    MACHINES,
    MachineSpec,
    Place,
    PlaceType,
    PlatformModel,
    WorkerPaths,
    discover,
    machine,
    make_paths,
)
from repro.runtime import (
    FinishScope,
    Future,
    HiperRuntime,
    PollingService,
    Promise,
    Task,
    TaskGroupError,
    async_,
    async_at,
    async_await,
    async_copy,
    async_copy_await,
    async_future,
    async_future_await,
    begin_finish,
    charge,
    current_runtime,
    end_finish,
    finish,
    forasync,
    forasync_chunked,
    forasync_future,
    now,
    satisfied_future,
    timer_future,
    when_all,
    when_any,
    yield_now,
)
from repro.tools import TraceRecorder
from repro.util import DeadlockError, HiperError, RngFactory, RuntimeStats

__version__ = "1.0.0"

__all__ = [
    "Executor", "SimExecutor", "ThreadedExecutor",
    "HiperModule", "create_module", "register_module_class",
    "MACHINES", "MachineSpec", "Place", "PlaceType", "PlatformModel",
    "WorkerPaths", "discover", "machine", "make_paths",
    "FinishScope", "Future", "HiperRuntime", "PollingService", "Promise",
    "Task", "TaskGroupError",
    "async_", "async_at", "async_await", "async_copy", "async_copy_await",
    "async_future", "async_future_await", "begin_finish", "charge",
    "current_runtime", "end_finish", "finish", "forasync",
    "forasync_chunked", "forasync_future", "now", "satisfied_future",
    "timer_future", "when_all", "when_any", "yield_now",
    "DeadlockError", "HiperError", "RngFactory", "RuntimeStats",
    "CheckpointModule", "SimStore", "TraceRecorder",
    "__version__",
]
