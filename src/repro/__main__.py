"""``python -m repro`` — the reproduction driver (see repro.cli)."""

import sys

from repro.cli import main

sys.exit(main())
