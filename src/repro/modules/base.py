"""Pluggable software modules (paper §II-C).

A complete HiPER module provides:

1. an initialization function called once per process (here: per runtime) —
   :meth:`HiperModule.initialize`;
2. a finalization function — :meth:`HiperModule.finalize`;
3. optional special-purpose registrations (e.g. copy handlers for certain
   place types) — performed inside ``initialize`` via
   ``runtime.register_copy_handler``;
4. user-facing functions added to the global HiPER namespace — performed via
   :meth:`HiperModule.export`, which populates ``runtime.ops``.

Modules are *not* part of the core runtime and need no core changes: the
MPI/OpenSHMEM/UPC++/CUDA modules in :mod:`repro.mpi` etc. are ordinary
subclasses. Third-party code can subclass :class:`HiperModule` the same way.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, Optional, Type

from repro.util.errors import ModuleError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import HiperRuntime


class HiperModule(abc.ABC):
    """Base class for pluggable modules.

    Subclasses set :attr:`name` (unique per runtime) and implement
    ``initialize``; ``finalize`` defaults to a no-op. ``initialize`` should
    assert its platform-model requirements (paper: "It is up to individual
    modules to make these assertions ... during module initialization").
    """

    #: Unique module name; also the stats attribution key.
    name: str = ""

    #: Capability tags for inter-module discovery (paper §IV future
    #: direction: "allow registered modules to query for other modules which
    #: they can integrate with"). Query via ``runtime.query_modules(tag)``.
    capabilities: frozenset = frozenset()

    def __init__(self):
        if not self.name:
            raise ModuleError(
                f"{type(self).__name__} must define a non-empty class attribute 'name'"
            )
        self._initialized = False

    @abc.abstractmethod
    def initialize(self, runtime: "HiperRuntime") -> None:
        """Called once when the module is installed on a runtime."""

    def finalize(self, runtime: "HiperRuntime") -> None:
        """Called once at runtime shutdown, in reverse install order."""

    # -- helpers for subclasses ----------------------------------------
    def export(self, runtime: "HiperRuntime", fn_name: str, fn: Callable) -> None:
        """Add a user-facing function to the global HiPER namespace
        (``runtime.ops``), refusing to clobber another module's export."""
        if hasattr(runtime.ops, fn_name):
            raise ModuleError(
                f"module {self.name!r} cannot export {fn_name!r}: name already "
                "present in the runtime namespace"
            )
        setattr(runtime.ops, fn_name, fn)

    def require_place_type(self, runtime: "HiperRuntime", kind) -> None:
        if not runtime.model.has_type(kind):
            raise ModuleError(
                f"module {self.name!r} requires a place of type {kind.value} "
                f"in the platform model {runtime.model.name!r}"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


#: Registry of module classes by name, for config-file-driven installs.
_MODULE_CLASSES: Dict[str, Type[HiperModule]] = {}


def register_module_class(cls: Type[HiperModule]) -> Type[HiperModule]:
    """Class decorator: make a module loadable by name via :func:`create_module`."""
    if not cls.name:
        raise ModuleError(f"{cls.__name__} must define 'name' before registration")
    if cls.name in _MODULE_CLASSES:
        raise ModuleError(f"module class {cls.name!r} registered twice")
    _MODULE_CLASSES[cls.name] = cls
    return cls


def create_module(name: str, **kwargs) -> HiperModule:
    try:
        cls = _MODULE_CLASSES[name]
    except KeyError:
        raise ModuleError(
            f"no module class registered under {name!r}; "
            f"known: {sorted(_MODULE_CLASSES)}"
        ) from None
    return cls(**kwargs)


def known_module_classes() -> Dict[str, Type[HiperModule]]:
    return dict(_MODULE_CLASSES)
