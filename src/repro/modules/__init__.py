"""The pluggable-module framework (paper §II-C)."""

from repro.modules.base import (
    HiperModule,
    create_module,
    known_module_classes,
    register_module_class,
)

__all__ = [
    "HiperModule",
    "create_module",
    "known_module_classes",
    "register_module_class",
]
