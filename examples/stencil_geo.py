#!/usr/bin/env python3
"""The paper's §II-D walkthrough: one stencil application, three compositions.

Runs the GEO 3-D stencil on a simulated 4-node Titan partition three ways —
MPI+OpenMP, hand-coded MPI+CUDA (blocking transfers), and the HiPER
future-based composition — validates that all three produce bit-identical
fields, and prints the virtual-time comparison that motivates Fig. 6.

Run:  python examples/stencil_geo.py
"""

import numpy as np

from repro.apps.geo import GeoConfig, check_result, geo_main
from repro.cuda import cuda_factory
from repro.distrib import ClusterConfig, spmd_run
from repro.mpi import mpi_factory
from repro.net import network
from repro.platform import machine


def main() -> None:
    cfg = GeoConfig(nx=32, ny=32, nz=24, timesteps=5)
    cluster = ClusterConfig(
        nodes=4, ranks_per_node=1, workers_per_rank=16,
        machine=machine("titan"), network=network("gemini"),
    )
    print(f"GEO stencil: {cfg.nx}x{cfg.ny}x{cfg.nz * 4} global grid, "
          f"{cfg.timesteps} timesteps, 4 Titan nodes\n")

    times = {}
    fields = {}
    for variant in ("mpi_omp", "mpi_cuda", "hiper"):
        res = spmd_run(
            geo_main(variant, cfg), cluster,
            module_factories=[mpi_factory(), cuda_factory()],
        )
        check_result(cfg, res.results)  # bit-exact vs the serial oracle
        times[variant] = res.makespan * 1e3
        fields[variant] = np.concatenate(res.results, axis=0)
        stats = res.merged_stats()
        print(f"{variant:>9s}: {times[variant]:8.4f} ms | "
              f"mpi ops: {stats.counter('mpi', 'isend') + stats.counter('mpi', 'send')} sends | "
              f"cuda kernels: {stats.counter('cuda', 'kernel') + stats.counter('cuda', 'kernel_await')} | "
              f"messages: {res.fabric.messages_sent}")

    assert np.array_equal(fields["mpi_omp"], fields["hiper"])
    gain = (times["mpi_cuda"] - times["hiper"]) / times["mpi_cuda"] * 100
    print(f"\nall variants agree bit-for-bit with the serial reference")
    print(f"HiPER vs hand-coded MPI+CUDA: {gain:.1f}% faster "
          "(the paper's Fig. 6 effect: no blocking cudaMemcpy in the "
          "critical path)")


if __name__ == "__main__":
    main()
