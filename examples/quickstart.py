#!/usr/bin/env python3
"""Quickstart: the HiPER programming model in one file.

Covers the paper's §II-B APIs on a single simulated node: ``async_``,
``async_at``, promises/futures, ``async_await``, ``finish``, ``forasync``,
coroutine tasks, virtual time, and the runtime statistics hooks.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    HiperRuntime,
    PlaceType,
    Promise,
    SimExecutor,
    async_,
    async_at,
    async_await,
    async_future,
    charge,
    discover,
    finish,
    forasync,
    machine,
    now,
)


def main() -> None:
    # 1. Platform model: synthesized hwloc-style for a small workstation
    #    (one socket, 4 cores, a GPU, an interconnect place).
    model = discover(machine("workstation"), num_workers=4)
    print("platform:", model)
    print("places:", ", ".join(p.name for p in model))

    # 2. The generalized work-stealing runtime on the virtual-time executor.
    ex = SimExecutor()
    rt = HiperRuntime(model, ex).start()

    def program():
        # -- fire-and-forget tasks inside a finish scope ----------------
        log = []
        finish(lambda: [async_(lambda i=i: log.append(i)) for i in range(4)])
        print("finish joined tasks:", sorted(log))

        # -- futures: create, chain, await ------------------------------
        f = async_future(lambda: (charge(1e-3), 21)[1])  # 1ms of "compute"
        async_await(lambda: print("  async_await ran after f, value =",
                                  f.value() * 2), f)
        print("future value:", f.get(), "| virtual time now:", now())

        # -- promises as point-to-point channels ------------------------
        p = Promise("channel")
        async_(lambda: p.put("hello from a task"))
        print("promise carried:", p.get_future().wait())

        # -- parallel loops over the workers ----------------------------
        data = np.zeros(1000)
        finish(lambda: forasync(
            1000, lambda i: data.__setitem__(i, i * i),
            cost_per_item=1e-6))
        print("forasync filled:", int(data.sum()), "(expected",
              sum(i * i for i in range(1000)), ")")

        # -- placing work explicitly (paper: async_at) -------------------
        gpu_place = rt.model.first_of_type(PlaceType.GPU_MEM)
        finish(lambda: async_at(
            lambda: print("  this task ran at place:", gpu_place.name),
            gpu_place))

        # -- coroutine tasks: suspension without blocking a worker -------
        def coroutine():
            a = yield async_future(lambda: 6)
            b = yield async_future(lambda: 7)
            return a * b

        print("coroutine result:", async_future(coroutine).get())
        return "done"

    result = rt.run(program)
    print("\nprogram:", result)
    print(f"virtual makespan: {ex.makespan() * 1e3:.3f} ms "
          f"(wall time was much less — it's a simulation)")
    print("\nruntime statistics (paper §V tooling):")
    print(rt.stats.report())
    rt.shutdown()


if __name__ == "__main__":
    main()
