#!/usr/bin/env python3
"""Future-work features from the paper's §V, working: checkpoint I/O that
overlaps useful computation, and unified-scheduler tracing.

A small distributed solver loop checkpoints its state to simulated NVM every
few iterations without stalling (the checkpoint module snapshots and writes
asynchronously), then "fails" and restores. A TraceRecorder watches the whole
run and prints per-module time attribution plus a Chrome-trace export.

Run:  python examples/checkpoint_and_trace.py
"""

import tempfile

import numpy as np

from repro.distrib import ClusterConfig, spmd_run
from repro.exec.sim import SimExecutor
from repro.io import checkpoint_factory
from repro.mpi import mpi_factory
from repro.platform import MachineSpec
from repro.runtime.api import charge, finish, forasync, now
from repro.tools import TraceRecorder

MACHINE = MachineSpec(name="nvm-node", sockets=2, cores_per_socket=4,
                      nvm_bytes=4 << 30)


def main_rank(ctx):
    ck = ctx.runtime.module("checkpoint")
    mpi = ctx.mpi
    me, n = ctx.rank, ctx.nranks
    state = np.full(1 << 16, float(me))  # 512 KB of "solver state"

    ckpt_futures = []
    for it in range(6):
        # one "iteration" of compute across the rank's workers
        finish(lambda: forasync(64, lambda i: charge(2e-5), chunks=64))
        state += 1.0
        if it % 2 == 1:
            # asynchronous checkpoint: snapshot now, write in the background
            ckpt_futures.append(
                ck.checkpoint_async(f"it{it}", {"state": state}))
        yield mpi.barrier_async()

    for f in ckpt_futures:
        yield f
    t_work_done = now()

    # "failure": wipe the state, restore the latest checkpoint (it5)
    state[:] = -1
    restored = yield ck.restore_async("it5")
    return (float(restored["state"][0]), t_work_done, ck.checkpoints())


def main() -> None:
    tracer = TraceRecorder()
    ex = SimExecutor()
    ex.attach_tracer(tracer)
    cluster = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=8,
                            machine=MACHINE)
    res = spmd_run(main_rank, cluster, executor=ex,
                   module_factories=[checkpoint_factory(), mpi_factory()])

    for r, (val, t_done, keys) in enumerate(res.results):
        print(f"rank {r}: restored state value {val} "
              f"(expected {r + 6}.0... after 6 iterations: {float(r) + 6}) "
              f"checkpoints={keys}")
        assert val == r + 6
    print(f"\nvirtual makespan: {res.makespan * 1e3:.3f} ms "
          "(checkpoint writes overlapped the iteration barriers)")

    print("\n--- unified-scheduler trace (paper §V tooling) ---")
    print(tracer.summary())
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        path = fh.name
    tracer.save_chrome_trace(path)
    print(f"\nChrome-trace written to {path} (open in chrome://tracing)")


if __name__ == "__main__":
    main()
